//! # park
//!
//! A production-quality implementation of the PARK semantics for active
//! rules (*The PARK Semantics for Active Rules*, Georg Gottlob, Guido
//! Moerkotte, V.S. Subrahmanian; EDBT 1996).
//!
//! PARK gives event–condition–action (ECA) rule sets a clean semantics:
//! an inflationary fixpoint computation over *i-interpretations* (atoms
//! plus `+`/`-` update marks) that, whenever two rules demand conflicting
//! actions, consults a pluggable `SELECT` policy, blocks the losing rule
//! instances, and restarts from the original database. The result is
//! unambiguous, polynomial, recursion-safe, and parameterized by the
//! conflict-resolution policy:
//!
//! ```text
//! ActiveDBSemantics = DeclarativeSemantics + ConflictResolutionPolicy
//! ```
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`syntax`] — the rule language: AST, parser, printer, safety checks.
//! * [`storage`] — database instances: interned values, indexed relations,
//!   fact stores, update sets, snapshots.
//! * [`engine`] — the PARK fixpoint machinery itself.
//! * [`policies`] — every `SELECT` policy from the paper's Section 5.
//! * [`baselines`] — the semantics the paper argues against, runnable.
//! * [`workloads`] — seeded workload generators for the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use park::prelude::*;
//!
//! // The paper's Section 2 rule: drop payroll records of inactive staff.
//! let vocab = Vocabulary::new();
//! let program = parse_program(
//!     "emp(X), !active(X), payroll(X, S) -> -payroll(X, S).",
//! ).unwrap();
//! let engine = Engine::new(vocab.clone(), &program).unwrap();
//!
//! let db = FactStore::from_source(
//!     vocab,
//!     "emp(ann). emp(bob). active(ann). payroll(ann, 50000). payroll(bob, 40000).",
//! ).unwrap();
//!
//! let out = engine.park(&db, &mut Inertia).unwrap();
//! assert_eq!(
//!     out.database.to_string(),
//!     "{active(ann), emp(ann), emp(bob), payroll(ann, 50000)}",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;

pub use park_baselines as baselines;
pub use park_engine as engine;
pub use park_policies as policies;
pub use park_storage as storage;
pub use park_syntax as syntax;
pub use park_workloads as workloads;

/// The names almost every user needs, in one import.
pub mod prelude {
    pub use crate::db::{ActiveDatabase, TransactionReport};
    pub use park_engine::{
        Conflict, ConflictResolver, Engine, EngineError, EngineOptions, IInterpretation, Inertia,
        ParkOutcome, Resolution, ResolutionScope, SelectContext,
    };
    pub use park_policies::{
        AntiInertia, Chain, Interactive, PreferDelete, PreferInsert, RandomPolicy, Recording,
        RulePriority, ScriptedOracle, Specificity, TransactionsWin, Voting,
    };
    pub use park_storage::{FactStore, Snapshot, UpdateSet, Vocabulary};
    pub use park_syntax::{
        parse_facts, parse_program, parse_rule, parse_source, parse_updates, Program, Rule,
    };
}
