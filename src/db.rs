//! A transactional active database: the PARK semantics packaged the way
//! the paper's Section 3 envisions deployment — rules installed once,
//! transactions applied through them, one unambiguous state after each.
//!
//! [`ActiveDatabase`] owns the current state and a compiled rule program.
//! Every [`ActiveDatabase::transact`] call evaluates `PARK(D, P, U)` with
//! the chosen `SELECT` policy and *commits* the result as the new state,
//! returning a [`TransactionReport`] with the net changes.
//!
//! ```
//! use park::db::ActiveDatabase;
//! use park::prelude::*;
//!
//! let vocab = Vocabulary::new();
//! let program = parse_program(
//!     "onleave: -active(X) -> +offboard(X).
//!      offb:    offboard(X), payroll(X, S) -> -payroll(X, S).",
//! ).unwrap();
//! let initial = FactStore::from_source(
//!     vocab,
//!     "active(ann). payroll(ann, 50000).",
//! ).unwrap();
//!
//! let mut db = ActiveDatabase::open(&program, initial).unwrap();
//! let report = db.transact_source("-active(ann).", &mut Inertia).unwrap();
//! assert_eq!(report.added, vec!["offboard(ann)"]);
//! assert_eq!(db.state().to_string(), "{offboard(ann)}");
//! ```

use park_engine::{
    certify_incremental, ConflictResolver, Engine, EngineOptions, EngineResult, MetricsSink,
    NoopMetrics, ParkOutcome, RunStats, Trace, WarmState,
};
use park_storage::{FactStore, Snapshot, StorageError, UpdateSet, Vocabulary};
use park_syntax::{Program, Sign};
use std::sync::Arc;

/// The net effect of one committed transaction.
#[derive(Debug, Clone)]
pub struct TransactionReport {
    /// 1-based transaction number.
    pub number: u64,
    /// Facts present after but not before, rendered and sorted.
    pub added: Vec<String>,
    /// Facts present before but not after, rendered and sorted.
    pub removed: Vec<String>,
    /// Rule instances blocked by conflict resolution during evaluation.
    pub blocked: Vec<String>,
    /// Engine counters for the evaluation.
    pub stats: RunStats,
    /// The execution trace (empty unless the database was opened with
    /// `EngineOptions::trace`).
    pub trace: Trace,
}

impl TransactionReport {
    /// True if the transaction changed nothing.
    pub fn is_noop(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A database instance with an installed active-rule program.
#[derive(Debug, Clone)]
pub struct ActiveDatabase {
    engine: Engine,
    state: FactStore,
    /// The installed program at the AST level, retained so
    /// [`ActiveDatabase::compact`] can re-compile it against a fresh
    /// vocabulary.
    program: Program,
    transactions: u64,
    journal: Option<std::path::PathBuf>,
    /// Cross-transaction incremental mode (see docs/incremental.md): keep a
    /// [`WarmState`] alive between transactions and answer certified
    /// insert-only update sets by semi-naive propagation seeded from `U`.
    incremental: bool,
    /// Whether the installed program passes [`certify_incremental`]
    /// (recomputed on [`ActiveDatabase::reload`]).
    certified_incremental: bool,
    warm: Option<WarmState>,
    stats: IncrementalStats,
}

/// Counters for the incremental mode (all zero unless the database was
/// opened [`ActiveDatabase::with_incremental`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Transactions answered from the warm state (insert-only).
    pub incremental_txs: u64,
    /// Deletion-bearing transactions answered from the warm state: only the
    /// strata affected by the deleted predicates recomputed, everything
    /// else kept its marks (see docs/incremental.md §5).
    pub partial_stratum_txs: u64,
    /// Transactions that took the cold from-`D` path (uncertified program,
    /// a deletion conflicting with a derived fact, tracing or metrics
    /// requested, or no warm state).
    pub cold_txs: u64,
    /// Cold transactions forced by a deletion in `U` while the program
    /// itself was certified — the deletion collided with a derived fact (a
    /// genuine PARK conflict only the policy can resolve), so the partial
    /// stratum path had to bail.
    pub cold_txs_deletion: u64,
    /// Cold transactions forced by an uncertified program — structural:
    /// every transaction stays cold until the program is reloaded into the
    /// incrementality-safe fragment.
    pub cold_txs_uncertified: u64,
    /// Times a live warm state was dropped (`reload`, `compact`, `restore`,
    /// or an explicit [`ActiveDatabase::invalidate_warm`]).
    pub invalidations: u64,
}

impl ActiveDatabase {
    /// Install `program` over an initial state (the state's vocabulary is
    /// shared with the compiled program). Fails on unsafe rules or arity
    /// clashes between program and data.
    pub fn open(program: &Program, initial: FactStore) -> EngineResult<Self> {
        Self::open_with_options(program, initial, EngineOptions::default())
    }

    /// [`ActiveDatabase::open`] with explicit engine options.
    pub fn open_with_options(
        program: &Program,
        initial: FactStore,
        options: EngineOptions,
    ) -> EngineResult<Self> {
        let engine = Engine::with_options(Arc::clone(initial.vocab()), program, options)?;
        let certified_incremental = certify_incremental(engine.program());
        Ok(ActiveDatabase {
            engine,
            state: initial,
            program: program.clone(),
            transactions: 0,
            journal: None,
            incremental: false,
            certified_incremental,
            warm: None,
            stats: IncrementalStats::default(),
        })
    }

    /// Enable or disable cross-transaction incremental evaluation. With it
    /// on, insert-only transactions over a [`certify_incremental`]-certified
    /// program are answered from a live [`WarmState`]; everything else falls
    /// back to the ordinary cold run (which refreshes the warm state when it
    /// can). Committed results are byte-identical either way.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        if !incremental {
            self.warm = None;
        }
        self
    }

    /// Whether incremental mode is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Whether the installed program is in the incrementality-safe fragment.
    pub fn certified_incremental(&self) -> bool {
        self.certified_incremental
    }

    /// Incremental-vs-cold counters (all zero outside incremental mode).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Drop the live warm state, if any. The next transaction runs cold and
    /// reseeds it. Called by the serve layer when the session policy
    /// changes; `reload`, `compact`, and `restore` invalidate implicitly.
    pub fn invalidate_warm(&mut self) {
        if self.warm.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Attach a journal file: every committed transaction's update set is
    /// appended as one line of `.updates` source (a blank line for
    /// [`ActiveDatabase::settle`]), so a database can be rebuilt with
    /// [`ActiveDatabase::replay`]. The file is created if absent and
    /// appended to if present.
    pub fn with_journal(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Rebuild a database by replaying a journal produced by
    /// [`ActiveDatabase::with_journal`] against the same program, initial
    /// state, and (deterministic) policy. The replayed database does *not*
    /// keep journaling.
    pub fn replay(
        program: &Program,
        initial: FactStore,
        journal: &std::path::Path,
        policy: &mut dyn ConflictResolver,
    ) -> EngineResult<Self> {
        let text = std::fs::read_to_string(journal).map_err(|e| {
            park_engine::EngineError::Storage(StorageError::Snapshot(format!(
                "cannot read journal {}: {e}",
                journal.display()
            )))
        })?;
        let mut db = ActiveDatabase::open(program, initial)?;
        for line in text.lines() {
            db.transact_source(line, policy)?;
        }
        Ok(db)
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        self.state.vocab()
    }

    /// The current committed state.
    pub fn state(&self) -> &FactStore {
        &self.state
    }

    /// The compiled engine (e.g. for `park_engine::analysis`).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of committed transactions.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Evaluate `PARK(state, P, U)` under `policy` and commit the result.
    ///
    /// On error (policy failure, limit breach) the state is left
    /// unchanged — transactions are all-or-nothing.
    pub fn transact(
        &mut self,
        updates: &UpdateSet,
        policy: &mut dyn ConflictResolver,
    ) -> EngineResult<TransactionReport> {
        self.transact_with_metrics(updates, policy, &mut NoopMetrics)
    }

    /// [`ActiveDatabase::transact`] with evaluation events reported into
    /// `sink` (see `park_engine::metrics`). A disabled sink takes exactly
    /// the unmetered path.
    pub fn transact_with_metrics(
        &mut self,
        updates: &UpdateSet,
        policy: &mut dyn ConflictResolver,
        sink: &mut dyn MetricsSink,
    ) -> EngineResult<TransactionReport> {
        if self.incremental {
            return self.transact_incremental(updates, policy, sink);
        }
        let outcome = self
            .engine
            .run_with_metrics(&self.state, updates, policy, sink)?;
        self.append_journal(updates)?;
        Ok(self.commit(outcome))
    }

    /// The incremental-mode transaction path: answer from the warm state
    /// when the run is certified warm-equivalent, otherwise run cold while
    /// retaining the marks that reseed the warm state. Deletion-bearing
    /// update sets stay warm too — the warm path recomputes only the
    /// affected strata — unless the deletion provokes a genuine conflict,
    /// in which case the poisoned warm state is dropped and the
    /// transaction re-runs cold under the policy.
    fn transact_incremental(
        &mut self,
        updates: &UpdateSet,
        policy: &mut dyn ConflictResolver,
        sink: &mut dyn MetricsSink,
    ) -> EngineResult<TransactionReport> {
        let warm_eligible =
            self.certified_incremental && !self.engine.options().trace && !sink.enabled();
        let mut journaled = false;
        if warm_eligible && self.warm.is_some() {
            self.append_journal(updates)?;
            journaled = true;
            let attempt = self
                .warm
                .as_mut()
                .and_then(|warm| warm.transact(self.engine.program(), updates));
            match attempt {
                Some(report) => {
                    let warm = self.warm.as_ref().expect("warm state survives success");
                    if !report.added.is_empty() || !report.removed.is_empty() {
                        // COW: the relation shards stay shared with the warm
                        // base zone until one side mutates.
                        self.state = warm.state().clone();
                    }
                    self.transactions += 1;
                    if updates.iter().any(|u| u.sign == Sign::Delete) {
                        self.stats.partial_stratum_txs += 1;
                    } else {
                        self.stats.incremental_txs += 1;
                    }
                    let vocab = self.state.vocab();
                    let render = |xs: &[(park_storage::PredId, park_storage::Tuple)]| {
                        xs.iter().map(|(p, t)| vocab.display_fact(*p, t)).collect()
                    };
                    return Ok(TransactionReport {
                        number: self.transactions,
                        added: render(&report.added),
                        removed: render(&report.removed),
                        blocked: Vec::new(),
                        stats: report.stats,
                        trace: Trace::new(),
                    });
                }
                None => {
                    // The bail left the warm marks mid-seed; the cold run
                    // below reseeds a fresh state from its outcome.
                    self.warm = None;
                }
            }
        }
        let outcome = self
            .engine
            .run_retaining(&self.state, updates, policy, sink)?;
        if !journaled {
            self.append_journal(updates)?;
        }
        self.warm = self
            .certified_incremental
            .then(|| WarmState::build(self.engine.program(), &outcome))
            .flatten();
        self.stats.cold_txs += 1;
        // Attribute the miss: an uncertified program dominates (nothing
        // about this transaction could have gone warm), then a conflicting
        // deletion in `U`; the remainder is warm-state seeding or
        // trace/metrics runs.
        if !self.certified_incremental {
            self.stats.cold_txs_uncertified += 1;
        } else if updates.iter().any(|u| u.sign == Sign::Delete) {
            self.stats.cold_txs_deletion += 1;
        }
        Ok(self.commit(outcome))
    }

    fn append_journal(&self, updates: &UpdateSet) -> EngineResult<()> {
        let Some(path) = &self.journal else {
            return Ok(());
        };
        use std::io::Write as _;
        let line = updates.display(self.vocab());
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"))
            .map_err(|e| {
                park_engine::EngineError::Storage(StorageError::Snapshot(format!(
                    "cannot append journal {}: {e}",
                    path.display()
                )))
            })
    }

    /// Parse and apply a textual update set such as `"+q(b). -p(a)."`.
    pub fn transact_source(
        &mut self,
        updates: &str,
        policy: &mut dyn ConflictResolver,
    ) -> EngineResult<TransactionReport> {
        let updates = UpdateSet::from_source(self.vocab(), updates)
            .map_err(park_engine::EngineError::Storage)?;
        self.transact(&updates, policy)
    }

    /// Run the installed rules with no external updates (condition–action
    /// evaluation over the current state) and commit.
    pub fn settle(&mut self, policy: &mut dyn ConflictResolver) -> EngineResult<TransactionReport> {
        self.transact(&UpdateSet::empty(), policy)
    }

    fn commit(&mut self, outcome: ParkOutcome) -> TransactionReport {
        self.transactions += 1;
        let (added, removed) = self.state.diff(&outcome.database);
        let vocab = self.vocab();
        let render = |xs: &[(park_storage::PredId, park_storage::Tuple)]| -> Vec<String> {
            xs.iter().map(|(p, t)| vocab.display_fact(*p, t)).collect()
        };
        let report = TransactionReport {
            number: self.transactions,
            added: render(&added),
            removed: render(&removed),
            blocked: outcome.blocked_display(),
            stats: outcome.stats,
            trace: outcome.trace,
        };
        self.state = outcome.database;
        report
    }

    /// Evaluate a conjunctive query (e.g. `"?- emp(X), !active(X)."`)
    /// against the current state; rows are rendered `X = a, Y = 3`.
    pub fn query_rows(&self, query_src: &str) -> EngineResult<Vec<String>> {
        let q = park_engine::Query::parse(self.vocab(), query_src)?;
        let rows = q.run_on_database(&self.state);
        Ok(q.render_rows(&rows))
    }

    /// All facts of a predicate in the current state, rendered and sorted;
    /// empty for unknown predicates.
    pub fn query(&self, pred: &str) -> Vec<String> {
        let Some(p) = self.vocab().lookup_pred(pred) else {
            return Vec::new();
        };
        let Some(rel) = self.state.relation(p) else {
            return Vec::new();
        };
        let mut rows: Vec<String> = rel.rows().map(|t| self.vocab().display_row(p, t)).collect();
        rows.sort();
        rows
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::of(&self.state)
    }

    /// Replace the current state from a snapshot (same vocabulary).
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        self.state = snapshot.restore(Arc::clone(self.vocab()))?;
        self.invalidate_warm();
        Ok(())
    }

    /// Replace the installed rule program, keeping the committed state,
    /// transaction counter, and journal.
    ///
    /// The state is re-interned into a **fresh vocabulary** along the way:
    /// intern tables are append-only (see docs/storage.md), so this is
    /// also the compaction point where constants reachable only from
    /// dropped rules, deleted facts, or past transaction sources are
    /// released. Fails (leaving the database unchanged) on unsafe rules or
    /// arity clashes between the new program and the live state.
    pub fn reload(&mut self, program: &Program) -> EngineResult<()> {
        let snapshot = Snapshot::of(&self.state);
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(Arc::clone(&vocab), program, *self.engine.options())?;
        let state = snapshot
            .restore(vocab)
            .map_err(park_engine::EngineError::Storage)?;
        self.certified_incremental = certify_incremental(engine.program());
        self.engine = engine;
        self.state = state;
        self.program = program.clone();
        self.invalidate_warm();
        Ok(())
    }

    /// Re-intern the current program and live state into a fresh
    /// vocabulary, dropping constants no longer reachable from either.
    /// Returns the vocabulary stats before and after.
    pub fn compact(&mut self) -> EngineResult<(VocabStats, VocabStats)> {
        let before = self.vocab_stats();
        let program = self.program.clone();
        self.reload(&program)?;
        Ok((before, self.vocab_stats()))
    }

    /// The sizes of the shared vocabulary's intern tables.
    pub fn vocab_stats(&self) -> VocabStats {
        let vocab = self.vocab();
        VocabStats {
            symbols: vocab.sym_count(),
            predicates: vocab.pred_count(),
            int_spills: vocab.spill_count(),
        }
    }
}

/// Sizes of a vocabulary's append-only intern tables (see
/// [`ActiveDatabase::vocab_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabStats {
    /// Interned constant symbols.
    pub symbols: usize,
    /// Registered predicates.
    pub predicates: usize,
    /// Spilled big integers (|i| ≥ 2^30).
    pub int_spills: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::Inertia;
    use park_syntax::parse_program;

    fn payroll_db() -> ActiveDatabase {
        let vocab = Vocabulary::new();
        let program = parse_program(
            "cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
             onleave: -active(X) -> +offboard(X).
             offb: offboard(X), payroll(X, S) -> -payroll(X, S).",
        )
        .unwrap();
        let initial = FactStore::from_source(
            vocab,
            "emp(a). emp(b). active(a). active(b). payroll(a, 10). payroll(b, 20).",
        )
        .unwrap();
        ActiveDatabase::open(&program, initial).unwrap()
    }

    #[test]
    fn transactions_commit_and_report_changes() {
        let mut db = payroll_db();
        let report = db.transact_source("-active(a).", &mut Inertia).unwrap();
        assert_eq!(report.number, 1);
        assert_eq!(report.added, vec!["offboard(a)"]);
        assert_eq!(report.removed, vec!["active(a)", "payroll(a, 10)"]);
        assert!(!report.is_noop());
        assert_eq!(db.transactions(), 1);
        assert_eq!(db.query("payroll"), vec!["payroll(b, 20)"]);
    }

    #[test]
    fn successive_transactions_chain() {
        let mut db = payroll_db();
        db.transact_source("-active(a).", &mut Inertia).unwrap();
        let report = db.transact_source("-active(b).", &mut Inertia).unwrap();
        assert_eq!(report.number, 2);
        assert!(report.removed.contains(&"payroll(b, 20)".to_string()));
        assert_eq!(db.query("payroll"), Vec::<String>::new());
        // offboard(a) survives from the first transaction.
        assert_eq!(db.query("offboard"), vec!["offboard(a)", "offboard(b)"]);
    }

    #[test]
    fn settle_runs_condition_action_rules() {
        let vocab = Vocabulary::new();
        let program =
            parse_program("emp(X), !active(X), payroll(X, S) -> -payroll(X, S).").unwrap();
        let initial = FactStore::from_source(vocab, "emp(a). payroll(a, 10).").unwrap();
        let mut db = ActiveDatabase::open(&program, initial).unwrap();
        let report = db.settle(&mut Inertia).unwrap();
        assert_eq!(report.removed, vec!["payroll(a, 10)"]);
        let report = db.settle(&mut Inertia).unwrap();
        assert!(report.is_noop());
    }

    #[test]
    fn failed_transactions_do_not_commit() {
        let vocab = Vocabulary::new();
        let program = parse_program("p -> +q. p -> -q.").unwrap();
        let initial = FactStore::from_source(vocab, "p.").unwrap();
        let mut db = ActiveDatabase::open(&program, initial).unwrap();
        // An interactive policy with no answers fails mid-evaluation.
        let mut dry = park_policies::Interactive::scripted([]);
        assert!(db.settle(&mut dry).is_err());
        assert_eq!(db.transactions(), 0);
        assert_eq!(db.state().to_string(), "{p}");
        // Recover with a real policy.
        assert!(db.settle(&mut Inertia).is_ok());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut db = payroll_db();
        let snap = db.snapshot();
        db.transact_source("-active(a). -active(b).", &mut Inertia)
            .unwrap();
        assert_eq!(db.query("payroll"), Vec::<String>::new());
        db.restore(&snap).unwrap();
        assert_eq!(db.query("payroll").len(), 2);
    }

    #[test]
    fn journal_replay_reconstructs_state() {
        let dir = std::env::temp_dir().join(format!("park-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tx.journal");
        let _ = std::fs::remove_file(&path);

        let program = parse_program(
            "onleave: -active(X) -> +offboard(X).
             offb: offboard(X), payroll(X, S) -> -payroll(X, S).",
        )
        .unwrap();
        let initial_src = "active(a). active(b). payroll(a, 10). payroll(b, 20).";

        let vocab = Vocabulary::new();
        let initial = FactStore::from_source(vocab, initial_src).unwrap();
        let mut db = ActiveDatabase::open(&program, initial)
            .unwrap()
            .with_journal(&path);
        db.transact_source("-active(a).", &mut Inertia).unwrap();
        db.settle(&mut Inertia).unwrap();
        db.transact_source("-active(b). +active(c).", &mut Inertia)
            .unwrap();
        let final_state = db.state().sorted_display();

        // Replay against a fresh vocabulary and initial state.
        let vocab2 = Vocabulary::new();
        let initial2 = FactStore::from_source(vocab2, initial_src).unwrap();
        let replayed = ActiveDatabase::replay(&program, initial2, &path, &mut Inertia).unwrap();
        assert_eq!(replayed.state().sorted_display(), final_state);
        assert_eq!(replayed.transactions(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_missing_journal_is_an_error() {
        let program = parse_program("p -> +q.").unwrap();
        let initial = FactStore::new(Vocabulary::new());
        let missing = std::path::Path::new("/nonexistent/park.journal");
        assert!(ActiveDatabase::replay(&program, initial, missing, &mut Inertia).is_err());
    }

    #[test]
    fn reload_swaps_program_and_keeps_state() {
        let mut db = payroll_db();
        db.transact_source("-active(a).", &mut Inertia).unwrap();
        let state_before = db.state().sorted_display();
        // New program: offboarded employees get an archive marker instead.
        let program = parse_program("arch: offboard(X) -> +archived(X).").unwrap();
        db.reload(&program).unwrap();
        assert_eq!(db.state().sorted_display(), state_before);
        assert_eq!(db.transactions(), 1);
        let report = db.settle(&mut Inertia).unwrap();
        assert_eq!(report.number, 2);
        assert_eq!(report.added, vec!["archived(a)"]);
    }

    #[test]
    fn reload_failure_leaves_database_unchanged() {
        let mut db = payroll_db();
        // Arity clash with the live state: payroll is binary.
        let bad = parse_program("r: payroll(X) -> +p(X).").unwrap();
        let before = db.state().sorted_display();
        assert!(db.reload(&bad).is_err());
        assert_eq!(db.state().sorted_display(), before);
        assert!(db.settle(&mut Inertia).is_ok());
    }

    #[test]
    fn compact_reinterns_only_live_constants() {
        let vocab = Vocabulary::new();
        let program = parse_program("onx: -keep(X) -> +gone(X).").unwrap();
        let initial = FactStore::from_source(vocab, "keep(a).").unwrap();
        let mut db = ActiveDatabase::open(&program, initial).unwrap();
        // Churn: transaction sources intern constants that the state then
        // drops again; the spill table grows with a big integer.
        db.transact_source("+keep(b). -keep(b).", &mut Inertia)
            .unwrap();
        for name in ["s1", "s2", "s3"] {
            db.transact_source(&format!("+scratch({name})."), &mut Inertia)
                .unwrap();
            db.transact_source(&format!("-scratch({name})."), &mut Inertia)
                .unwrap();
        }
        db.transact_source("+n(1099511627776). -n(1099511627776).", &mut Inertia)
            .unwrap();
        let (before, after) = db.compact().unwrap();
        assert!(
            before.symbols > after.symbols,
            "compaction must shrink the symbol table: {before:?} -> {after:?}"
        );
        assert_eq!(before.int_spills, 1);
        assert_eq!(after.int_spills, 0);
        // gone(b) keeps b live even though keep(b) was deleted; the
        // scratch constants and the spilled integer are released.
        assert_eq!(after.symbols, 2);
        assert_eq!(db.query("gone"), vec!["gone(b)"]);
        assert_eq!(db.query("keep"), vec!["keep(a)"]);
        // The database still evaluates correctly after compaction.
        let report = db.transact_source("-keep(a).", &mut Inertia).unwrap();
        assert_eq!(report.added, vec!["gone(a)"]);
    }

    #[test]
    fn transact_with_metrics_reports_the_run() {
        use park_engine::JsonMetrics;
        let mut db = payroll_db();
        let mut sink = JsonMetrics::new("test");
        let report = db
            .transact_with_metrics(
                &UpdateSet::from_source(db.vocab(), "-active(a).").unwrap(),
                &mut Inertia,
                &mut sink,
            )
            .unwrap();
        assert_eq!(report.added, vec!["offboard(a)"]);
        let doc = sink.to_json();
        assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some("park-metrics/v1")
        );
        let storage = doc.get("storage").expect("storage section");
        assert!(
            storage
                .get("vocab_symbols")
                .and_then(|j| j.as_i64())
                .unwrap_or(0)
                > 0
        );
    }

    fn reachability_db(incremental: bool) -> ActiveDatabase {
        let vocab = Vocabulary::new();
        let program = parse_program("e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).").unwrap();
        let initial = FactStore::from_source(vocab, "e(a, b). e(b, c).").unwrap();
        ActiveDatabase::open(&program, initial)
            .unwrap()
            .with_incremental(incremental)
    }

    #[test]
    fn incremental_mode_matches_cold_transaction_for_transaction() {
        let mut inc = reachability_db(true);
        let mut cold = reachability_db(false);
        assert!(inc.incremental() && inc.certified_incremental());
        for tx in [
            "",
            "+e(c, d).",
            "+e(d, a).",
            "",
            "+e(a, e). +e(e, f).",
            "+e(a, b).",
        ] {
            let ri = inc.transact_source(tx, &mut Inertia).unwrap();
            let rc = cold.transact_source(tx, &mut Inertia).unwrap();
            assert_eq!(ri.added, rc.added, "tx {tx:?}");
            assert_eq!(ri.removed, rc.removed, "tx {tx:?}");
            assert_eq!(ri.blocked, rc.blocked, "tx {tx:?}");
            assert_eq!(ri.stats.gamma_steps, rc.stats.gamma_steps, "tx {tx:?}");
            assert_eq!(ri.number, rc.number, "tx {tx:?}");
            assert!(inc.state().same_facts(cold.state()), "tx {tx:?}");
        }
        let stats = inc.incremental_stats();
        // The first transaction seeds the warm state cold; the rest reuse it.
        assert_eq!(stats.cold_txs, 1);
        assert_eq!(stats.incremental_txs, 5);
        assert_eq!(cold.incremental_stats(), IncrementalStats::default());
    }

    #[test]
    fn incremental_mode_falls_back_on_deletions_and_reseeds() {
        let mut inc = reachability_db(true);
        let mut cold = reachability_db(false);
        for tx in ["+e(c, d).", "-e(a, b). -r(a, b).", "+e(b, a).", "+e(a, b)."] {
            let ri = inc.transact_source(tx, &mut Inertia).unwrap();
            let rc = cold.transact_source(tx, &mut Inertia).unwrap();
            assert_eq!(ri.added, rc.added, "tx {tx:?}");
            assert_eq!(ri.removed, rc.removed, "tx {tx:?}");
            assert_eq!(ri.stats.gamma_steps, rc.stats.gamma_steps, "tx {tx:?}");
            assert!(inc.state().same_facts(cold.state()), "tx {tx:?}");
        }
        let stats = inc.incremental_stats();
        // tx1 seeds cold; tx2 deletes the *derived* r(a, b) — a genuine
        // conflict, so the warm attempt bails, the cold run resolves it,
        // and the blocked grounding keeps the outcome from reseeding; tx3
        // runs cold and reseeds; tx4 is warm.
        assert_eq!(stats.cold_txs, 3);
        assert_eq!(stats.incremental_txs, 1);
        assert_eq!(stats.partial_stratum_txs, 0);
        // Only tx2 is attributed to deletions; the seeding and reseeding
        // runs are cold for neither attributed reason.
        assert_eq!(stats.cold_txs_deletion, 1);
        assert_eq!(stats.cold_txs_uncertified, 0);
    }

    #[test]
    fn base_deletions_stay_warm_on_the_partial_stratum_path() {
        let mut inc = reachability_db(true);
        let mut cold = reachability_db(false);
        // Deletions of base `e` facts never collide with a derivation
        // (committed `r` facts persist on their own), so every deletion
        // after the seeding run stays warm as a partial-stratum replay.
        for tx in ["", "+e(c, d).", "-e(c, d).", "-e(zz, zz).", "+e(c, e)."] {
            let ri = inc.transact_source(tx, &mut Inertia).unwrap();
            let rc = cold.transact_source(tx, &mut Inertia).unwrap();
            assert_eq!(ri.added, rc.added, "tx {tx:?}");
            assert_eq!(ri.removed, rc.removed, "tx {tx:?}");
            assert_eq!(ri.blocked, rc.blocked, "tx {tx:?}");
            assert_eq!(ri.stats.gamma_steps, rc.stats.gamma_steps, "tx {tx:?}");
            assert!(inc.state().same_facts(cold.state()), "tx {tx:?}");
        }
        let stats = inc.incremental_stats();
        assert_eq!(stats.cold_txs, 1);
        assert_eq!(stats.incremental_txs, 2);
        assert_eq!(stats.partial_stratum_txs, 2);
        assert_eq!(stats.cold_txs_deletion, 0);
    }

    #[test]
    fn stratified_negation_runs_warm_with_deletions() {
        let vocab = Vocabulary::new();
        let program = parse_program("p(X), !q(X) -> +s(X). s(X), e(X, Y) -> +s(Y).").unwrap();
        let initial = FactStore::from_source(vocab, "p(a). p(b). q(b). e(a, c).").unwrap();
        let open = |inc: bool| {
            ActiveDatabase::open(&program, initial.clone())
                .unwrap()
                .with_incremental(inc)
        };
        let mut inc = open(true);
        let mut cold = open(false);
        assert!(inc.certified_incremental());
        for tx in ["", "+p(d).", "-p(zz).", "+q(e). +p(e).", "-e(a, c)."] {
            let ri = inc.transact_source(tx, &mut Inertia).unwrap();
            let rc = cold.transact_source(tx, &mut Inertia).unwrap();
            assert_eq!(ri.added, rc.added, "tx {tx:?}");
            assert_eq!(ri.removed, rc.removed, "tx {tx:?}");
            assert_eq!(ri.stats.gamma_steps, rc.stats.gamma_steps, "tx {tx:?}");
            assert!(inc.state().same_facts(cold.state()), "tx {tx:?}");
        }
        let stats = inc.incremental_stats();
        assert_eq!(stats.cold_txs, 1);
        assert_eq!(stats.incremental_txs, 2);
        assert_eq!(stats.partial_stratum_txs, 2);
    }

    #[test]
    fn uncertified_programs_stay_cold_under_incremental_mode() {
        let vocab = Vocabulary::new();
        // Recursion through negation: the certificate refuses it (stratified
        // negation, by contrast, certifies — see the stratified test above).
        let program = parse_program("move(X, Y), !win(Y) -> +win(X).").unwrap();
        let initial = FactStore::from_source(vocab, "move(a, b).").unwrap();
        let mut db = ActiveDatabase::open(&program, initial)
            .unwrap()
            .with_incremental(true);
        assert!(!db.certified_incremental());
        db.transact_source("+move(c, d).", &mut Inertia).unwrap();
        db.transact_source("+move(e, a).", &mut Inertia).unwrap();
        assert_eq!(db.query("win"), vec!["win(a)", "win(c)"]);
        let stats = db.incremental_stats();
        assert_eq!(stats.cold_txs, 2);
        assert_eq!(stats.incremental_txs, 0);
        assert_eq!(stats.cold_txs_uncertified, 2);
        assert_eq!(stats.cold_txs_deletion, 0);
    }

    #[test]
    fn reload_restore_and_invalidate_drop_the_warm_state() {
        let mut db = reachability_db(true);
        db.transact_source("+e(c, d).", &mut Inertia).unwrap();
        db.transact_source("+e(d, e).", &mut Inertia).unwrap();
        assert_eq!(db.incremental_stats().incremental_txs, 1);

        let snap = db.snapshot();
        db.restore(&snap).unwrap();
        assert_eq!(db.incremental_stats().invalidations, 1);
        // Next transaction reseeds cold, then warms again.
        db.transact_source("+e(e, f).", &mut Inertia).unwrap();
        db.transact_source("+e(f, g).", &mut Inertia).unwrap();
        assert_eq!(db.incremental_stats().cold_txs, 2);
        assert_eq!(db.incremental_stats().incremental_txs, 2);

        let program = db.program.clone();
        db.reload(&program).unwrap();
        assert_eq!(db.incremental_stats().invalidations, 2);
        assert!(db.certified_incremental());

        db.transact_source("+e(g, h).", &mut Inertia).unwrap();
        db.invalidate_warm();
        assert_eq!(db.incremental_stats().invalidations, 3);
        db.invalidate_warm(); // no live warm state: not an invalidation
        assert_eq!(db.incremental_stats().invalidations, 3);
    }

    #[test]
    fn incremental_mode_keeps_journaling_replayable() {
        let dir = std::env::temp_dir().join(format!("park-incjournal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inc.journal");
        let _ = std::fs::remove_file(&path);

        let mut db = reachability_db(true).with_journal(&path);
        db.transact_source("+e(c, d).", &mut Inertia).unwrap();
        db.transact_source("+e(d, a).", &mut Inertia).unwrap();
        db.settle(&mut Inertia).unwrap();
        assert!(db.incremental_stats().incremental_txs >= 2);
        let final_state = db.state().sorted_display();

        let vocab = Vocabulary::new();
        let program = parse_program("e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).").unwrap();
        let initial = FactStore::from_source(vocab, "e(a, b). e(b, c).").unwrap();
        let replayed = ActiveDatabase::replay(&program, initial, &path, &mut Inertia).unwrap();
        assert_eq!(replayed.state().sorted_display(), final_state);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incremental_mode_with_metrics_or_trace_takes_the_cold_path() {
        use park_engine::JsonMetrics;
        let mut db = reachability_db(true);
        db.transact_source("+e(c, d).", &mut Inertia).unwrap();
        let mut sink = JsonMetrics::new("test");
        let u = UpdateSet::from_source(db.vocab(), "+e(d, e).").unwrap();
        db.transact_with_metrics(&u, &mut Inertia, &mut sink)
            .unwrap();
        // The metered transaction ran cold (events must be complete) but
        // still refreshed the warm state for the next one.
        assert_eq!(db.incremental_stats().cold_txs, 2);
        db.transact_source("+e(e, f).", &mut Inertia).unwrap();
        assert_eq!(db.incremental_stats().incremental_txs, 1);

        let vocab = Vocabulary::new();
        let program = parse_program("e(X, Y) -> +r(X, Y).").unwrap();
        let initial = FactStore::from_source(vocab, "e(a, b).").unwrap();
        let mut traced =
            ActiveDatabase::open_with_options(&program, initial, EngineOptions::traced())
                .unwrap()
                .with_incremental(true);
        traced.transact_source("+e(b, c).", &mut Inertia).unwrap();
        let r = traced.transact_source("+e(c, d).", &mut Inertia).unwrap();
        assert!(!r.trace.is_empty(), "traced runs must keep their trace");
        assert_eq!(traced.incremental_stats().incremental_txs, 0);
    }

    #[test]
    fn query_unknown_predicate_is_empty() {
        let db = payroll_db();
        assert!(db.query("nonexistent").is_empty());
    }

    #[test]
    fn conjunctive_queries_over_state() {
        let mut db = payroll_db();
        db.transact_source("-active(a).", &mut Inertia).unwrap();
        let rows = db.query_rows("?- emp(X), !active(X).").unwrap();
        assert_eq!(rows, vec!["X = a"]);
        let rows = db.query_rows("?- payroll(X, S), S >= 20.").unwrap();
        assert_eq!(rows, vec!["X = b, S = 20"]);
        assert!(db.query_rows("?- !active(X).").is_err());
    }

    #[test]
    fn conflicting_transaction_reports_blocked_instances() {
        let vocab = Vocabulary::new();
        let program = parse_program("r1: p(X) -> -s(X).").unwrap();
        let initial = FactStore::from_source(vocab, "p(b).").unwrap();
        let mut db = ActiveDatabase::open(&program, initial).unwrap();
        let report = db.transact_source("+s(b).", &mut Inertia).unwrap();
        // Inertia sides with the rule (s(b) ∉ D): the tx grounding blocks.
        assert_eq!(report.blocked, vec!["(tx1)"]);
        assert!(db.query("s").is_empty());
    }
}
