//! The `park-serve/v1` wire protocol: ndjson requests in, ndjson frames out.
//!
//! Every input line is one JSON object with an `"op"` field; every op is
//! answered by one *batch* of one or more frames carrying the request's
//! sequence number. Frames are single-line JSON objects whose first two
//! members are always `"frame"` (the frame kind) and `"seq"`. The session
//! opens with a `hello` frame at seq 0 and ends with a `bye` frame; blank
//! lines and lines starting with `#` are skipped without consuming a
//! sequence number. See docs/serve.md for the full specification.

use crate::ServeOptions;
use park::engine::{EngineOptions, EvaluationMode, ResolutionScope};
use park_json::Json;

/// The protocol revision announced in the `hello` frame.
pub const SCHEMA: &str = "park-serve/v1";

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// An operation addressed to one named database.
    Db {
        /// The database name (`"db"` field).
        db: String,
        /// The operation.
        op: DbOp,
    },
    /// `{"op": "list"}` — enumerate open databases in creation order.
    List,
    /// `{"op": "ping"}` — liveness check.
    Ping,
    /// `{"op": "shutdown"}` — end the session; with `"snapshot_dir"`,
    /// write a final snapshot of every open database into that directory.
    Shutdown {
        /// Directory to write `<db>.snapshot.json` files into.
        snapshot_dir: Option<String>,
    },
}

/// A per-database operation.
#[derive(Debug, Clone)]
pub enum DbOp {
    /// `{"op": "create", "db": .., "program": ..}` — compile a rule
    /// program and open a database under `db`.
    Create {
        /// Rule program source.
        program: String,
        /// Initial facts source (default empty).
        facts: String,
        /// Session `SELECT` policy name (default: the serve default).
        policy: String,
        /// Engine options resolved from `eval`/`scope`/`threads`/`trace`.
        options: EngineOptions,
        /// Journal file to append committed update sets to.
        journal: Option<String>,
        /// Cross-transaction incremental evaluation (default: the serve
        /// default; see docs/incremental.md).
        incremental: bool,
    },
    /// `{"op": "transact", "db": .., "updates": "+p(a)."}` — run one
    /// transaction through the rules and commit. `{"op": "settle"}` is
    /// the same with an empty update set. Optional fields: `answers`
    /// (conflict resolutions for this transaction, e.g. `["i", "d"]`),
    /// `trace` (emit a trace frame; requires a traced database), and
    /// `metrics` (emit a park-metrics/v1 frame).
    Transact {
        /// `.updates` source, e.g. `"+q(b). -p(a)."`.
        updates: String,
        /// Scripted conflict answers (`"i"`/`"insert"`/`"+"`, `"d"`/...).
        answers: Option<Vec<String>>,
        /// Emit the execution trace for this transaction.
        trace: bool,
        /// Emit a park-metrics/v1 document for this transaction.
        metrics: bool,
    },
    /// `{"op": "query", "db": .., "query": "?- p(X)."}` or
    /// `{"op": "query", "db": .., "pred": "p"}`.
    Query {
        /// Conjunctive query source (mutually exclusive with `pred`).
        query: Option<String>,
        /// Predicate name to dump (mutually exclusive with `query`).
        pred: Option<String>,
    },
    /// `{"op": "state", "db": ..}` — every fact, rendered and sorted.
    State,
    /// `{"op": "stats", "db": ..}` — transaction count and memory
    /// accounting (facts, encoded bytes, vocabulary intern-table sizes).
    Stats,
    /// `{"op": "reload", "db": .., "program": ..}` — swap the rule
    /// program, keeping state. Also a vocabulary compaction point.
    Reload {
        /// New rule program source.
        program: String,
    },
    /// `{"op": "compact", "db": ..}` — re-intern the live state and
    /// program into a fresh vocabulary (see docs/storage.md).
    Compact,
    /// `{"op": "policy", "db": .., "policy": ..}` — change the session
    /// policy for subsequent transactions.
    Policy {
        /// New policy name.
        policy: String,
    },
    /// `{"op": "snapshot", "db": .., "path": ..}` — write the state as a
    /// constant-level JSON snapshot (portable across sessions).
    Snapshot {
        /// Output file path.
        path: String,
    },
    /// `{"op": "restore", "db": .., "path": ..}` — replace the state
    /// from a snapshot file (any session's; constants re-intern).
    Restore {
        /// Snapshot file path.
        path: String,
    },
    /// `{"op": "close", "db": ..}` — close the database, optionally
    /// writing a final snapshot to `"snapshot"`.
    Close {
        /// Snapshot file path to write before closing.
        snapshot: Option<String>,
    },
}

/// Render one protocol frame: a compact JSON object whose first members
/// are `"frame"` and `"seq"`, followed by `fields` in order.
pub fn frame(kind: &str, seq: u64, fields: Vec<(&str, Json)>) -> String {
    let mut members: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
    members.push(("frame".into(), Json::str(kind)));
    members.push(("seq".into(), Json::Int(seq as i64)));
    members.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Object(members).to_compact()
}

/// Render an `error` frame; `db` is included when the failing op
/// addressed a database.
pub fn error_frame(seq: u64, db: Option<&str>, message: &str) -> String {
    let mut fields = Vec::new();
    if let Some(db) = db {
        fields.push(("db", Json::str(db)));
    }
    fields.push(("message", Json::str(message)));
    frame("error", seq, fields)
}

/// Render a sorted string list as a JSON array.
pub fn str_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(Json::str).collect())
}

fn required_str(obj: &Json, key: &str, op: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("`{key}` must be a string in op `{op}`")),
        None => Err(format!("op `{op}` requires a `{key}` field")),
    }
}

fn optional_str(obj: &Json, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn optional_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

fn parse_eval(s: &str) -> Result<EvaluationMode, String> {
    match s {
        "naive" => Ok(EvaluationMode::Naive),
        "semi" | "semi-naive" | "seminaive" => Ok(EvaluationMode::SemiNaive),
        "compiled" | "compile" | "bytecode" => Ok(EvaluationMode::Compiled),
        other => Err(format!("unknown evaluation mode `{other}`")),
    }
}

fn parse_scope(s: &str) -> Result<ResolutionScope, String> {
    match s {
        "all" => Ok(ResolutionScope::All),
        "one" => Ok(ResolutionScope::One),
        other => Err(format!("unknown scope `{other}`")),
    }
}

/// The display name of an evaluation mode (inverse of the `eval` field).
pub fn eval_name(mode: EvaluationMode) -> &'static str {
    match mode {
        EvaluationMode::Naive => "naive",
        EvaluationMode::SemiNaive => "semi-naive",
        EvaluationMode::Compiled => "compiled",
    }
}

/// The display name of a resolution scope (inverse of the `scope` field).
pub fn scope_name(scope: ResolutionScope) -> &'static str {
    match scope {
        ResolutionScope::All => "all",
        ResolutionScope::One => "one",
    }
}

/// Parse one request line against the session defaults. Errors are
/// human-readable messages destined for an `error` frame.
pub fn parse_request(line: &str, defaults: &ServeOptions) -> Result<Request, String> {
    let doc = park_json::parse(line).map_err(|e| format!("invalid request: {e}"))?;
    if doc.as_object().is_none() {
        return Err("invalid request: expected a JSON object".into());
    }
    let op = required_str(&doc, "op", "?")?;
    let op = op.as_str();
    match op {
        "list" => Ok(Request::List),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown {
            snapshot_dir: optional_str(&doc, "snapshot_dir")?,
        }),
        _ => {
            let db = required_str(&doc, "db", op)?;
            let dbop = match op {
                "create" => {
                    let mut options = EngineOptions {
                        scope: defaults.scope,
                        evaluation: defaults.evaluation,
                        trace: defaults.trace,
                        parallelism: defaults.threads.filter(|&n| n > 1),
                        ..EngineOptions::default()
                    };
                    if let Some(s) = optional_str(&doc, "eval")? {
                        options.evaluation = parse_eval(&s)?;
                    }
                    if let Some(s) = optional_str(&doc, "scope")? {
                        options.scope = parse_scope(&s)?;
                    }
                    options.trace = optional_bool(&doc, "trace", options.trace)?;
                    if let Some(n) = doc.get("threads") {
                        match n.as_i64() {
                            Some(n) if n >= 1 => {
                                options.parallelism = if n > 1 { Some(n as usize) } else { None }
                            }
                            _ => return Err("`threads` must be a positive integer".into()),
                        }
                    }
                    DbOp::Create {
                        program: required_str(&doc, "program", op)?,
                        facts: optional_str(&doc, "facts")?.unwrap_or_default(),
                        policy: optional_str(&doc, "policy")?
                            .unwrap_or_else(|| defaults.policy.clone()),
                        options,
                        journal: optional_str(&doc, "journal")?,
                        incremental: optional_bool(&doc, "incremental", defaults.incremental)?,
                    }
                }
                "transact" | "settle" => {
                    let updates = if op == "settle" {
                        if doc.get("updates").is_some() {
                            return Err("op `settle` takes no `updates`".into());
                        }
                        String::new()
                    } else {
                        required_str(&doc, "updates", op)?
                    };
                    let answers = match doc.get("answers") {
                        None | Some(Json::Null) => None,
                        Some(Json::Array(items)) => {
                            let mut answers = Vec::with_capacity(items.len());
                            for item in items {
                                match item.as_str() {
                                    Some(s) => answers.push(s.to_string()),
                                    None => {
                                        return Err("`answers` must be an array of strings".into())
                                    }
                                }
                            }
                            Some(answers)
                        }
                        Some(_) => return Err("`answers` must be an array of strings".into()),
                    };
                    DbOp::Transact {
                        updates,
                        answers,
                        trace: optional_bool(&doc, "trace", false)?,
                        metrics: optional_bool(&doc, "metrics", false)?,
                    }
                }
                "query" => {
                    let query = optional_str(&doc, "query")?;
                    let pred = optional_str(&doc, "pred")?;
                    if query.is_some() == pred.is_some() {
                        return Err("op `query` takes exactly one of `query` or `pred`".into());
                    }
                    DbOp::Query { query, pred }
                }
                "state" => DbOp::State,
                "stats" => DbOp::Stats,
                "reload" => DbOp::Reload {
                    program: required_str(&doc, "program", op)?,
                },
                "compact" => DbOp::Compact,
                "policy" => DbOp::Policy {
                    policy: required_str(&doc, "policy", op)?,
                },
                "snapshot" => DbOp::Snapshot {
                    path: required_str(&doc, "path", op)?,
                },
                "restore" => DbOp::Restore {
                    path: required_str(&doc, "path", op)?,
                },
                "close" => DbOp::Close {
                    snapshot: optional_str(&doc, "snapshot")?,
                },
                other => return Err(format!("unknown op `{other}`")),
            };
            Ok(Request::Db { db, op: dbop })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> ServeOptions {
        ServeOptions::default()
    }

    #[test]
    fn frames_lead_with_kind_and_seq() {
        let f = frame("ok", 7, vec![("db", Json::str("hr"))]);
        assert_eq!(f, r#"{"frame":"ok","seq":7,"db":"hr"}"#);
        assert_eq!(
            error_frame(3, Some("hr"), "boom"),
            r#"{"frame":"error","seq":3,"db":"hr","message":"boom"}"#
        );
    }

    #[test]
    fn parse_create_resolves_engine_options() {
        let req = parse_request(
            r#"{"op":"create","db":"hr","program":"p -> +q.","eval":"semi","scope":"one","threads":4,"trace":true}"#,
            &defaults(),
        )
        .unwrap();
        let Request::Db {
            db,
            op: DbOp::Create {
                options, policy, ..
            },
        } = req
        else {
            panic!("expected create")
        };
        assert_eq!(db, "hr");
        assert_eq!(policy, "inertia");
        assert_eq!(options.evaluation, EvaluationMode::SemiNaive);
        assert_eq!(options.scope, ResolutionScope::One);
        assert_eq!(options.parallelism, Some(4));
        assert!(options.trace);
    }

    #[test]
    fn create_inherits_session_defaults() {
        let mut opts = defaults();
        opts.policy = "prefer-insert".into();
        opts.evaluation = EvaluationMode::SemiNaive;
        opts.threads = Some(2);
        let req = parse_request(r#"{"op":"create","db":"d","program":""}"#, &opts).unwrap();
        let Request::Db {
            op: DbOp::Create {
                options, policy, ..
            },
            ..
        } = req
        else {
            panic!("expected create")
        };
        assert_eq!(policy, "prefer-insert");
        assert_eq!(options.evaluation, EvaluationMode::SemiNaive);
        assert_eq!(options.parallelism, Some(2));
    }

    #[test]
    fn create_resolves_the_incremental_flag() {
        let d = defaults();
        let get = |line: &str, opts: &ServeOptions| {
            let Request::Db {
                op: DbOp::Create { incremental, .. },
                ..
            } = parse_request(line, opts).unwrap()
            else {
                panic!("expected create")
            };
            incremental
        };
        assert!(!get(r#"{"op":"create","db":"d","program":""}"#, &d));
        assert!(get(
            r#"{"op":"create","db":"d","program":"","incremental":true}"#,
            &d
        ));
        let mut on = defaults();
        on.incremental = true;
        assert!(get(r#"{"op":"create","db":"d","program":""}"#, &on));
        assert!(!get(
            r#"{"op":"create","db":"d","program":"","incremental":false}"#,
            &on
        ));
    }

    #[test]
    fn settle_is_an_empty_transaction() {
        let req = parse_request(r#"{"op":"settle","db":"d"}"#, &defaults()).unwrap();
        let Request::Db {
            op: DbOp::Transact { updates, .. },
            ..
        } = req
        else {
            panic!("expected transact")
        };
        assert!(updates.is_empty());
        assert!(parse_request(r#"{"op":"settle","db":"d","updates":"+p."}"#, &defaults()).is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        let d = defaults();
        for (line, needle) in [
            ("not json", "invalid request"),
            ("[1,2]", "expected a JSON object"),
            (r#"{"db":"d"}"#, "requires a `op` field"),
            (
                r#"{"op":"transact","db":"d"}"#,
                "requires a `updates` field",
            ),
            (r#"{"op":"frobnicate","db":"d"}"#, "unknown op"),
            (r#"{"op":"transact","updates":"+p."}"#, "requires a `db`"),
            (
                r#"{"op":"create","db":"d","program":"","threads":0}"#,
                "positive integer",
            ),
            (
                r#"{"op":"query","db":"d","query":"?- p.","pred":"p"}"#,
                "exactly one",
            ),
            (r#"{"op":"query","db":"d"}"#, "exactly one"),
            (
                r#"{"op":"transact","db":"d","updates":"","answers":[1]}"#,
                "array of strings",
            ),
        ] {
            let err = parse_request(line, &d).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
