//! One hot database inside a serve session: an [`ActiveDatabase`] plus
//! the session policy, answering [`DbOp`]s with protocol frames.
//!
//! Determinism contract: every transaction constructs a **fresh** policy
//! from the session's policy name (or from the request's scripted
//! `answers`), so a stream of transactions served here is byte-identical
//! to the same transactions applied as chained one-shot `park run`
//! invocations — stateful policies like `priority` or `random:seed`
//! start from the same state each time in both worlds.

use crate::protocol::{self, frame, DbOp};
use park::db::{ActiveDatabase, TransactionReport, VocabStats};
use park::engine::{ConflictResolver, EngineOptions, JsonMetrics, NoopMetrics};
use park::policies::{by_name, parse_answer, Interactive, Resolution};
use park::storage::{FactStore, Snapshot, UpdateSet, Vocabulary};
use park::syntax::parse_program;
use park_json::Json;

/// Validate a session policy name. `interactive` is deliberately not a
/// session policy: a serve session has no tty to prompt, so conflict
/// answers travel **in** the protocol as a per-transaction `answers`
/// array instead (see docs/serve.md).
pub fn resolve_policy(name: &str) -> Result<(), String> {
    if name == "interactive" {
        return Err("policy `interactive` is not available in serve sessions; \
             pass per-transaction conflict answers instead, e.g. \
             {\"op\": \"transact\", ..., \"answers\": [\"i\", \"d\"]}"
            .into());
    }
    if by_name(name).is_none() {
        return Err(format!("unknown policy `{name}`"));
    }
    Ok(())
}

/// A named database held hot by the serve pipeline.
pub struct DbSession {
    name: String,
    db: ActiveDatabase,
    policy: String,
    traced: bool,
}

impl DbSession {
    /// Compile `program`, load `facts`, and open the database.
    pub fn open(
        name: &str,
        program_src: &str,
        facts_src: &str,
        policy: &str,
        options: EngineOptions,
        journal: Option<&str>,
        incremental: bool,
    ) -> Result<DbSession, String> {
        resolve_policy(policy)?;
        let program = parse_program(program_src).map_err(|e| format!("program: {e}"))?;
        let vocab = Vocabulary::new();
        let facts = FactStore::from_source(vocab, facts_src).map_err(|e| format!("facts: {e}"))?;
        let mut db = ActiveDatabase::open_with_options(&program, facts, options)
            .map_err(|e| e.to_string())?
            .with_incremental(incremental);
        if let Some(path) = journal {
            db = db.with_journal(path);
        }
        Ok(DbSession {
            name: name.into(),
            db,
            policy: policy.into(),
            traced: options.trace,
        })
    }

    /// The `created` frame for a successful open.
    pub fn created_frame(&self, seq: u64) -> String {
        frame(
            "created",
            seq,
            vec![
                ("db", Json::str(&self.name)),
                ("policy", Json::str(&self.policy)),
                ("facts", Json::Int(self.db.state().len() as i64)),
            ],
        )
    }

    /// Answer one operation. Returns the frame batch for `seq` and
    /// whether the database closed (the worker should exit).
    pub fn handle(&mut self, seq: u64, op: DbOp) -> (Vec<String>, bool) {
        let mut closed = false;
        let frames = match op {
            DbOp::Create { .. } => vec![self.error(seq, "database is already open")],
            DbOp::Transact {
                updates,
                answers,
                trace,
                metrics,
            } => self.transact(seq, &updates, answers, trace, metrics),
            DbOp::Query { query, pred } => {
                let rows = match (query, pred) {
                    (Some(q), _) => self.db.query_rows(&q).map_err(|e| e.to_string()),
                    (None, Some(p)) => Ok(self.db.query(&p)),
                    (None, None) => Err("missing query".into()),
                };
                match rows {
                    Ok(rows) => vec![frame(
                        "rows",
                        seq,
                        vec![
                            ("db", Json::str(&self.name)),
                            ("rows", protocol::str_array(&rows)),
                        ],
                    )],
                    Err(e) => vec![self.error(seq, &e)],
                }
            }
            DbOp::State => vec![frame(
                "state",
                seq,
                vec![
                    ("db", Json::str(&self.name)),
                    (
                        "facts",
                        protocol::str_array(&self.db.state().sorted_display()),
                    ),
                ],
            )],
            DbOp::Stats => {
                let mut fields = vec![
                    ("db", Json::str(&self.name)),
                    ("policy", Json::str(&self.policy)),
                    ("transactions", Json::Int(self.db.transactions() as i64)),
                    ("storage", self.storage_json()),
                ];
                // The incremental section appears only for incremental
                // databases, so existing sessions stay byte-identical.
                if self.db.incremental() {
                    let s = self.db.incremental_stats();
                    fields.push((
                        "incremental",
                        Json::object([
                            ("certified", Json::Bool(self.db.certified_incremental())),
                            ("incremental_txs", Json::Int(s.incremental_txs as i64)),
                            (
                                "partial_stratum_txs",
                                Json::Int(s.partial_stratum_txs as i64),
                            ),
                            ("cold_txs", Json::Int(s.cold_txs as i64)),
                            ("cold_txs_deletion", Json::Int(s.cold_txs_deletion as i64)),
                            (
                                "cold_txs_uncertified",
                                Json::Int(s.cold_txs_uncertified as i64),
                            ),
                            ("invalidations", Json::Int(s.invalidations as i64)),
                        ]),
                    ));
                }
                vec![frame("stats", seq, fields)]
            }
            DbOp::Reload { program } => match parse_program(&program)
                .map_err(|e| format!("program: {e}"))
                .and_then(|p| {
                    let before = self.db.vocab_stats();
                    self.db.reload(&p).map_err(|e| e.to_string())?;
                    Ok((p.rules.len(), before))
                }) {
                Ok((rules, before)) => vec![frame(
                    "reloaded",
                    seq,
                    vec![
                        ("db", Json::str(&self.name)),
                        ("rules", Json::Int(rules as i64)),
                        ("vocab_before", vocab_json(before)),
                        ("vocab_after", vocab_json(self.db.vocab_stats())),
                    ],
                )],
                Err(e) => vec![self.error(seq, &e)],
            },
            DbOp::Compact => match self.db.compact() {
                Ok((before, after)) => vec![frame(
                    "compacted",
                    seq,
                    vec![
                        ("db", Json::str(&self.name)),
                        ("vocab_before", vocab_json(before)),
                        ("vocab_after", vocab_json(after)),
                    ],
                )],
                Err(e) => vec![self.error(seq, &e.to_string())],
            },
            DbOp::Policy { policy } => match resolve_policy(&policy) {
                Ok(()) => {
                    self.policy = policy;
                    // A new policy may resolve future conflicts differently;
                    // the warm state (seeded under the old one) must not
                    // outlive it.
                    self.db.invalidate_warm();
                    vec![frame(
                        "ok",
                        seq,
                        vec![
                            ("db", Json::str(&self.name)),
                            ("policy", Json::str(&self.policy)),
                        ],
                    )]
                }
                Err(e) => vec![self.error(seq, &e)],
            },
            DbOp::Snapshot { path } => match self.write_snapshot(&path) {
                Ok(()) => vec![frame(
                    "snapshotted",
                    seq,
                    vec![
                        ("db", Json::str(&self.name)),
                        ("path", Json::str(&path)),
                        ("facts", Json::Int(self.db.state().len() as i64)),
                    ],
                )],
                Err(e) => vec![self.error(seq, &e)],
            },
            DbOp::Restore { path } => match std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))
                .and_then(|text| Snapshot::from_json(&text).map_err(|e| e.to_string()))
                .and_then(|snap| self.db.restore(&snap).map_err(|e| e.to_string()))
            {
                Ok(()) => vec![frame(
                    "restored",
                    seq,
                    vec![
                        ("db", Json::str(&self.name)),
                        ("path", Json::str(&path)),
                        ("facts", Json::Int(self.db.state().len() as i64)),
                    ],
                )],
                Err(e) => vec![self.error(seq, &e)],
            },
            DbOp::Close { snapshot } => {
                closed = true;
                let mut fields = vec![
                    ("db", Json::str(&self.name)),
                    ("transactions", Json::Int(self.db.transactions() as i64)),
                    ("facts", Json::Int(self.db.state().len() as i64)),
                ];
                match snapshot {
                    Some(path) => match self.write_snapshot(&path) {
                        Ok(()) => {
                            fields.push(("snapshot", Json::str(&path)));
                            vec![frame("closed", seq, fields)]
                        }
                        // The close still happens; the lost snapshot is
                        // the caller's signal to re-open and retry.
                        Err(e) => vec![self.error(seq, &format!("{e} (database closed anyway)"))],
                    },
                    None => vec![frame("closed", seq, fields)],
                }
            }
        };
        (frames, closed)
    }

    /// The shutdown summary for the `bye` frame. With `snapshot_dir`,
    /// writes `<dir>/<name>.snapshot.json` first.
    pub fn summary(&self, snapshot_dir: Option<&str>) -> Json {
        let mut members = vec![
            ("db".to_string(), Json::str(&self.name)),
            (
                "transactions".to_string(),
                Json::Int(self.db.transactions() as i64),
            ),
            ("facts".to_string(), Json::Int(self.db.state().len() as i64)),
            ("vocab".to_string(), vocab_json(self.db.vocab_stats())),
        ];
        if let Some(dir) = snapshot_dir {
            let path = format!("{dir}/{}.snapshot.json", self.name);
            match self.write_snapshot(&path) {
                Ok(()) => members.push(("snapshot".to_string(), Json::str(&path))),
                Err(e) => members.push(("snapshot_error".to_string(), Json::str(e))),
            }
        }
        Json::Object(members)
    }

    fn transact(
        &mut self,
        seq: u64,
        updates: &str,
        answers: Option<Vec<String>>,
        trace: bool,
        metrics: bool,
    ) -> Vec<String> {
        if trace && !self.traced {
            return vec![self.error(
                seq,
                "tracing is not enabled for this database (create it with \"trace\": true)",
            )];
        }
        let updates = match UpdateSet::from_source(self.db.vocab(), updates) {
            Ok(u) => u,
            Err(e) => return vec![self.error(seq, &format!("updates: {e}"))],
        };
        // A fresh policy per transaction: served streams match chained
        // one-shot runs exactly (see the module docs).
        let mut scripted: Option<Interactive<_>> = None;
        let mut named: Option<Box<dyn ConflictResolver>> = None;
        let policy: &mut dyn ConflictResolver = match answers {
            Some(raw) => {
                let mut decisions: Vec<Resolution> = Vec::with_capacity(raw.len());
                for a in &raw {
                    match parse_answer(a) {
                        Some(r) => decisions.push(r),
                        None => {
                            return vec![self.error(
                                seq,
                                &format!("unrecognized answer `{a}` (want i[nsert] or d[elete])"),
                            )]
                        }
                    }
                }
                scripted.insert(Interactive::scripted(decisions))
            }
            None => &mut **named.insert(by_name(&self.policy).expect("validated at open")),
        };
        let mut sink = JsonMetrics::new("serve");
        let result = if metrics {
            self.db.transact_with_metrics(&updates, policy, &mut sink)
        } else {
            self.db
                .transact_with_metrics(&updates, policy, &mut NoopMetrics)
        };
        let report = match result {
            Ok(r) => r,
            Err(e) => return vec![self.error(seq, &e.to_string())],
        };
        let answers_unused = scripted.map(|p| p.oracle().remaining()).unwrap_or(0);

        let mut fields = vec![
            ("db", Json::str(&self.name)),
            ("tx", Json::Int(report.number as i64)),
            ("added", protocol::str_array(&report.added)),
            ("removed", protocol::str_array(&report.removed)),
            ("blocked", protocol::str_array(&report.blocked)),
            ("stats", stats_json(&report)),
            ("storage", self.storage_json()),
        ];
        if answers_unused > 0 {
            fields.push(("answers_unused", Json::Int(answers_unused as i64)));
        }
        let mut frames = vec![frame("delta", seq, fields)];
        if trace {
            let events = park_json::parse(&report.trace.to_json())
                .unwrap_or_else(|_| Json::Array(Vec::new()));
            frames.push(frame(
                "trace",
                seq,
                vec![
                    ("db", Json::str(&self.name)),
                    ("tx", Json::Int(report.number as i64)),
                    ("events", events),
                ],
            ));
        }
        if metrics {
            frames.push(frame(
                "metrics",
                seq,
                vec![
                    ("db", Json::str(&self.name)),
                    ("tx", Json::Int(report.number as i64)),
                    ("doc", sink.to_json()),
                ],
            ));
        }
        frames
    }

    fn write_snapshot(&self, path: &str) -> Result<(), String> {
        let text = self.db.snapshot().to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))
    }

    fn storage_json(&self) -> Json {
        let state = self.db.state();
        let vocab = self.db.vocab_stats();
        Json::object([
            ("facts", Json::Int(state.len() as i64)),
            ("encoded_bytes", Json::Int(state.encoded_bytes() as i64)),
            ("vocab_symbols", Json::Int(vocab.symbols as i64)),
            ("vocab_predicates", Json::Int(vocab.predicates as i64)),
            ("vocab_int_spills", Json::Int(vocab.int_spills as i64)),
        ])
    }

    fn error(&self, seq: u64, message: &str) -> String {
        protocol::error_frame(seq, Some(&self.name), message)
    }
}

fn vocab_json(v: VocabStats) -> Json {
    Json::object([
        ("symbols", Json::Int(v.symbols as i64)),
        ("predicates", Json::Int(v.predicates as i64)),
        ("int_spills", Json::Int(v.int_spills as i64)),
    ])
}

/// The deterministic slice of [`park::engine::RunStats`] for a delta
/// frame: identical across thread counts, hosts, and warm/cold restarts
/// (scheduling counters like `eval_tasks` stay out).
fn stats_json(report: &TransactionReport) -> Json {
    Json::object([
        ("gamma_steps", Json::Int(report.stats.gamma_steps as i64)),
        ("restarts", Json::Int(report.stats.restarts as i64)),
        (
            "conflicts_resolved",
            Json::Int(report.stats.conflicts_resolved as i64),
        ),
        (
            "blocked_instances",
            Json::Int(report.stats.blocked_instances as i64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_payroll() -> DbSession {
        DbSession::open(
            "hr",
            "onleave: -active(X) -> +offboard(X).
             offb: offboard(X), payroll(X, S) -> -payroll(X, S).",
            "active(ann). payroll(ann, 50000).",
            "inertia",
            EngineOptions::default(),
            None,
            false,
        )
        .unwrap()
    }

    #[test]
    fn interactive_is_rejected_as_a_session_policy() {
        let err = resolve_policy("interactive").unwrap_err();
        assert!(err.contains("answers"), "{err}");
        assert!(resolve_policy("no-such-policy").is_err());
        assert!(resolve_policy("inertia").is_ok());
        assert!(resolve_policy("random:42").is_ok());
    }

    #[test]
    fn transact_emits_a_delta_with_storage_accounting() {
        let mut s = open_payroll();
        let (frames, closed) = s.handle(
            1,
            DbOp::Transact {
                updates: "-active(ann).".into(),
                answers: None,
                trace: false,
                metrics: false,
            },
        );
        assert!(!closed);
        assert_eq!(frames.len(), 1);
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|j| j.as_str()), Some("delta"));
        assert_eq!(doc.get("tx").and_then(|j| j.as_i64()), Some(1));
        assert_eq!(
            doc.get("added").and_then(|j| j.as_array()).map(|a| a.len()),
            Some(1)
        );
        let storage = doc.get("storage").expect("storage section");
        assert!(storage.get("vocab_symbols").and_then(|j| j.as_i64()) > Some(0));
        assert!(storage.get("facts").and_then(|j| j.as_i64()).is_some());
    }

    #[test]
    fn scripted_answers_resolve_conflicts_in_the_protocol() {
        let mut s = DbSession::open(
            "t",
            "r1: p -> +q. r2: p -> -q.",
            "p.",
            "inertia",
            EngineOptions::default(),
            None,
            false,
        )
        .unwrap();
        // Without answers, inertia resolves silently; with answers the
        // scripted oracle drives the choice. One conflict, answer insert.
        let (frames, _) = s.handle(
            1,
            DbOp::Transact {
                updates: String::new(),
                answers: Some(vec!["i".into()]),
                trace: false,
                metrics: false,
            },
        );
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|j| j.as_str()), Some("delta"));
        assert_eq!(
            doc.get("added").and_then(|j| j.as_array()).map(|a| a.len()),
            Some(1),
            "{}",
            frames[0]
        );
    }

    #[test]
    fn exhausted_answers_surface_the_conflict_prompt() {
        let mut s = DbSession::open(
            "t",
            "r1: p -> +q. r2: p -> -q.",
            "p.",
            "inertia",
            EngineOptions::default(),
            None,
            false,
        )
        .unwrap();
        let (frames, _) = s.handle(
            1,
            DbOp::Transact {
                updates: String::new(),
                answers: Some(vec![]),
                trace: false,
                metrics: false,
            },
        );
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|j| j.as_str()), Some("error"));
        let msg = doc.get("message").and_then(|j| j.as_str()).unwrap();
        assert!(msg.contains("no interactive answer"), "{msg}");
        // The failed transaction did not commit.
        let (frames, _) = s.handle(2, DbOp::Stats);
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("transactions").and_then(|j| j.as_i64()), Some(0));
    }

    #[test]
    fn surplus_answers_are_reported_not_swallowed() {
        let mut s = open_payroll();
        let (frames, _) = s.handle(
            1,
            DbOp::Transact {
                updates: "-active(ann).".into(),
                answers: Some(vec!["i".into(), "d".into()]),
                trace: false,
                metrics: false,
            },
        );
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("answers_unused").and_then(|j| j.as_i64()), Some(2));
    }

    #[test]
    fn trace_requires_a_traced_database() {
        let mut s = open_payroll();
        let (frames, _) = s.handle(
            1,
            DbOp::Transact {
                updates: "-active(ann).".into(),
                answers: None,
                trace: true,
                metrics: false,
            },
        );
        assert!(frames[0].contains("\"error\""), "{}", frames[0]);

        let mut traced = DbSession::open(
            "t",
            "onleave: -active(X) -> +offboard(X).",
            "active(ann).",
            "inertia",
            EngineOptions::traced(),
            None,
            false,
        )
        .unwrap();
        let (frames, _) = traced.handle(
            1,
            DbOp::Transact {
                updates: "-active(ann).".into(),
                answers: None,
                trace: true,
                metrics: true,
            },
        );
        assert_eq!(frames.len(), 3, "delta + trace + metrics");
        let trace = park_json::parse(&frames[1]).unwrap();
        assert_eq!(trace.get("frame").and_then(|j| j.as_str()), Some("trace"));
        assert!(!trace.get("events").unwrap().as_array().unwrap().is_empty());
        let metrics = park_json::parse(&frames[2]).unwrap();
        assert_eq!(
            metrics
                .get("doc")
                .and_then(|d| d.get("schema"))
                .and_then(|j| j.as_str()),
            Some("park-metrics/v1")
        );
    }

    #[test]
    fn reload_and_compact_report_vocab_movement() {
        let mut s = open_payroll();
        s.handle(
            1,
            DbOp::Transact {
                updates: "+scratch(tmp1). -scratch(tmp1).".into(),
                answers: None,
                trace: false,
                metrics: false,
            },
        );
        let (frames, _) = s.handle(
            2,
            DbOp::Reload {
                program: "q: offboard(X) -> +archived(X).".into(),
            },
        );
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|j| j.as_str()), Some("reloaded"));
        let before = doc
            .get("vocab_before")
            .unwrap()
            .get("symbols")
            .unwrap()
            .as_i64();
        let after = doc
            .get("vocab_after")
            .unwrap()
            .get("symbols")
            .unwrap()
            .as_i64();
        assert!(before > after, "reload compacts: {before:?} -> {after:?}");
        // A bad program leaves the session usable.
        let (frames, _) = s.handle(
            3,
            DbOp::Reload {
                program: "broken(".into(),
            },
        );
        assert!(frames[0].contains("\"error\""));
        let (frames, _) = s.handle(4, DbOp::Compact);
        assert!(frames[0].contains("\"compacted\""));
    }

    #[test]
    fn snapshot_restore_roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("park-serve-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hr.snapshot.json").display().to_string();
        let mut s = open_payroll();
        let (frames, _) = s.handle(1, DbOp::Snapshot { path: path.clone() });
        assert!(frames[0].contains("\"snapshotted\""), "{}", frames[0]);
        s.handle(
            2,
            DbOp::Transact {
                updates: "-active(ann).".into(),
                answers: None,
                trace: false,
                metrics: false,
            },
        );
        let (frames, _) = s.handle(3, DbOp::Restore { path: path.clone() });
        assert!(frames[0].contains("\"restored\""), "{}", frames[0]);
        let (frames, _) = s.handle(
            4,
            DbOp::Query {
                query: None,
                pred: Some("payroll".into()),
            },
        );
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(
            doc.get("rows").and_then(|j| j.as_array()).map(|a| a.len()),
            Some(1)
        );
        let _ = std::fs::remove_file(&path);
    }

    fn open_reach(incremental: bool) -> DbSession {
        DbSession::open(
            "g",
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
            "e(a, b).",
            "inertia",
            EngineOptions::default(),
            None,
            incremental,
        )
        .unwrap()
    }

    fn tx(updates: &str) -> DbOp {
        DbOp::Transact {
            updates: updates.into(),
            answers: None,
            trace: false,
            metrics: false,
        }
    }

    #[test]
    fn incremental_sessions_emit_byte_identical_deltas() {
        let mut warm = open_reach(true);
        let mut cold = open_reach(false);
        for (seq, updates) in ["+e(b, c).", "", "+e(c, a). +e(c, d).", "-e(a, b)."]
            .iter()
            .enumerate()
        {
            let (wf, _) = warm.handle(seq as u64 + 1, tx(updates));
            let (cf, _) = cold.handle(seq as u64 + 1, tx(updates));
            assert_eq!(wf, cf, "updates {updates:?}");
        }
    }

    #[test]
    fn stats_frame_reports_incremental_counters_only_when_enabled() {
        let mut s = open_reach(true);
        s.handle(1, tx("+e(b, c)."));
        s.handle(2, tx("+e(c, d)."));
        let (frames, _) = s.handle(3, DbOp::Stats);
        let doc = park_json::parse(&frames[0]).unwrap();
        let inc = doc.get("incremental").expect("incremental section");
        assert_eq!(inc.get("certified").and_then(|j| j.as_bool()), Some(true));
        assert_eq!(inc.get("cold_txs").and_then(|j| j.as_i64()), Some(1));
        assert_eq!(inc.get("incremental_txs").and_then(|j| j.as_i64()), Some(1));
        // The seeding transaction is cold for neither attributed reason.
        assert_eq!(
            inc.get("cold_txs_deletion").and_then(|j| j.as_i64()),
            Some(0)
        );
        assert_eq!(
            inc.get("cold_txs_uncertified").and_then(|j| j.as_i64()),
            Some(0)
        );

        // A base-fact deletion stays warm on the partial-stratum path…
        s.handle(4, tx("-e(b, c)."));
        // …while deleting a *derived* fact is a conflict: cold, attributed.
        s.handle(5, tx("-r(a, b)."));
        let (frames, _) = s.handle(6, DbOp::Stats);
        let doc = park_json::parse(&frames[0]).unwrap();
        let inc = doc.get("incremental").expect("incremental section");
        assert_eq!(
            inc.get("partial_stratum_txs").and_then(|j| j.as_i64()),
            Some(1)
        );
        assert_eq!(inc.get("cold_txs").and_then(|j| j.as_i64()), Some(2));
        assert_eq!(
            inc.get("cold_txs_deletion").and_then(|j| j.as_i64()),
            Some(1)
        );
        assert_eq!(
            inc.get("cold_txs_uncertified").and_then(|j| j.as_i64()),
            Some(0)
        );

        let mut off = open_reach(false);
        off.handle(1, tx("+e(b, c)."));
        let (frames, _) = off.handle(2, DbOp::Stats);
        let doc = park_json::parse(&frames[0]).unwrap();
        assert!(doc.get("incremental").is_none(), "{}", frames[0]);
    }

    #[test]
    fn policy_change_invalidates_the_warm_state() {
        let mut s = open_reach(true);
        s.handle(1, tx("+e(b, c).")); // seeds warm (cold)
        s.handle(2, tx("+e(c, d).")); // warm
        let (frames, _) = s.handle(
            3,
            DbOp::Policy {
                policy: "prefer-insert".into(),
            },
        );
        assert!(frames[0].contains("\"ok\""), "{}", frames[0]);
        s.handle(4, tx("+e(d, e).")); // reseeds cold under the new policy
        let (frames, _) = s.handle(5, DbOp::Stats);
        let doc = park_json::parse(&frames[0]).unwrap();
        let inc = doc.get("incremental").unwrap();
        assert_eq!(inc.get("invalidations").and_then(|j| j.as_i64()), Some(1));
        assert_eq!(inc.get("cold_txs").and_then(|j| j.as_i64()), Some(2));
    }

    #[test]
    fn close_reports_a_final_summary_and_ends_the_session() {
        let mut s = open_payroll();
        let (frames, closed) = s.handle(1, DbOp::Close { snapshot: None });
        assert!(closed);
        let doc = park_json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|j| j.as_str()), Some("closed"));
        assert_eq!(doc.get("facts").and_then(|j| j.as_i64()), Some(2));
    }
}
