//! The serve pipeline: receiver → scheduler → per-database worker →
//! ordered sink.
//!
//! The receiving thread assigns each request line a sequence number and
//! routes it: control ops (`list`, `ping`, `shutdown`) are answered in
//! place, `create` spawns a dedicated worker thread owning that
//! database, and every other op is forwarded to its database's worker
//! over an mpsc channel. Workers answer with `(seq, frames)` batches to
//! a single sink thread that buffers out-of-order batches and writes
//! strictly in sequence — so output order is independent of worker
//! scheduling, and a session transcript is reproducible byte for byte.
//!
//! Invariant the sink relies on: every consumed sequence number produces
//! exactly one batch (workers answer even when the database failed to
//! open; the receiver answers unknown-database and parse errors itself).

use crate::protocol::{self, error_frame, frame, DbOp, Request};
use crate::session::DbSession;
use crate::ServeOptions;
use park_json::Json;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::mpsc::{Receiver, Sender};

/// One unit of work for a database worker.
enum Job {
    Op { seq: u64, op: DbOp },
    Shutdown { snapshot_dir: Option<String> },
}

/// Run one serve session: read ndjson requests from `input`, write
/// ndjson frames to `output`. Returns when the input ends or a
/// `shutdown` op arrives — both paths emit a final `bye` frame with a
/// summary per open database.
pub fn serve(
    input: impl BufRead,
    output: impl Write + Send,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    std::thread::scope(|s| {
        let (sink_tx, sink_rx) = std::sync::mpsc::channel::<(u64, Vec<String>)>();
        let sink = s.spawn(move || sink_loop(sink_rx, output));
        let (summary_tx, summary_rx) = std::sync::mpsc::channel::<(u64, Json)>();

        let _ = sink_tx.send((0, vec![hello_frame(opts)]));
        // Open databases in creation order: (name, creation id, jobs).
        let mut registry: Vec<(String, u64, Sender<Job>)> = Vec::new();
        let mut created: u64 = 0;
        let mut seq: u64 = 0;
        let mut snapshot_dir: Option<String> = None;
        let mut graceful = false;

        for line in input.lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            seq += 1;
            let req = match protocol::parse_request(line, opts) {
                Ok(r) => r,
                Err(msg) => {
                    let _ = sink_tx.send((seq, vec![error_frame(seq, None, &msg)]));
                    continue;
                }
            };
            match req {
                Request::Ping => {
                    let _ = sink_tx.send((seq, vec![frame("pong", seq, Vec::new())]));
                }
                Request::List => {
                    let names: Vec<String> = registry.iter().map(|(n, _, _)| n.clone()).collect();
                    let _ = sink_tx.send((
                        seq,
                        vec![frame(
                            "dbs",
                            seq,
                            vec![("dbs", protocol::str_array(&names))],
                        )],
                    ));
                }
                Request::Shutdown { snapshot_dir: dir } => {
                    snapshot_dir = dir;
                    graceful = true;
                    break;
                }
                Request::Db { db, op } => match op {
                    DbOp::Create { .. } => {
                        if registry.iter().any(|(n, _, _)| n == &db) {
                            let _ = sink_tx.send((
                                seq,
                                vec![error_frame(
                                    seq,
                                    Some(&db),
                                    &format!("database `{db}` is already open"),
                                )],
                            ));
                            continue;
                        }
                        let (tx, rx) = std::sync::mpsc::channel::<Job>();
                        let _ = tx.send(Job::Op { seq, op });
                        created += 1;
                        let (name, sink_tx, summary_tx) =
                            (db.clone(), sink_tx.clone(), summary_tx.clone());
                        let id = created;
                        s.spawn(move || worker_loop(name, id, rx, sink_tx, summary_tx));
                        registry.push((db, id, tx));
                    }
                    DbOp::Close { .. } => {
                        // Unregister eagerly: later ops on this name are
                        // unknown-database even while the worker drains.
                        match registry.iter().position(|(n, _, _)| n == &db) {
                            Some(i) => {
                                let (_, _, tx) = registry.remove(i);
                                let _ = tx.send(Job::Op { seq, op });
                            }
                            None => {
                                let _ = sink_tx.send((
                                    seq,
                                    vec![error_frame(
                                        seq,
                                        Some(&db),
                                        &format!("unknown database `{db}`"),
                                    )],
                                ));
                            }
                        }
                    }
                    op => match registry.iter().find(|(n, _, _)| n == &db) {
                        Some((_, _, tx)) => {
                            let _ = tx.send(Job::Op { seq, op });
                        }
                        None => {
                            let _ = sink_tx.send((
                                seq,
                                vec![error_frame(
                                    seq,
                                    Some(&db),
                                    &format!("unknown database `{db}`"),
                                )],
                            ));
                        }
                    },
                },
            }
        }

        // Shutdown barrier: every worker snapshots (if asked), reports a
        // summary, and exits; the bye frame lists them in creation order.
        if !graceful {
            seq += 1;
        }
        let open = registry.len();
        for (_, _, tx) in &registry {
            let _ = tx.send(Job::Shutdown {
                snapshot_dir: snapshot_dir.clone(),
            });
        }
        drop(registry);
        let mut summaries: Vec<(u64, Json)> = Vec::with_capacity(open);
        for _ in 0..open {
            match summary_rx.recv() {
                Ok(entry) => summaries.push(entry),
                Err(_) => break,
            }
        }
        summaries.sort_by_key(|(id, _)| *id);
        let bye = frame(
            "bye",
            seq,
            vec![(
                "databases",
                Json::Array(summaries.into_iter().map(|(_, j)| j).collect()),
            )],
        );
        let _ = sink_tx.send((seq, vec![bye]));
        drop(sink_tx);
        sink.join().expect("sink thread panicked")
    })
}

fn hello_frame(opts: &ServeOptions) -> String {
    frame(
        "hello",
        0,
        vec![
            ("schema", Json::str(protocol::SCHEMA)),
            ("policy", Json::str(&opts.policy)),
            ("eval", Json::str(protocol::eval_name(opts.evaluation))),
            ("scope", Json::str(protocol::scope_name(opts.scope))),
        ],
    )
}

/// A worker owns one database for its whole life. A failed `create`
/// keeps the worker (and the name) alive in a failed state so every
/// routed op still consumes its sequence number with an error frame —
/// `close` releases the name.
fn worker_loop(
    name: String,
    creation_id: u64,
    jobs: Receiver<Job>,
    sink: Sender<(u64, Vec<String>)>,
    summaries: Sender<(u64, Json)>,
) {
    let mut session: Result<DbSession, String> = Err("never created".into());
    for job in jobs {
        match job {
            Job::Op {
                seq,
                op:
                    DbOp::Create {
                        program,
                        facts,
                        policy,
                        options,
                        journal,
                        incremental,
                    },
            } if session.is_err() => {
                match DbSession::open(
                    &name,
                    &program,
                    &facts,
                    &policy,
                    options,
                    journal.as_deref(),
                    incremental,
                ) {
                    Ok(s) => {
                        let _ = sink.send((seq, vec![s.created_frame(seq)]));
                        session = Ok(s);
                    }
                    Err(msg) => {
                        let _ = sink.send((seq, vec![error_frame(seq, Some(&name), &msg)]));
                        session = Err(msg);
                    }
                }
            }
            Job::Op { seq, op } => match &mut session {
                Ok(s) => {
                    let (frames, closed) = s.handle(seq, op);
                    let _ = sink.send((seq, frames));
                    if closed {
                        return;
                    }
                }
                Err(msg) => {
                    let closing = matches!(op, DbOp::Close { .. });
                    let _ = sink.send((
                        seq,
                        vec![error_frame(
                            seq,
                            Some(&name),
                            &format!("database `{name}` failed to open: {msg}"),
                        )],
                    ));
                    if closing {
                        return;
                    }
                }
            },
            Job::Shutdown { snapshot_dir } => {
                let summary = match &session {
                    Ok(s) => s.summary(snapshot_dir.as_deref()),
                    Err(msg) => {
                        Json::object([("db", Json::str(&name)), ("error", Json::str(msg.clone()))])
                    }
                };
                let _ = summaries.send((creation_id, summary));
                return;
            }
        }
    }
}

/// Write batches strictly in sequence order, buffering early arrivals.
fn sink_loop(batches: Receiver<(u64, Vec<String>)>, mut output: impl Write) -> std::io::Result<()> {
    let mut next: u64 = 0;
    let mut pending: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (seq, frames) in batches {
        pending.insert(seq, frames);
        while let Some(frames) = pending.remove(&next) {
            for f in &frames {
                writeln!(output, "{f}")?;
            }
            // Flush per batch: a TCP client scripting the session sees
            // each answer as soon as it is in order.
            output.flush()?;
            next += 1;
        }
    }
    // A gap here would mean a dropped sequence number; emit stragglers
    // in order rather than losing them.
    for (_, frames) in pending {
        for f in &frames {
            writeln!(output, "{f}")?;
        }
    }
    output.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_session(input: &str) -> Vec<Json> {
        let mut out: Vec<u8> = Vec::new();
        serve(input.as_bytes(), &mut out, &ServeOptions::default()).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| park_json::parse(l).unwrap_or_else(|e| panic!("bad frame {l}: {e}")))
            .collect()
    }

    fn kinds(frames: &[Json]) -> Vec<&str> {
        frames
            .iter()
            .map(|f| f.get("frame").and_then(|j| j.as_str()).unwrap())
            .collect()
    }

    #[test]
    fn empty_input_is_hello_then_bye() {
        let frames = run_session("");
        assert_eq!(kinds(&frames), ["hello", "bye"]);
        assert_eq!(
            frames[0].get("schema").and_then(|j| j.as_str()),
            Some(protocol::SCHEMA)
        );
        assert_eq!(frames[1].get("seq").and_then(|j| j.as_i64()), Some(1));
    }

    #[test]
    fn a_full_session_stays_in_sequence_order() {
        let frames = run_session(concat!(
            r#"{"op":"ping"}"#,
            "\n",
            "# a comment, not a request\n",
            "\n",
            r#"{"op":"create","db":"hr","program":"onleave: -active(X) -> +offboard(X).","facts":"active(ann). active(bob)."}"#,
            "\n",
            r#"{"op":"transact","db":"hr","updates":"-active(ann)."}"#,
            "\n",
            r#"{"op":"list"}"#,
            "\n",
            r#"{"op":"query","db":"hr","pred":"offboard"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        ));
        assert_eq!(
            kinds(&frames),
            ["hello", "pong", "created", "delta", "dbs", "rows", "bye"]
        );
        let seqs: Vec<i64> = frames
            .iter()
            .map(|f| f.get("seq").and_then(|j| j.as_i64()).unwrap())
            .collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(
            frames[3].get("added").and_then(|j| j.as_array()).unwrap(),
            [Json::str("offboard(ann)")]
        );
        let dbs = frames[6]
            .get("databases")
            .and_then(|j| j.as_array())
            .unwrap();
        assert_eq!(dbs.len(), 1);
        assert_eq!(dbs[0].get("transactions").and_then(|j| j.as_i64()), Some(1));
    }

    #[test]
    fn multi_tenant_databases_are_independent() {
        let frames = run_session(concat!(
            r#"{"op":"create","db":"a","program":"p -> +qa.","facts":"p."}"#,
            "\n",
            r#"{"op":"create","db":"b","program":"p -> +qb.","facts":"p."}"#,
            "\n",
            r#"{"op":"settle","db":"a"}"#,
            "\n",
            r#"{"op":"settle","db":"b"}"#,
            "\n",
            r#"{"op":"close","db":"a"}"#,
            "\n",
            r#"{"op":"settle","db":"a"}"#,
            "\n",
        ));
        assert_eq!(
            kinds(&frames),
            ["hello", "created", "created", "delta", "delta", "closed", "error", "bye"]
        );
        assert_eq!(
            frames[3].get("added").and_then(|j| j.as_array()).unwrap(),
            [Json::str("qa")]
        );
        assert_eq!(
            frames[4].get("added").and_then(|j| j.as_array()).unwrap(),
            [Json::str("qb")]
        );
        // Only b remains open at shutdown.
        let dbs = frames[7]
            .get("databases")
            .and_then(|j| j.as_array())
            .unwrap();
        assert_eq!(dbs.len(), 1);
        assert_eq!(dbs[0].get("db").and_then(|j| j.as_str()), Some("b"));
    }

    #[test]
    fn errors_consume_their_sequence_number_and_the_session_continues() {
        let frames = run_session(concat!(
            "this is not json\n",
            r#"{"op":"transact","db":"ghost","updates":"+p."}"#,
            "\n",
            r#"{"op":"create","db":"bad","program":"broken("}"#,
            "\n",
            r#"{"op":"settle","db":"bad"}"#,
            "\n",
            r#"{"op":"create","db":"bad","program":"p -> +q."}"#,
            "\n",
            r#"{"op":"close","db":"bad"}"#,
            "\n",
            r#"{"op":"create","db":"bad","program":"p -> +q.","facts":"p."}"#,
            "\n",
            r#"{"op":"settle","db":"bad"}"#,
            "\n",
            r#"{"op":"ping"}"#,
            "\n",
        ));
        assert_eq!(
            kinds(&frames),
            [
                "hello", "error", "error", "error", "error", "error", "error", "created", "delta",
                "pong", "bye"
            ]
        );
        // Re-creating a name while it is open (even failed-open) errors;
        // after close the name is free again.
        assert!(frames[5]
            .get("message")
            .and_then(|j| j.as_str())
            .unwrap()
            .contains("already open"));
        assert!(frames[6]
            .get("message")
            .and_then(|j| j.as_str())
            .unwrap()
            .contains("failed to open"));
        let seqs: Vec<i64> = frames
            .iter()
            .map(|f| f.get("seq").and_then(|j| j.as_i64()).unwrap())
            .collect();
        assert_eq!(seqs, (0..=10).collect::<Vec<i64>>());
    }

    #[test]
    fn shutdown_snapshot_dir_writes_one_snapshot_per_database() {
        let dir = std::env::temp_dir().join(format!("park-serve-shutdown-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = format!(
            concat!(
                r#"{{"op":"create","db":"a","program":"p -> +q.","facts":"p."}}"#,
                "\n",
                r#"{{"op":"create","db":"b","program":"p -> +q.","facts":"p. r."}}"#,
                "\n",
                r#"{{"op":"shutdown","snapshot_dir":"{dir}"}}"#,
                "\n",
            ),
            dir = dir.display()
        );
        let frames = run_session(&input);
        let bye = frames.last().unwrap();
        let dbs = bye.get("databases").and_then(|j| j.as_array()).unwrap();
        assert_eq!(dbs.len(), 2);
        for (name, facts) in [("a", 1), ("b", 2)] {
            let path = dir.join(format!("{name}.snapshot.json"));
            let snap = park::storage::Snapshot::from_json(&std::fs::read_to_string(&path).unwrap())
                .unwrap();
            assert_eq!(snap.len(), facts);
            let _ = std::fs::remove_file(&path);
        }
        let _ = std::fs::remove_dir(&dir);
    }
}
