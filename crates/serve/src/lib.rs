//! # park-serve
//!
//! A resident `park` process: rule programs are compiled once, databases
//! stay hot in memory, and transaction update streams arrive as ndjson —
//! over stdin or a TCP socket — each answered with per-transaction
//! result deltas (added / removed / blocked), optional trace events, and
//! park-metrics/v1 documents. One session can hold many named databases
//! (each an [`park::db::ActiveDatabase`] with its own vocabulary, policy
//! and journal), reload rule programs without losing state, and shut
//! down cleanly with a final snapshot per database.
//!
//! The wire protocol is **`park-serve/v1`**, specified in docs/serve.md
//! and implemented in [`protocol`]. The execution model — receiver →
//! scheduler → per-database worker → sequence-ordered sink — lives in
//! [`pipeline`]; per-database behavior in [`session`].
//!
//! Determinism: frames carry no timestamps (metrics documents are the
//! opt-in exception), output order is the request order, and every
//! transaction runs under a fresh policy instance, so a served session
//! transcript is byte-reproducible and transaction deltas byte-match
//! the same updates applied by chained one-shot `park run` processes.
//!
//! ```
//! use park_serve::{serve, ServeOptions};
//!
//! let input = concat!(
//!     r#"{"op":"create","db":"hr","program":"onleave: -active(X) -> +offboard(X).","facts":"active(ann)."}"#, "\n",
//!     r#"{"op":"transact","db":"hr","updates":"-active(ann)."}"#, "\n",
//!     r#"{"op":"shutdown"}"#, "\n",
//! );
//! let mut out = Vec::new();
//! serve(input.as_bytes(), &mut out, &ServeOptions::default()).unwrap();
//! let out = String::from_utf8(out).unwrap();
//! assert!(out.lines().any(|l| l.contains(r#""added":["offboard(ann)"]"#)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod protocol;
pub mod session;

pub use pipeline::serve;
pub use protocol::SCHEMA;
pub use session::{resolve_policy, DbSession};

use park::engine::{EvaluationMode, ResolutionScope};
use std::io::{BufReader, Write};
use std::net::TcpListener;

/// Session-level defaults, overridable per database at `create`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Default `SELECT` policy name (never `interactive`; see
    /// [`resolve_policy`]).
    pub policy: String,
    /// Default grounding enumeration strategy.
    pub evaluation: EvaluationMode,
    /// Default conflict-resolution scope.
    pub scope: ResolutionScope,
    /// Default intra-step evaluation parallelism (`None` = sequential).
    pub threads: Option<usize>,
    /// Open databases with tracing enabled by default.
    pub trace: bool,
    /// Open databases with cross-transaction incremental evaluation by
    /// default (see docs/incremental.md). Committed results are
    /// byte-identical either way; certified insert-only transactions skip
    /// the cold from-`D` run.
    pub incremental: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            policy: "inertia".into(),
            evaluation: EvaluationMode::default(),
            scope: ResolutionScope::default(),
            threads: None,
            trace: false,
            incremental: false,
        }
    }
}

/// Bind `addr` and serve connections: each connection is one full
/// session (its own databases, its own sequence numbers), handled one
/// at a time in accept order. The bound address is reported on `status`
/// as `park-serve listening on <addr>` — with port 0 this is how the
/// caller learns the real port. With `once`, returns after the first
/// session ends; otherwise accepts forever.
pub fn serve_tcp(
    addr: &str,
    once: bool,
    opts: &ServeOptions,
    status: &mut dyn Write,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    writeln!(status, "park-serve listening on {}", listener.local_addr()?)?;
    status.flush()?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = BufReader::new(stream.try_clone()?);
        // A dropped connection mid-session is that session's problem,
        // not the server's: keep accepting.
        let result = serve(reader, stream, opts);
        if once {
            return result;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpStream;

    #[test]
    fn tcp_session_round_trips_over_a_socket() {
        let opts = ServeOptions::default();
        std::thread::scope(|s| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            s.spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let reader = BufReader::new(stream.try_clone().unwrap());
                serve(reader, stream, &opts).unwrap();
            });
            let mut client = TcpStream::connect(addr).unwrap();
            writeln!(
                client,
                r#"{{"op":"create","db":"hr","program":"p -> +q.","facts":"p."}}"#
            )
            .unwrap();
            writeln!(client, r#"{{"op":"settle","db":"hr"}}"#).unwrap();
            writeln!(client, r#"{{"op":"shutdown"}}"#).unwrap();
            let reader = BufReader::new(client);
            let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 4, "hello, created, delta, bye: {lines:?}");
            assert!(lines[0].contains("park-serve/v1"));
            assert!(lines[2].contains(r#""added":["q"]"#), "{}", lines[2]);
            assert!(lines[3].contains(r#""frame":"bye""#));
        });
    }

    #[test]
    fn serve_options_defaults_are_the_cli_defaults() {
        let o = ServeOptions::default();
        assert_eq!(o.policy, "inertia");
        assert_eq!(o.evaluation, EvaluationMode::Naive);
        assert_eq!(o.scope, ResolutionScope::All);
        assert_eq!(o.threads, None);
        assert!(!o.trace);
        assert!(!o.incremental);
    }
}
