//! Graph workloads: random edge sets and the paper's Section 4.2
//! irreflexive-graph program, scaled to arbitrary node counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The Section 4.2 program:
///
/// ```text
/// r1: p(X), p(Y) -> +q(X, Y).
/// r2: q(X, X) -> -q(X, X).
/// r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
/// ```
///
/// "We want to build some irreflexive graph not containing any arc implied
/// by transitivity of existing edges."
pub fn irreflexive_graph_program() -> String {
    "r1: p(X), p(Y) -> +q(X, Y).\n\
     r2: q(X, X) -> -q(X, X).\n\
     r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).\n"
        .to_string()
}

/// Node name for index `i`: `n0`, `n1`, ....
pub fn node(i: usize) -> String {
    format!("n{i}")
}

/// A database of `n` nodes: `p(n0). p(n1). ...` — the input of the
/// irreflexive-graph program. The paper's worked example is `n = 3`
/// (constants a, b, c).
pub fn nodes_database(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        writeln!(s, "p({}).", node(i)).expect("write to String");
    }
    s
}

/// A seeded Erdős–Rényi digraph `G(n, p)` over `edge/2` facts (no self
/// loops).
pub fn erdos_renyi_edges(n: usize, p: f64, seed: u64) -> String {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.random_bool(p) {
                writeln!(s, "edge({}, {}).", node(i), node(j)).expect("write to String");
            }
        }
    }
    s
}

/// A simple directed path `edge(n0, n1). edge(n1, n2). ...` of `n` edges —
/// worst case for transitive closure depth.
pub fn path_edges(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        writeln!(s, "edge({}, {}).", node(i), node(i + 1)).expect("write to String");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{Engine, Inertia};
    use park_storage::{FactStore, Vocabulary};
    use park_syntax::{parse_facts, parse_program};
    use std::sync::Arc;

    #[test]
    fn nodes_database_has_n_facts() {
        let facts = parse_facts(&nodes_database(5)).unwrap();
        assert_eq!(facts.len(), 5);
        assert_eq!(facts[0].atom.to_string(), "p(n0)");
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic_and_loop_free() {
        let a = erdos_renyi_edges(12, 0.3, 7);
        let b = erdos_renyi_edges(12, 0.3, 7);
        assert_eq!(a, b);
        let c = erdos_renyi_edges(12, 0.3, 8);
        assert_ne!(a, c);
        for f in parse_facts(&a).unwrap() {
            assert_ne!(f.atom.args[0], f.atom.args[1], "self loop in {}", f.atom);
        }
    }

    #[test]
    fn extreme_probabilities() {
        assert!(parse_facts(&erdos_renyi_edges(5, 0.0, 1))
            .unwrap()
            .is_empty());
        assert_eq!(
            parse_facts(&erdos_renyi_edges(5, 1.0, 1)).unwrap().len(),
            20
        );
    }

    #[test]
    fn path_edges_count() {
        assert_eq!(parse_facts(&path_edges(9)).unwrap().len(), 9);
    }

    #[test]
    fn irreflexive_program_parses_and_runs_at_n3() {
        // At n = 3 with inertia, every q-conflict resolves to delete
        // (q ∉ D), blocking all r1 instances: the result has no q at all.
        // (The paper's custom SELECT that keeps a 4-cycle is exercised in
        // the integration tests.)
        let vocab = Vocabulary::new();
        let program = parse_program(&irreflexive_graph_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, &nodes_database(3)).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        assert_eq!(
            out.database.sorted_display(),
            vec!["p(n0)", "p(n1)", "p(n2)"]
        );
    }
}
