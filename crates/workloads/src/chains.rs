//! Conflict-chain workloads, generalizing the paper's Section 5 example.
//!
//! Each chain derives, over several steps, a deletion that clashes with an
//! immediate insertion: chain `i` consists of
//!
//! ```text
//! seed_i:  start -> +goal_i.
//! c_i_0:   start -> +link_i_0.
//! c_i_j:   link_i_{j-1} -> +link_i_j.
//! kill_i:  link_i_{last} -> -goal_i.
//! ```
//!
//! so the conflict on `goal_i` surfaces only after the chain has been
//! walked. With equal chain lengths every conflict appears in the same Γ
//! step — the resolve-all scope settles them in a single restart while the
//! one-at-a-time scope needs one restart per chain (experiment C5). With
//! staggered lengths the conflicts appear in different steps, forcing one
//! restart each regardless of scope (experiment C2).

use std::fmt::Write as _;

/// `k` chains, each of length `len` (≥ 1). Database is `start.`.
pub fn parallel_conflicts(k: usize, len: usize) -> (String, String) {
    assert!(len >= 1, "chains need at least one link");
    let mut p = String::new();
    for i in 0..k {
        chain(&mut p, i, len);
    }
    (p, "start.\n".to_string())
}

/// `k` chains of lengths 1, 2, ..., k. Database is `start.`.
pub fn staggered_conflicts(k: usize) -> (String, String) {
    let mut p = String::new();
    for i in 0..k {
        chain(&mut p, i, i + 1);
    }
    (p, "start.\n".to_string())
}

fn chain(p: &mut String, i: usize, len: usize) {
    writeln!(p, "seed{i}: start -> +goal{i}.").expect("write to String");
    writeln!(p, "c{i}_0: start -> +link{i}_0.").expect("write to String");
    for j in 1..len {
        writeln!(p, "c{i}_{j}: link{i}_{} -> +link{i}_{j}.", j - 1).expect("write to String");
    }
    writeln!(p, "kill{i}: link{i}_{} -> -goal{i}.", len - 1).expect("write to String");
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{Engine, EngineOptions, Inertia, ResolutionScope};
    use park_storage::{FactStore, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn run(program: &str, facts: &str, scope: ResolutionScope) -> park_engine::ParkOutcome {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program(program).unwrap(),
            EngineOptions::default().with_scope(scope),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        engine.park(&db, &mut Inertia).unwrap()
    }

    #[test]
    fn parallel_conflicts_single_restart_under_all_scope() {
        let (p, f) = parallel_conflicts(6, 3);
        let out = run(&p, &f, ResolutionScope::All);
        // All six conflicts surface in one step and are settled together.
        assert_eq!(out.stats.restarts, 1);
        assert_eq!(out.stats.conflicts_resolved, 6);
        // Inertia deletes every goal (none are in D).
        assert!(!out
            .database
            .sorted_display()
            .iter()
            .any(|x| x.starts_with("goal")));
    }

    #[test]
    fn parallel_conflicts_k_restarts_under_one_scope() {
        let (p, f) = parallel_conflicts(6, 3);
        let out = run(&p, &f, ResolutionScope::One);
        assert_eq!(out.stats.restarts, 6);
        assert_eq!(out.stats.conflicts_resolved, 6);
    }

    #[test]
    fn staggered_conflicts_need_one_restart_each() {
        let (p, f) = staggered_conflicts(5);
        let out = run(&p, &f, ResolutionScope::All);
        assert_eq!(out.stats.restarts, 5);
        assert_eq!(out.stats.conflicts_resolved, 5);
    }

    #[test]
    fn results_agree_across_scopes() {
        let (p, f) = parallel_conflicts(4, 2);
        let all = run(&p, &f, ResolutionScope::All);
        let one = run(&p, &f, ResolutionScope::One);
        assert!(all.database.same_facts(&one.database));
        // The lazy scope blocks no more instances than resolve-all.
        assert!(one.stats.blocked_instances <= all.stats.blocked_instances);
    }

    #[test]
    fn chain_links_survive() {
        let (p, f) = parallel_conflicts(1, 3);
        let out = run(&p, &f, ResolutionScope::All);
        let facts = out.database.sorted_display();
        assert!(facts.contains(&"link0_0".to_string()));
        assert!(facts.contains(&"link0_2".to_string()));
    }
}
