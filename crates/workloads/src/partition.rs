//! Guard-partitioned conflict-free workloads (experiment C8).
//!
//! Each predicate family carries a syntactic conflict pair — an inserting
//! and a deleting rule whose heads unify — but the bodies split the value
//! space with complementary interval guards, so no grounding can ever
//! contest an atom. The syntactic pair analysis must keep conflict
//! provenance and scan every Γ step for clashes; the refined
//! condition-overlap analysis (`park_engine::refine`) certifies the
//! program conflict-free and the engine skips that bookkeeping entirely.
//! This is the workload that measures what the certificate buys.

use std::fmt::Write as _;

/// `k` predicate families of the shape
///
/// ```text
/// grow_i:  src_i(X), X < 500  -> +val_i(X).
/// cut_i:   src_i(X), X >= 500 -> -val_i(X).
/// chain_i: val_i(X), X < 250  -> +lo_i(X).
/// ```
///
/// `grow_i` / `cut_i` is a syntactic conflict pair on `val_i`, excluded by
/// guard refinement (`X < 500` contradicts `X >= 500` on the head-linked
/// variable).
pub fn guard_partition_program(k: usize) -> String {
    let mut p = String::new();
    for i in 0..k {
        writeln!(p, "grow{i}: src{i}(X), X < 500 -> +val{i}(X).").expect("write to String");
        writeln!(p, "cut{i}: src{i}(X), X >= 500 -> -val{i}(X).").expect("write to String");
        writeln!(p, "chain{i}: val{i}(X), X < 250 -> +lo{i}(X).").expect("write to String");
    }
    p
}

/// Facts for [`guard_partition_program`]: `per_family` integers `0..` per
/// `src_i`, straddling both sides of the guard split.
pub fn guard_partition_database(k: usize, per_family: usize) -> String {
    let mut facts = String::new();
    for i in 0..k {
        for v in 0..per_family {
            writeln!(facts, "src{i}({v}).").expect("write to String");
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::refine::{certify_conflict_free, AnalysisVariant};
    use park_engine::{analysis, CompiledProgram};
    use park_storage::Vocabulary;

    #[test]
    fn workload_is_pair_rich_but_certified() {
        let program = park_syntax::parse_program(&guard_partition_program(4)).unwrap();
        park_syntax::check_program(&program).unwrap();
        let compiled = CompiledProgram::compile(Vocabulary::new(), &program).unwrap();
        assert_eq!(analysis::conflict_pairs(&compiled).len(), 4);
        assert!(certify_conflict_free(&compiled, AnalysisVariant::Faithful).is_some());
    }
}
