//! The HR/payroll workload — the paper's Section 2 motivating domain at
//! scale, with full ECA rules and a genuine conflict.
//!
//! Rules:
//!
//! ```text
//! cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
//! onleave: -active(X) -> +offboard(X).              % event-triggered
//! offb:    offboard(X), payroll(X, S) -> -payroll(X, S).
//! audit:   -payroll(X, S) -> +audit(X).             % event-triggered
//! grant:   active(X), eligible(X) -> +bonus(X).     @priority(1)
//! deny:    flagged(X) -> -bonus(X).                 @priority(2)
//! ```
//!
//! Employees that are active, bonus-eligible, *and* compliance-flagged
//! produce a `bonus` conflict: inertia denies the bonus (it was not in the
//! database), and rule priority also denies it (deny outranks grant) — but
//! a `prefer-insert` shop grants it. The transaction updates deactivate a
//! random subset of employees, driving the event rules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Tuning knobs for the payroll generator.
#[derive(Debug, Clone, Copy)]
pub struct PayrollConfig {
    /// Number of employees.
    pub employees: usize,
    /// Probability an employee is active.
    pub p_active: f64,
    /// Probability an active employee is bonus-eligible.
    pub p_eligible: f64,
    /// Probability an employee is compliance-flagged.
    pub p_flagged: f64,
    /// Probability a (currently active) employee is deactivated by the
    /// transaction.
    pub p_deactivate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PayrollConfig {
    fn default() -> Self {
        PayrollConfig {
            employees: 100,
            p_active: 0.8,
            p_eligible: 0.5,
            p_flagged: 0.15,
            p_deactivate: 0.2,
            seed: 42,
        }
    }
}

/// The fixed rule set (see module docs).
pub fn payroll_program() -> String {
    "cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).\n\
     onleave: -active(X) -> +offboard(X).\n\
     offb: offboard(X), payroll(X, S) -> -payroll(X, S).\n\
     audit: -payroll(X, S) -> +audit(X).\n\
     @priority(1) grant: active(X), eligible(X) -> +bonus(X).\n\
     @priority(2) deny: flagged(X) -> -bonus(X).\n"
        .to_string()
}

/// Generate `(facts, updates)` sources for a configuration.
pub fn payroll_database(config: &PayrollConfig) -> (String, String) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut facts = String::new();
    let mut updates = String::new();
    for i in 0..config.employees {
        let name = format!("e{i}");
        writeln!(facts, "emp({name}).").expect("write to String");
        let salary = 30_000 + (rng.random_range(0..500u32) as i64) * 100;
        writeln!(facts, "payroll({name}, {salary}).").expect("write to String");
        let active = rng.random_bool(config.p_active);
        if active {
            writeln!(facts, "active({name}).").expect("write to String");
            if rng.random_bool(config.p_eligible) {
                writeln!(facts, "eligible({name}).").expect("write to String");
            }
            if rng.random_bool(config.p_deactivate) {
                writeln!(updates, "-active({name}).").expect("write to String");
            }
        }
        if rng.random_bool(config.p_flagged) {
            writeln!(facts, "flagged({name}).").expect("write to String");
        }
    }
    (facts, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{Engine, Inertia};
    use park_policies::{PreferInsert, RulePriority};
    use park_storage::{FactStore, UpdateSet, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn small() -> PayrollConfig {
        PayrollConfig {
            employees: 40,
            ..PayrollConfig::default()
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let (f1, u1) = payroll_database(&small());
        let (f2, u2) = payroll_database(&small());
        assert_eq!(f1, f2);
        assert_eq!(u1, u2);
    }

    #[test]
    fn inactive_employees_lose_payroll_records() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&payroll_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(
            Arc::clone(&vocab),
            "emp(a). emp(b). active(a). payroll(a, 100). payroll(b, 200).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let facts = out.database.sorted_display();
        assert!(facts.contains(&"payroll(a, 100)".to_string()));
        assert!(!facts.contains(&"payroll(b, 200)".to_string()));
        assert!(facts.contains(&"audit(b)".to_string()), "{facts:?}");
    }

    #[test]
    fn deactivation_updates_cascade_through_events() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&payroll_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "emp(a). active(a). payroll(a, 100).")
            .unwrap();
        let updates = UpdateSet::from_source(&vocab, "-active(a).").unwrap();
        let out = engine.run(&db, &updates, &mut Inertia).unwrap();
        let facts = out.database.sorted_display();
        assert_eq!(facts, vec!["audit(a)", "emp(a)", "offboard(a)"]);
    }

    #[test]
    fn bonus_conflict_policy_dependent() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&payroll_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(
            Arc::clone(&vocab),
            "emp(a). active(a). eligible(a). flagged(a). payroll(a, 100).",
        )
        .unwrap();
        // Inertia and priority both deny the bonus …
        let out = engine.park(&db, &mut Inertia).unwrap();
        assert!(!out
            .database
            .sorted_display()
            .contains(&"bonus(a)".to_string()));
        let out = engine.park(&db, &mut RulePriority::new()).unwrap();
        assert!(!out
            .database
            .sorted_display()
            .contains(&"bonus(a)".to_string()));
        // … but prefer-insert grants it: same engine, different SELECT.
        let out = engine.park(&db, &mut PreferInsert).unwrap();
        assert!(out
            .database
            .sorted_display()
            .contains(&"bonus(a)".to_string()));
    }

    #[test]
    fn generated_workload_runs_end_to_end() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&payroll_program()).unwrap(),
        )
        .unwrap();
        let (facts, updates) = payroll_database(&small());
        let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
        let updates = UpdateSet::from_source(&vocab, &updates).unwrap();
        let out = engine.run(&db, &updates, &mut Inertia).unwrap();
        // Every deactivated employee must have offboarded and lost payroll.
        for u in updates.iter() {
            let name = vocab.display_fact(u.pred, &u.tuple);
            let emp = name.trim_start_matches("active(").trim_end_matches(')');
            let facts = out.database.sorted_display();
            assert!(
                facts.contains(&format!("offboard({emp})")),
                "missing offboard({emp})"
            );
            assert!(
                !facts
                    .iter()
                    .any(|f| f.starts_with(&format!("payroll({emp},"))),
                "payroll({emp}, _) survived deactivation"
            );
        }
    }
}
