//! Recursive, conflict-free workloads: transitive closure and reachability.
//!
//! These exercise the paper's "basic inference engine" requirement — the
//! declarative half must handle recursion and, absent conflicts, coincide
//! with the inflationary fixpoint semantics. They also drive the
//! polynomial-tractability scaling experiments (C1).

/// Transitive closure of `edge/2` into `tc/2`:
///
/// ```text
/// edge(X, Y) -> +tc(X, Y).
/// tc(X, Y), edge(Y, Z) -> +tc(X, Z).
/// ```
pub fn transitive_closure_program() -> String {
    "base: edge(X, Y) -> +tc(X, Y).\n\
     step: tc(X, Y), edge(Y, Z) -> +tc(X, Z).\n"
        .to_string()
}

/// Reachability from a marked source:
///
/// ```text
/// source(X) -> +reach(X).
/// reach(X), edge(X, Y) -> +reach(Y).
/// ```
pub fn reachability_program() -> String {
    "init: source(X) -> +reach(X).\n\
     walk: reach(X), edge(X, Y) -> +reach(Y).\n"
        .to_string()
}

/// Same-generation — a classically harder recursive query:
///
/// ```text
/// flat(X, Y) -> +sg(X, Y).
/// up(X, X1), sg(X1, Y1), down(Y1, Y) -> +sg(X, Y).
/// ```
pub fn same_generation_program() -> String {
    "flatsg: flat(X, Y) -> +sg(X, Y).\n\
     updown: up(X, X1), sg(X1, Y1), down(Y1, Y) -> +sg(X, Y).\n"
        .to_string()
}

/// Garbage-collection cascade with negation and deletions, still
/// conflict-free: unreferenced, non-root objects are deleted, which can
/// unreference further objects only through the marks.
///
/// ```text
/// object(X), !root(X), !referenced(X) -> -object(X).
/// ```
///
/// (The `referenced` relation is precomputed by the generator; the rule
/// demonstrates deletion cascades without conflicts.)
pub fn sweep_program() -> String {
    "sweep: object(X), !root(X), !referenced(X) -> -object(X).\n".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{erdos_renyi_edges, path_edges};
    use park_engine::{Engine, Inertia};
    use park_storage::{FactStore, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn closure_size(facts: &str) -> usize {
        let vocab = Vocabulary::new();
        let program = parse_program(&transitive_closure_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        out.database
            .sorted_display()
            .iter()
            .filter(|f| f.starts_with("tc("))
            .count()
    }

    #[test]
    fn closure_of_a_path() {
        // Path of n edges has n(n+1)/2 closure pairs.
        assert_eq!(closure_size(&path_edges(4)), 4 * 5 / 2);
        assert_eq!(closure_size(&path_edges(8)), 8 * 9 / 2);
    }

    #[test]
    fn closure_of_a_cycle_is_complete() {
        let facts = "edge(a, b). edge(b, c). edge(c, a).";
        assert_eq!(closure_size(facts), 9);
    }

    #[test]
    fn closure_no_conflicts_no_restarts() {
        let vocab = Vocabulary::new();
        let program = parse_program(&transitive_closure_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, &erdos_renyi_edges(10, 0.3, 11)).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn reachability_program_runs() {
        let vocab = Vocabulary::new();
        let program = parse_program(&reachability_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, "source(a). edge(a, b). edge(b, c). edge(x, y).")
            .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let reach: Vec<String> = out
            .database
            .sorted_display()
            .into_iter()
            .filter(|f| f.starts_with("reach("))
            .collect();
        assert_eq!(reach, vec!["reach(a)", "reach(b)", "reach(c)"]);
    }

    #[test]
    fn same_generation_program_runs() {
        let vocab = Vocabulary::new();
        let program = parse_program(&same_generation_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(
            vocab,
            "flat(m, n). up(a, m). down(n, b). up(x, a). down(b, y).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let sg: Vec<String> = out
            .database
            .sorted_display()
            .into_iter()
            .filter(|f| f.starts_with("sg("))
            .collect();
        assert_eq!(sg, vec!["sg(a, b)", "sg(m, n)", "sg(x, y)"]);
    }

    #[test]
    fn sweep_deletes_unreferenced_objects() {
        let vocab = Vocabulary::new();
        let program = parse_program(&sweep_program()).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(
            vocab,
            "object(a). object(b). object(c). root(a). referenced(b).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        assert_eq!(
            out.database.sorted_display(),
            vec!["object(a)", "object(b)", "referenced(b)", "root(a)"]
        );
    }
}
