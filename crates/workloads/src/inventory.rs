//! Inventory-monitoring workload: reorder triggers with a
//! discontinuation conflict and event-driven notifications.
//!
//! ```text
//! restock: low(I), item(I) -> +order(I).            % reorder low stock
//! stop:    discontinued(I) -> -order(I).            % never order these
//! po:      +order(I) -> +po_created(I).             % event: PO raised
//! tell:    -order(I), supplier(I, S) -> +notify(S). % event: cancellation
//! ```
//!
//! Items that are low *and* discontinued conflict on `order(I)` — the
//! databases-that-monitor-critical-systems scenario where the paper
//! suggests interactive resolution; the generator lets any policy be
//! plugged in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Tuning knobs for the inventory generator.
#[derive(Debug, Clone, Copy)]
pub struct InventoryConfig {
    /// Number of items.
    pub items: usize,
    /// Number of suppliers (items are assigned round-robin).
    pub suppliers: usize,
    /// Probability an item is low on stock.
    pub p_low: f64,
    /// Probability an item is discontinued.
    pub p_discontinued: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            items: 100,
            suppliers: 7,
            p_low: 0.4,
            p_discontinued: 0.15,
            seed: 7,
        }
    }
}

/// The fixed rule set (see module docs).
pub fn inventory_program() -> String {
    "restock: low(I), item(I) -> +order(I).\n\
     stop: discontinued(I) -> -order(I).\n\
     po: +order(I) -> +po_created(I).\n\
     tell: -order(I), supplier(I, S) -> +notify(S).\n"
        .to_string()
}

/// A guard-based variant: stock levels are data (`stock(I, Q)` with
/// integer quantities) and the low/high classification happens in the
/// rules via comparison guards — the language-extension flavour of the
/// same monitoring workload.
///
/// ```text
/// classify: stock(I, Q), Q < 10 -> +low(I).
/// restock:  low(I), !discontinued(I) -> +order(I).
/// stop:     discontinued(I) -> -order(I).
/// surplus:  stock(I, Q), Q >= 90 -> +overstocked(I).
/// ```
pub fn inventory_guard_program() -> String {
    "classify: stock(I, Q), Q < 10 -> +low(I).\n\
     restock: low(I), !discontinued(I) -> +order(I).\n\
     stop: discontinued(I) -> -order(I).\n\
     surplus: stock(I, Q), Q >= 90 -> +overstocked(I).\n"
        .to_string()
}

/// Facts for [`inventory_guard_program`]: items with uniform random stock
/// quantities in `0..100` plus a discontinued subset.
pub fn inventory_guard_database(config: &InventoryConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut facts = String::new();
    for i in 0..config.items {
        let item = format!("i{i}");
        writeln!(facts, "stock({item}, {}).", rng.random_range(0..100)).expect("write to String");
        if rng.random_bool(config.p_discontinued) {
            writeln!(facts, "discontinued({item}).").expect("write to String");
        }
    }
    facts
}

/// Generate the facts source for a configuration.
pub fn inventory_database(config: &InventoryConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut facts = String::new();
    for i in 0..config.items {
        let item = format!("i{i}");
        writeln!(facts, "item({item}).").expect("write to String");
        writeln!(facts, "supplier({item}, s{}).", i % config.suppliers.max(1))
            .expect("write to String");
        if rng.random_bool(config.p_low) {
            writeln!(facts, "low({item}).").expect("write to String");
        }
        if rng.random_bool(config.p_discontinued) {
            writeln!(facts, "discontinued({item}).").expect("write to String");
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{Engine, Inertia};
    use park_policies::PreferInsert;
    use park_storage::{FactStore, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    #[test]
    fn low_items_get_orders_and_pos() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&inventory_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(
            Arc::clone(&vocab),
            "item(a). low(a). supplier(a, s). item(b).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let facts = out.database.sorted_display();
        assert!(facts.contains(&"order(a)".to_string()));
        assert!(facts.contains(&"po_created(a)".to_string()));
        assert!(!facts.contains(&"order(b)".to_string()));
    }

    #[test]
    fn discontinued_low_item_is_a_conflict() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&inventory_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(
            Arc::clone(&vocab),
            "item(a). low(a). discontinued(a). supplier(a, s1).",
        )
        .unwrap();
        // Inertia: order(a) ∉ D → delete. The cancellation event notifies
        // the supplier.
        let out = engine.park(&db, &mut Inertia).unwrap();
        let facts = out.database.sorted_display();
        assert!(!facts.contains(&"order(a)".to_string()));
        assert!(facts.contains(&"notify(s1)".to_string()), "{facts:?}");
        assert_eq!(out.stats.restarts, 1);
        // Prefer-insert keeps the order instead.
        let out = engine.park(&db, &mut PreferInsert).unwrap();
        assert!(out
            .database
            .sorted_display()
            .contains(&"order(a)".to_string()));
    }

    #[test]
    fn guard_workload_classifies_by_quantity() {
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&inventory_guard_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(
            Arc::clone(&vocab),
            "stock(a, 5). stock(b, 50). stock(c, 95). stock(d, 9). discontinued(d).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        let facts = out.database.sorted_display();
        assert!(facts.contains(&"low(a)".to_string()));
        assert!(facts.contains(&"low(d)".to_string()));
        assert!(!facts.contains(&"low(b)".to_string()));
        assert!(facts.contains(&"overstocked(c)".to_string()));
        assert!(facts.contains(&"order(a)".to_string()));
        // d is low but discontinued: restock's negation stops the order.
        assert!(!facts.contains(&"order(d)".to_string()));
    }

    #[test]
    fn guard_workload_generated_runs() {
        let cfg = InventoryConfig {
            items: 80,
            ..InventoryConfig::default()
        };
        assert_eq!(
            inventory_guard_database(&cfg),
            inventory_guard_database(&cfg)
        );
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&inventory_guard_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, &inventory_guard_database(&cfg)).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        // Every low item has stock < 10 in the data.
        let facts = out.database.sorted_display();
        for f in facts.iter().filter(|f| f.starts_with("low(")) {
            let item = &f[4..f.len() - 1];
            let qty_fact = facts
                .iter()
                .find(|g| g.starts_with(&format!("stock({item},")))
                .unwrap_or_else(|| panic!("no stock fact for {item}"));
            let qty: i64 = qty_fact[qty_fact.rfind(' ').unwrap() + 1..qty_fact.len() - 1]
                .parse()
                .unwrap();
            assert!(qty < 10, "{item} has {qty}");
        }
    }

    #[test]
    fn generated_database_is_deterministic_and_runs() {
        let cfg = InventoryConfig {
            items: 60,
            ..InventoryConfig::default()
        };
        assert_eq!(inventory_database(&cfg), inventory_database(&cfg));
        let vocab = Vocabulary::new();
        let engine = Engine::new(
            Arc::clone(&vocab),
            &parse_program(&inventory_program()).unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, &inventory_database(&cfg)).unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        // No discontinued item may hold an order in the result.
        let facts = out.database.sorted_display();
        for f in &facts {
            if let Some(item) = f
                .strip_prefix("discontinued(")
                .map(|s| s.trim_end_matches(')'))
            {
                assert!(
                    !facts.contains(&format!("order({item})")),
                    "discontinued {item} still ordered"
                );
            }
        }
    }
}
