//! # park-workloads
//!
//! Synthetic workload generators for the PARK experiments. All generators
//! are deterministic (seeded) and emit `.park` / `.facts` source text so
//! the same inputs can be run through the library, the CLI, and the bench
//! harness.
//!
//! * [`graph`] — node sets, seeded Erdős–Rényi digraphs, and the paper's
//!   Section 4.2 irreflexive-graph program at any scale.
//! * [`closure`] — recursive, conflict-free programs (transitive closure,
//!   reachability, same-generation, deletion sweeps) for the polynomial
//!   scaling experiments.
//! * [`chains`] — conflict ladders generalizing Section 5, driving the
//!   restart-count and resolution-scope experiments.
//! * [`payroll`] — the Section 2 motivating HR domain with full ECA rules,
//!   event cascades, and a policy-dependent bonus conflict.
//! * [`inventory`] — reorder triggers with discontinuation conflicts and
//!   event-driven notifications.
//! * [`partition`] — guard-partitioned opposite-polarity rule families
//!   that are pair-rich yet certifiably conflict-free, exercising the
//!   engine's certificate fast path (experiment C8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chains;
pub mod closure;
pub mod graph;
pub mod inventory;
pub mod partition;
pub mod payroll;

pub use chains::{parallel_conflicts, staggered_conflicts};
pub use closure::{
    reachability_program, same_generation_program, sweep_program, transitive_closure_program,
};
pub use graph::{erdos_renyi_edges, irreflexive_graph_program, node, nodes_database, path_edges};
pub use inventory::{
    inventory_database, inventory_guard_database, inventory_guard_program, inventory_program,
    InventoryConfig,
};
pub use partition::{guard_partition_database, guard_partition_program};
pub use payroll::{payroll_database, payroll_program, PayrollConfig};
