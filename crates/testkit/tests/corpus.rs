//! The regression corpus: every `tests/corpus/*.case` file — paper
//! examples, engine edge cases, and minimized fuzzer finds — must pass
//! the full conformance matrix. To add a case, drop a file in the
//! directory (format: a `rules:` section then a `facts:` section, one
//! statement per line, `#` comments); see docs/testing.md.

use park_testkit::{check_case, Case, OracleVariant};
use std::path::Path;

#[test]
fn every_corpus_case_passes_the_full_matrix() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 10,
        "corpus unexpectedly small: {} cases",
        names.len()
    );
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable case file");
        let case = Case::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!case.rules.is_empty(), "{name}: no rules");
        check_case(&case, OracleVariant::Faithful).unwrap_or_else(|d| panic!("{name}: {d}"));
    }
}
