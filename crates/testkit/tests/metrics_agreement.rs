//! Property test: the metrics layer's event-derived totals equal the
//! engine's own `RunStats` counters — on fuzzer-generated cases, across
//! the full mode matrix, under every harness policy.
//!
//! The same agreement is enforced inside `check_case` itself (every matrix
//! run is metered and cross-checked), so these tests both exercise the
//! property directly and prove the harness would report a disagreement as
//! a divergence.

use park_engine::{Engine, JsonMetrics, ParkOutcome};
use park_storage::{FactStore, Vocabulary};
use park_testkit::{check_case, generate, run_fuzz, EngineConfig, OracleVariant, POLICIES};
use std::sync::Arc;

fn metered_run(
    case_seed: u64,
    cfg: &EngineConfig,
    policy: &str,
) -> Option<(ParkOutcome, JsonMetrics)> {
    let case = generate(case_seed);
    let vocab = Vocabulary::new();
    let program = park_syntax::parse_program(&case.program_source()).ok()?;
    park_syntax::check_program(&program).ok()?;
    let db = FactStore::from_source(Arc::clone(&vocab), &case.facts_source()).ok()?;
    let engine = Engine::with_options(vocab, &program, cfg.options()).ok()?;
    let mut resolver = park_policies::by_name(policy).expect("harness policies are known");
    let mut sink = JsonMetrics::new("test");
    let out = engine
        .park_with_metrics(&db, resolver.as_mut(), &mut sink)
        .ok()?;
    Some((out, sink))
}

#[test]
fn metrics_totals_equal_run_stats_on_generated_cases() {
    // 25 seeds × 16 configurations × 3 policies = 1200 metered runs.
    let mut checked = 0u64;
    for seed in 0..25 {
        for cfg in EngineConfig::matrix() {
            for policy in POLICIES {
                let Some((out, sink)) = metered_run(seed, &cfg, policy) else {
                    continue;
                };
                assert_eq!(
                    sink.totals(),
                    out.stats.counters(),
                    "seed {seed}, config {}, policy {policy}",
                    cfg.label()
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 500, "too few runs actually checked: {checked}");
}

#[test]
fn emitted_documents_are_schema_valid_on_generated_cases() {
    for seed in 0..10 {
        for cfg in EngineConfig::matrix().into_iter().take(4) {
            let Some((out, sink)) = metered_run(seed, &cfg, "inertia") else {
                continue;
            };
            let doc = sink.to_json();
            assert_eq!(
                doc.get("schema").and_then(park_json::Json::as_str),
                Some("park-metrics/v1")
            );
            let totals = doc.get("totals").expect("totals object present");
            assert_eq!(
                totals.get("gamma_steps").and_then(park_json::Json::as_i64),
                Some(out.stats.gamma_steps as i64),
                "seed {seed}"
            );
            // The document reparses.
            park_json::parse(&doc.to_pretty()).expect("document round-trips");
        }
    }
}

#[test]
fn fuzz_report_aggregates_counters() {
    let report = run_fuzz(0, 20, OracleVariant::Faithful, |_, _| {})
        .unwrap_or_else(|f| panic!("{}", f.divergence));
    // 20 cases through 16 configurations × 3 policies each: the aggregate
    // counters must reflect real work.
    assert!(report.counters.gamma_steps > 0, "{report:?}");
    assert!(report.counters.groundings_fired > 0, "{report:?}");
}

#[test]
fn check_case_meters_every_matrix_cell() {
    // A corpus-style conflict case: the per-case counter aggregate over 48
    // runs (16 configs × 3 policies) must count at least one restart per
    // conflicting run.
    let case = park_testkit::Case {
        seed: 0,
        rules: vec!["p -> +q.".into(), "p -> -q.".into()],
        facts: vec!["p.".into()],
        txs: Vec::new(),
    };
    let stats = check_case(&case, OracleVariant::Faithful).unwrap_or_else(|d| panic!("{d}"));
    assert!(stats.had_conflicts);
    assert!(stats.counters.restarts >= 48, "{:?}", stats.counters);
}
