//! The engine's cross-mode identity suites, on the shared comparison
//! helpers: parallel evaluation and warm restarts must be *observably
//! identical* to their sequential/cold counterparts — same trace event
//! stream, same `SELECT` call order, same database, blocked set, and
//! semantic counters. Only the scheduling/replay counters may differ.
//!
//! These lived in `park-engine`'s unit tests before `park-testkit`
//! existed; they moved here to sit on the same `fingerprint`/transcript
//! surface the differential harness uses.

use park_engine::{Engine, EngineOptions, EvaluationMode, ParkOutcome, ResolutionScope};
use park_storage::{FactStore, Vocabulary};
use park_syntax::parse_program;
use park_testkit::compare;
use std::sync::Arc;

const SCENARIOS: [(&str, &str); 6] = [
    // Paper P1: one conflict, one restart.
    ("p -> +q. p -> -a. q -> +a.", "p."),
    // Paper P3: conflict cascade with a surviving side derivation.
    ("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p."),
    // Section 5: two restarts, staggered discovery.
    (
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        "p.",
    ),
    // Section 5 second example: counterintuitive inertia.
    (
        "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
        "a.",
    ),
    // Negation whose truth flips between runs.
    ("r1: !q -> +a. r2: p -> +q. r3: q -> -a.", "p."),
    // A variable program with join-order-sensitive evaluation.
    (
        "r1: p(X), p(Y) -> +q(X, Y). r2: q(X, X) -> -q(X, X).
         r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
        "p(a). p(b). p(c).",
    ),
];

fn run_with(rules: &str, facts: &str, options: EngineOptions) -> (ParkOutcome, Vec<String>) {
    let vocab = Vocabulary::new();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &parse_program(rules).unwrap(), options).unwrap();
    let db = FactStore::from_source(vocab, facts).unwrap();
    let mut policy = compare::recording_policy("inertia");
    let out = engine.park(&db, &mut policy).unwrap();
    let calls = compare::transcript(policy.decisions());
    (out, calls)
}

#[test]
fn parallel_runs_are_observably_identical_to_sequential() {
    for mode in [EvaluationMode::Naive, EvaluationMode::SemiNaive] {
        for (rules, facts) in SCENARIOS {
            let opts = |par| {
                EngineOptions::traced()
                    .with_evaluation(mode)
                    .with_parallelism(par)
            };
            let (seq, seq_calls) = run_with(rules, facts, opts(None));
            let (par, par_calls) = run_with(rules, facts, opts(Some(4)));
            compare::assert_observably_identical(
                &format!("{mode:?}: {rules}"),
                "sequential",
                &seq,
                &seq_calls,
                "parallel",
                &par,
                &par_calls,
            );
            // Scheduling may differ, but the work may not.
            assert_eq!(
                seq.stats.groundings_fired, par.stats.groundings_fired,
                "{rules}"
            );
        }
    }
}

#[test]
fn warm_restarts_are_observably_identical_to_cold() {
    // Warm (replay) and cold restarts must agree on traces, SELECT call
    // order, blocked sets, databases, and every stat except the
    // replay/scheduling counters.
    for mode in [EvaluationMode::Naive, EvaluationMode::SemiNaive] {
        for scope in [ResolutionScope::All, ResolutionScope::One] {
            for (rules, facts) in SCENARIOS {
                let opts = |warm| {
                    EngineOptions::traced()
                        .with_evaluation(mode)
                        .with_scope(scope)
                        .with_warm_restarts(warm)
                };
                let (warm, warm_calls) = run_with(rules, facts, opts(true));
                let (cold, cold_calls) = run_with(rules, facts, opts(false));
                compare::assert_observably_identical(
                    &format!("{mode:?}, {scope:?}: {rules}"),
                    "warm",
                    &warm,
                    &warm_calls,
                    "cold",
                    &cold,
                    &cold_calls,
                );
                assert_eq!(
                    warm.stats.groundings_fired, cold.stats.groundings_fired,
                    "{rules}"
                );
                assert_eq!(
                    warm.stats.peak_marked_atoms, cold.stats.peak_marked_atoms,
                    "{rules}"
                );
                assert_eq!(cold.stats.replayed_steps, 0, "{rules}");
                assert_eq!(cold.stats.replay_divergence_step, None, "{rules}");
                if warm.stats.restarts > 0 {
                    assert!(
                        warm.stats.replayed_steps > 0,
                        "a restart must replay at least the first logged step: {rules}"
                    );
                    assert!(
                        warm.stats.replay_divergence_step.is_some(),
                        "every resolution blocks a logged grounding, so replay \
                         must diverge somewhere: {rules}"
                    );
                }
            }
        }
    }
}
