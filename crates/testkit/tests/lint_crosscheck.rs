//! Cross-checks between the static analyzer (`park-lint` / the engine's
//! `refine` module) and observed runtime behaviour.
//!
//! Three claims are exercised:
//!
//! 1. The harness detects an *unsound* analysis: under the deliberately
//!    broken `IgnoreHeadConstants` variant, a program whose conflict hides
//!    behind a head constant is wrongly certified conflict-free, and the
//!    certificate cross-check reports it as a divergence.
//! 2. Every runtime conflict observed across the regression corpus and a
//!    fuzz sweep involves a rule pair listed by `analysis::conflict_pairs`
//!    — the syntactic pair analysis over-approximates, never misses.
//! 3. The conflict-free certificate fast path is unobservable: on a
//!    certified program, runs with certificates on and off are
//!    byte-identical across the whole mode matrix.

use park_engine::{
    analysis, CompiledProgram, Conflict, ConflictResolver, Engine, Resolution, RuleId,
    SelectContext,
};
use park_storage::{FactStore, Vocabulary};
use park_testkit::{check_case_with, AnalysisVariant, Case, EngineConfig, OracleVariant};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// The head-constant trap: `cut` only deletes `q(c0)`, which `grow`
/// inserts whenever `p(c0)` holds — a real conflict that disappears if the
/// analysis ignores constants in rule heads.
fn head_constant_case() -> Case {
    Case::parse(
        "rules:\n\
         grow: p(X) -> +q(X).\n\
         cut: p(X) -> -q(c0).\n\
         facts:\n\
         p(c0).\n",
    )
    .unwrap()
}

#[test]
fn faithful_analysis_passes_the_head_constant_case() {
    check_case_with(
        &head_constant_case(),
        OracleVariant::Faithful,
        AnalysisVariant::Faithful,
    )
    .unwrap_or_else(|d| panic!("faithful analysis diverged: {d}"));
}

#[test]
fn broken_analysis_variant_is_caught_by_the_certificate_crosscheck() {
    let err = check_case_with(
        &head_constant_case(),
        OracleVariant::Faithful,
        AnalysisVariant::IgnoreHeadConstants,
    )
    .expect_err("the broken analysis wrongly certifies this program");
    assert_eq!(err.config, "lint-certificate", "{err}");
    assert!(err.detail.contains("certified conflict-free"), "{err}");
}

/// A resolver wrapper that records the `(inserting, deleting)` rule-id
/// pairs of every conflict it is asked to resolve.
struct RecordingResolver {
    inner: Box<dyn ConflictResolver>,
    seen: Vec<(RuleId, RuleId)>,
}

impl ConflictResolver for RecordingResolver {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Resolution, String> {
        for ins in &conflict.ins {
            for del in &conflict.del {
                self.seen.push((ins.rule, del.rule));
            }
        }
        self.inner.select(ctx, conflict)
    }
}

/// Run one case under every policy with a default engine and assert every
/// observed conflict pair is in the static `conflict_pairs` listing.
fn assert_conflicts_predicted(tag: &str, case: &Case) {
    let vocab = Vocabulary::new();
    let program = park_syntax::parse_program(&case.program_source()).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &case.facts_source()).unwrap();
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
    let predicted: BTreeSet<(RuleId, RuleId)> = analysis::conflict_pairs(&compiled)
        .into_iter()
        .map(|p| (p.inserting, p.deleting))
        .collect();
    let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
    for policy in park_testkit::POLICIES {
        let mut rec = RecordingResolver {
            inner: park_policies::by_name(policy).unwrap(),
            seen: Vec::new(),
        };
        // Engine errors (e.g. resolver-driven livelock guards) are fine
        // here: any conflicts recorded before the failure still count.
        let _ = engine.park(&db, &mut rec);
        for (ins, del) in rec.seen {
            assert!(
                predicted.contains(&(ins, del)),
                "{tag} (policy {policy}): runtime conflict between rules \
                 {ins:?} and {del:?} was not predicted by conflict_pairs"
            );
        }
    }
}

#[test]
fn every_corpus_conflict_is_statically_predicted() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let case = Case::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_conflicts_predicted(&name, &case);
    }
}

#[test]
fn every_fuzzed_conflict_is_statically_predicted() {
    for seed in 0..500 {
        let case = park_testkit::generate(seed);
        assert_conflicts_predicted(&format!("seed {seed}"), &case);
    }
}

#[test]
fn certificate_fast_path_is_byte_identical_across_the_matrix() {
    // Guards partition the value space, so refinement certifies the
    // program conflict-free even though the heads alone clash.
    let src = "grow: p(X), X < 5 -> +q(X).\n\
               cut: p(X), X >= 5 -> -q(X).\n";
    let facts: String = (0..10).map(|i| format!("p({i}).\n")).collect();
    let vocab = Vocabulary::new();
    let program = park_syntax::parse_program(src).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), &facts).unwrap();
    for cfg in EngineConfig::matrix() {
        for policy in park_testkit::POLICIES {
            let run = |certificates: bool| {
                let options = cfg.options().with_conflict_certificates(certificates);
                let engine = Engine::with_options(Arc::clone(&vocab), &program, options).unwrap();
                let mut select = park_policies::by_name(policy).unwrap();
                engine.park(&db, select.as_mut()).unwrap()
            };
            let on = run(true);
            let off = run(false);
            assert!(
                on.stats.certified_conflict_free,
                "{} should certify under {policy}",
                cfg.label()
            );
            assert!(!off.stats.certified_conflict_free);
            assert_eq!(on.stats.restarts, 0);
            if let Some(d) =
                park_testkit::compare::diff_runs("cert-on", &on, &[], "cert-off", &off, &[])
            {
                panic!("{} / {policy}: fast path observable: {d}", cfg.label());
            }
        }
    }
}
