//! The differential harness, end to end: the oracle agrees with the
//! paper's worked examples, the engine agrees with the oracle over a fuzz
//! stream, an injected semantics bug is caught, and the workload
//! generators plug into the same check.

use park_engine::{CompiledProgram, Inertia, ResolutionScope};
use park_storage::{FactStore, Vocabulary};
use park_syntax::parse_program;
use park_testkit::{check_case, minimize, oracle_evaluate, run_fuzz, Case, OracleVariant};
use std::sync::Arc;

fn case(rules: &str, facts: &str) -> Case {
    let lines = |s: &str| {
        s.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect()
    };
    Case {
        seed: 0,
        rules: lines(rules),
        facts: lines(facts),
        txs: Vec::new(),
    }
}

fn oracle_db(rules: &str, facts: &str) -> (Vec<String>, u64, Vec<String>) {
    let vocab = Vocabulary::new();
    let program = parse_program(rules).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), facts).unwrap();
    let compiled = CompiledProgram::compile(vocab, &program).unwrap();
    let run = oracle_evaluate(
        &compiled,
        &db,
        ResolutionScope::All,
        &mut Inertia,
        OracleVariant::Faithful,
    )
    .unwrap();
    (
        run.outcome.database.sorted_display(),
        run.outcome.stats.restarts,
        run.outcome.blocked_display(),
    )
}

// The oracle must reproduce the paper's worked examples on its own — its
// authority comes from matching PAPER.md, not from matching the engine.

#[test]
fn oracle_reproduces_paper_p1() {
    let (db, restarts, _) = oracle_db("p -> +q. p -> -a. q -> +a.", "p.");
    assert_eq!(db, vec!["p", "q"]);
    assert_eq!(restarts, 1);
}

#[test]
fn oracle_reproduces_paper_p2() {
    // s must NOT survive (its only reason, +a, was invalidated); r must.
    let (db, _, _) = oracle_db("p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.", "p.");
    assert_eq!(db, vec!["p", "q", "r"]);
}

#[test]
fn oracle_reproduces_paper_p3() {
    let (db, _, _) = oracle_db("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p.");
    assert_eq!(db, vec!["a", "p"]);
}

#[test]
fn oracle_reproduces_section5_example() {
    let (db, restarts, blocked) = oracle_db(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        "p.",
    );
    assert_eq!(db, vec!["a", "b", "p"]);
    assert_eq!(restarts, 2);
    assert_eq!(blocked, vec!["(r2)", "(r5)"]);
}

#[test]
fn oracle_reproduces_section5_counterintuitive_inertia() {
    let (db, _, blocked) = oracle_db(
        "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
        "a.",
    );
    assert_eq!(db, vec!["a"]);
    assert_eq!(blocked, vec!["(r1)", "(r2)"]);
}

#[test]
fn paper_examples_pass_the_full_matrix() {
    for (rules, facts) in [
        ("p -> +q. p -> -a. q -> +a.", "p."),
        ("p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.", "p."),
        ("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p."),
        (
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
        ),
        (
            "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
            "a.",
        ),
    ] {
        let stats = check_case(&case(rules, facts), OracleVariant::Faithful)
            .unwrap_or_else(|d| panic!("{rules}: {d}"));
        assert!(stats.ground);
        assert!(stats.had_conflicts, "{rules}");
    }
}

#[test]
fn fuzz_smoke_finds_no_divergences() {
    let report = run_fuzz(0, 60, OracleVariant::Faithful, |_, _| {})
        .unwrap_or_else(|f| panic!("{}\nminimized:\n{}", f.divergence, f.minimized.to_text()));
    assert_eq!(report.cases, 60);
    // The generator's conflict bias must actually pay off: a fuzz run
    // whose cases never restart would test almost nothing.
    assert!(report.ground_cases > 0);
    assert!(report.conflict_cases > 10, "{report:?}");
    // Likewise the sequence bias: update chains must be replayed, and the
    // incremental database's warm path must actually fire under them.
    assert!(report.sequence_cases > 10, "{report:?}");
    assert!(report.sequence_txs > report.sequence_cases, "{report:?}");
    assert!(report.warm_txs > 0, "{report:?}");
}

#[test]
fn update_sequences_replay_incremental_vs_cold() {
    // A certified reachability program through a chain with a base-fact
    // deletion in the middle: the harness compares the incremental
    // ActiveDatabase against the cold one and the oracle at every step.
    let mut c = case(
        "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).",
        "e(a, b). e(b, c).",
    );
    c.txs = vec![
        "+e(c, d).".into(),
        "+e(d, a).".into(),
        "-e(a, b).".into(),
        "+e(a, b).".into(),
    ];
    let stats = check_case(&c, OracleVariant::Faithful).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(stats.sequence_txs, 4);
    // Per policy: tx1 seeds cold, tx2 is warm, tx3 deletes a base fact and
    // stays warm on the partial-stratum path, tx4 is warm again — 3 warm
    // (1 partial) × 3 policies.
    assert_eq!(stats.warm_txs, 9);
    assert_eq!(stats.partial_txs, 3);
}

#[test]
fn derived_fact_deletions_bail_to_cold() {
    // Deleting a *derived* fact collides with the program's own
    // derivations: the warm state must bail and the cold conflict run is
    // the answer — still byte-identical across the differential pair.
    let mut c = case("p(X) -> +s(X).", "p(a). p(b).");
    c.txs = vec![
        "+p(c).".into(),
        "+p(d).".into(),
        "-s(a).".into(),
        "+p(e).".into(),
    ];
    let stats = check_case(&c, OracleVariant::Faithful).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(stats.sequence_txs, 4);
    // Per policy: tx1 seeds cold, tx2 is warm, tx3 bails to a cold
    // conflict run whose outcome (a block or a surviving deletion) keeps
    // the warm state from reseeding, so tx4 is cold too — 1 warm × 3
    // policies, none of them on the partial path.
    assert_eq!(stats.warm_txs, 3, "{stats:?}");
    assert_eq!(stats.partial_txs, 0);
    assert!(stats.counters.conflicts_resolved > 0, "{stats:?}");
}

#[test]
fn conflicting_sequences_pass_the_chain_comparison() {
    // An uncertified, conflict-heavy program: every transaction runs cold,
    // but the chained 16-config × oracle comparison still applies.
    let mut c = case("p -> +q. p -> -a. q -> +a.", "p.");
    c.txs = vec!["+a.".into(), "-p. +b.".into(), "+p.".into()];
    let stats = check_case(&c, OracleVariant::Faithful).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(stats.sequence_txs, 3);
    assert_eq!(stats.warm_txs, 0);
    assert!(stats.had_conflicts);
}

#[test]
fn injected_restart_bug_is_caught_and_minimized() {
    // Acceptance criterion: a semantics bug (here: continuing from the
    // inconsistent interpretation instead of restarting from D) must be
    // caught within 1000 generated cases. It is in practice caught within
    // the first handful — any case with a conflict exposes it.
    let failure = run_fuzz(0, 1000, OracleVariant::SkipRestartFromD, |_, _| {})
        .expect_err("the broken oracle variant must diverge from the engine");
    assert!(
        failure.divergence.seed < 1000,
        "caught too late: {}",
        failure.divergence
    );

    // The minimizer must hand back a still-failing, no-larger case.
    let still_fails = |c: &Case| check_case(c, OracleVariant::SkipRestartFromD).is_err();
    assert!(still_fails(&failure.minimized), "minimized case passes");
    assert!(
        failure.minimized.rules.len() <= failure.case.rules.len()
            && failure.minimized.facts.len() <= failure.case.facts.len()
    );

    // And minimization is idempotent: the case is already 1-minimal.
    let again = minimize(&failure.minimized, still_fails);
    assert_eq!(again, failure.minimized);
}

#[test]
fn workload_generators_pass_the_matrix() {
    // The benchmark workloads feed the same harness: staggered chains are
    // the repo's canonical restart-heavy shape.
    let (program, facts) = park_workloads::staggered_conflicts(3);
    let stats = check_case(&case(&program, &facts), OracleVariant::Faithful)
        .unwrap_or_else(|d| panic!("{d}"));
    assert!(stats.ground);
    assert!(stats.had_conflicts);
}

#[test]
fn insert_only_cases_cross_check_against_stratified_datalog() {
    let stats = check_case(
        &case("p(X) -> +q(X). q(X), !r(X) -> +s(X).", "p(a). p(b). r(b)."),
        OracleVariant::Faithful,
    )
    .unwrap_or_else(|d| panic!("{d}"));
    assert!(stats.stratified_checked);
    assert!(!stats.had_conflicts);
}
