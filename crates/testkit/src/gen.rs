//! Seeded generation of small, conflict-rich PARK cases.
//!
//! A [`Case`] is a program plus a database, both as source text, so it can
//! be minimized line by line, checked into the regression corpus, and
//! pasted straight into `park run`. Generation is deterministic from a
//! `u64` seed and deliberately biased toward the shapes where nearby
//! active-rule semantics diverge: mutual-undo pairs, chains with a kill
//! rule, high fan-in atoms, negation guards, event cascades, and
//! self-undoing rules.
//!
//! The majority of cases are **ground** (propositional): every rule then
//! has at most one grounding, which is what lets the harness demand
//! byte-exact agreement with the oracle (see `crate::harness`). Most of
//! the rest are **range-restricted** programs over unary/binary predicates
//! and a small constant pool; a final slice sits deliberately inside the
//! insert-only, positive-body **incrementality-safe fragment** with
//! insert-only transaction chains, so the update-sequence regime
//! continuously proves the engine's warm incremental path unobservable.
//!
//! Most cases also carry an update *sequence* (`txs`) replayed as a chain
//! of committed transactions, biased across insert-only, mixed, and
//! deletion-heavy profiles — the latter break the incrementality
//! certificate's fast-path eligibility and force cold fallbacks.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One generated (or hand-written) differential test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The seed that produced it (0 for corpus/hand-written cases).
    pub seed: u64,
    /// Program rules, one per line.
    pub rules: Vec<String>,
    /// Database facts, one per line.
    pub facts: Vec<String>,
    /// An update sequence: each entry is one transaction's `.updates`
    /// source (e.g. `"+a. -b."`, never empty), replayed in order by the
    /// harness's update-sequence regime (incremental vs from-scratch vs
    /// oracle). Empty means the case is single-shot only.
    pub txs: Vec<String>,
}

impl Case {
    /// The program as parseable source.
    pub fn program_source(&self) -> String {
        self.rules.join("\n")
    }

    /// The database as parseable source.
    pub fn facts_source(&self) -> String {
        self.facts.join("\n")
    }

    /// Serialize in the corpus file format (see `tests/corpus/`). The
    /// `txs:` section is omitted for single-shot cases, so pre-existing
    /// corpus files round-trip unchanged.
    pub fn to_text(&self) -> String {
        let mut s = String::from("rules:\n");
        for r in &self.rules {
            s.push_str(r);
            s.push('\n');
        }
        s.push_str("facts:\n");
        for f in &self.facts {
            s.push_str(f);
            s.push('\n');
        }
        if !self.txs.is_empty() {
            s.push_str("txs:\n");
            for t in &self.txs {
                s.push_str(t);
                s.push('\n');
            }
        }
        s
    }

    /// Parse the corpus file format: a `rules:` section, a `facts:`
    /// section, and an optional `txs:` section (one transaction's update
    /// source per line), one item per line; `#` lines are comments.
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        let mut txs = Vec::new();
        let mut section: Option<&mut Vec<String>> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line {
                "rules:" => section = Some(&mut rules),
                "facts:" => section = Some(&mut facts),
                "txs:" => section = Some(&mut txs),
                item => match section {
                    Some(ref mut sec) => sec.push(item.to_string()),
                    None => return Err(format!("line before any section: `{item}`")),
                },
            }
        }
        Ok(Case {
            seed: 0,
            rules,
            facts,
            txs,
        })
    }
}

/// Which distribution [`generate_biased`] draws cases from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FuzzBias {
    /// The historical mix: ground conflict motifs, range-restricted
    /// variable programs, and a slice of insert-only certified cases.
    #[default]
    Default,
    /// Layered stratified-negation programs inside the widened
    /// incremental fragment, every one carrying a deletion-bearing
    /// transaction chain — the distribution that exercises the
    /// partial-stratum warm path and its bail-to-cold edges by default.
    Stratified,
}

impl FuzzBias {
    /// Parse a `--bias` command-line value.
    pub fn parse(s: &str) -> Option<FuzzBias> {
        match s {
            "default" => Some(FuzzBias::Default),
            "stratified" => Some(FuzzBias::Stratified),
            _ => None,
        }
    }
}

/// Generate the case for `seed`. Same seed, same case, forever — failing
/// seeds reproduce from the command line (`park fuzz --seed N --cases 1`).
pub fn generate(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let roll = rng.random_range(0..20u32);
    if roll < 3 {
        generate_certified(seed, &mut rng)
    } else if roll < 15 {
        generate_ground(seed, &mut rng)
    } else {
        generate_var(seed, &mut rng)
    }
}

/// [`generate`] under an explicit bias. The seed spaces are disjoint per
/// bias (the rng is re-derived), so `--bias stratified --seed N` and
/// `--seed N` reproduce independently.
pub fn generate_biased(seed: u64, bias: FuzzBias) -> Case {
    match bias {
        FuzzBias::Default => generate(seed),
        FuzzBias::Stratified => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5354_5241_5441); // "STRATA"
            generate_stratified(seed, &mut rng)
        }
    }
}

/// A layered stratified-negation case: unary predicates are assigned to
/// strata L0 (`p`, `q`, plus the binary `e`) < L1 (`s`, `t`) < L2 (`u`,
/// `v`); heads always insert, negated body literals only look *strictly
/// downward*, and positive recursion stays inside a layer — so every
/// generated program certifies under the widened (stratified) incremental
/// certificate. The transaction chain always carries deletions: mostly
/// base facts (the partial-stratum warm path), occasionally a derived
/// fact (the warm state must bail and replay cold, byte-identically).
fn generate_stratified(seed: u64, rng: &mut StdRng) -> Case {
    const LAYERS: [&[&str]; 3] = [&["p", "q"], &["s", "t"], &["u", "v"]];
    let consts = &["c0", "c1", "c2", "c3"][..rng.random_range(3..5usize)];
    let pick =
        |rng: &mut StdRng, layer: usize| LAYERS[layer][rng.random_range(0..LAYERS[layer].len())];

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(3..6usize) {
        match rng.random_range(0..4u32) {
            // Negation-guarded promotion from a strictly lower layer.
            0 => {
                let hl = rng.random_range(1..3usize);
                let (pl, nl) = (rng.random_range(0..hl), rng.random_range(0..hl));
                let h = pick(rng, hl);
                let pos = pick(rng, pl);
                let neg = pick(rng, nl);
                rules.push(format!("{pos}(X), !{neg}(X) -> +{h}(X)."));
            }
            // Positive in-layer recursion through the binary `e`.
            1 => {
                let hl = rng.random_range(1..3usize);
                let h = pick(rng, hl);
                rules.push(format!("{h}(X), e(X, Y) -> +{h}(Y)."));
            }
            // Positive join from at-or-below the head's layer.
            2 => {
                let hl = rng.random_range(1..3usize);
                let (al, bl) = (rng.random_range(0..hl + 1), rng.random_range(0..hl));
                let a = pick(rng, al);
                let b = pick(rng, bl);
                let h = pick(rng, hl);
                rules.push(format!("{a}(X), {b}(X) -> +{h}(X)."));
            }
            // Plain copy upward.
            _ => {
                let hl = rng.random_range(1..3usize);
                let sl = rng.random_range(0..hl);
                let src = pick(rng, sl);
                let h = pick(rng, hl);
                rules.push(format!("{src}(X) -> +{h}(X)."));
            }
        }
    }

    let mut facts = Vec::new();
    for p in LAYERS[0] {
        for c in consts {
            if rng.random_bool(0.4) {
                facts.push(format!("{p}({c})."));
            }
        }
    }
    for a in consts {
        for b in consts {
            if rng.random_bool(0.2) {
                facts.push(format!("e({a}, {b})."));
            }
        }
    }

    // Deletion-bearing chains are the point of this bias: every sequence
    // mixes inserts with deletions, and roughly one update in seven aims
    // at a *derived* predicate (deleting one forces the warm state to
    // bail and the differential pair to agree on the cold conflict path).
    let del = if rng.random_bool(0.5) { 0.35 } else { 0.6 };
    let txs = (0..rng.random_range(2..5usize))
        .map(|_| {
            (0..rng.random_range(1..4usize))
                .map(|_| {
                    let sign = if rng.random_bool(del) { "-" } else { "+" };
                    let c = consts[rng.random_range(0..consts.len())];
                    if rng.random_bool(0.2) {
                        let d = consts[rng.random_range(0..consts.len())];
                        format!("{sign}e({c}, {d}).")
                    } else if rng.random_bool(0.15) {
                        let dl = rng.random_range(1..3usize);
                        let p = pick(rng, dl);
                        format!("{sign}{p}({c}).")
                    } else {
                        let p = pick(rng, 0);
                        format!("{sign}{p}({c}).")
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    Case {
        seed,
        rules,
        facts,
        txs,
    }
}

const ATOMS: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// Pick a deletion probability for one generated update sequence. The
/// profiles are deliberately skewed: insert-only sequences keep the
/// engine's warm incremental path hot, while deletion-heavy ones break
/// the incrementality certificate's fast-path eligibility every few
/// transactions and exercise the cold fallback plus reseed.
fn deletion_bias(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..3u32) {
        0 => 0.0,
        1 => 0.35,
        _ => 0.75,
    }
}

/// A propositional case assembled from conflict-prone motifs.
fn generate_ground(seed: u64, rng: &mut StdRng) -> Case {
    let pool = &ATOMS[..rng.random_range(4..ATOMS.len() + 1)];
    let atom = |rng: &mut StdRng| pool[rng.random_range(0..pool.len())];
    let lit = |rng: &mut StdRng| {
        let a = atom(rng);
        match rng.random_range(0..10u32) {
            0..=5 => a.to_string(),
            6..=7 => format!("!{a}"),
            8 => format!("+{a}"),
            _ => format!("-{a}"),
        }
    };
    let body = |rng: &mut StdRng, min: usize| {
        let n = rng.random_range(min..3usize);
        (0..n).map(|_| lit(rng)).collect::<Vec<_>>().join(", ")
    };

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..6usize) {
        match rng.random_range(0..6u32) {
            // A mutual-undo pair on one atom.
            0 => {
                let (x, y, z) = (atom(rng), atom(rng), atom(rng));
                rules.push(format!("{x} -> +{y}."));
                rules.push(format!("{z} -> -{y}."));
            }
            // A derivation chain with a kill rule at the end.
            1 => {
                let len = rng.random_range(2..4usize);
                let links: Vec<&str> = (0..=len).map(|_| atom(rng)).collect();
                for w in links.windows(2) {
                    rules.push(format!("{} -> +{}.", w[0], w[1]));
                }
                rules.push(format!("{} -> -{}.", links[0], links[len]));
            }
            // High fan-in: several rules contesting one atom.
            2 => {
                let y = atom(rng);
                for _ in 0..rng.random_range(2..5usize) {
                    let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                    rules.push(format!("{} -> {sign}{y}.", body(rng, 1)));
                }
            }
            // A negation guard feeding an insertion.
            3 => {
                let (x, y, z) = (atom(rng), atom(rng), atom(rng));
                rules.push(format!("!{x} -> +{y}."));
                rules.push(format!("{z} -> +{x}."));
            }
            // A self-undoing rule.
            4 => {
                let x = atom(rng);
                rules.push(format!("{x} -> -{x}."));
            }
            // A plain rule, occasionally body-less (an unconditional
            // update, like the synthetic rules of P_U).
            _ => {
                let sign = if rng.random_bool(0.6) { "+" } else { "-" };
                let b = if rng.random_bool(0.85) {
                    format!("{} ", body(rng, 1))
                } else {
                    String::new()
                };
                rules.push(format!("{b}-> {sign}{}.", atom(rng)));
            }
        }
    }

    let facts = pool
        .iter()
        .filter(|_| rng.random_bool(0.45))
        .map(|a| format!("{a}."))
        .collect();

    let txs = if rng.random_bool(0.8) {
        let del = deletion_bias(rng);
        (0..rng.random_range(1..4usize))
            .map(|_| {
                (0..rng.random_range(1..4usize))
                    .map(|_| {
                        let sign = if rng.random_bool(del) { "-" } else { "+" };
                        format!("{sign}{}.", atom(rng))
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    } else {
        Vec::new()
    };
    Case {
        seed,
        rules,
        facts,
        txs,
    }
}

/// An insert-only, positive-body case inside the incrementality-safe
/// fragment (`park_engine::certify_incremental`), with an insert-only
/// transaction chain of length ≥ 2: the first transaction seeds the warm
/// state cold, so every later one must be answered warm — and proven
/// byte-identical to the cold run by the harness.
fn generate_certified(seed: u64, rng: &mut StdRng) -> Case {
    const PREDS: [&str; 4] = ["p", "q", "r", "s"];
    let consts = &["c0", "c1", "c2", "c3"][..rng.random_range(2..5usize)];
    let pred = |rng: &mut StdRng| PREDS[rng.random_range(0..PREDS.len())];

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..5usize) {
        match rng.random_range(0..3u32) {
            // Copy.
            0 => {
                let (p, q) = (pred(rng), pred(rng));
                rules.push(format!("{p}(X) -> +{q}(X)."));
            }
            // Transitive propagation through the binary predicate.
            1 => {
                let q = pred(rng);
                rules.push(format!("e(X, Y), {q}(X) -> +{q}(Y)."));
            }
            // Positive join.
            _ => {
                let (p, q, r) = (pred(rng), pred(rng), pred(rng));
                rules.push(format!("{p}(X), {q}(X) -> +{r}(X)."));
            }
        }
    }

    let mut facts = Vec::new();
    for p in PREDS {
        for c in consts {
            if rng.random_bool(0.3) {
                facts.push(format!("{p}({c})."));
            }
        }
    }
    for a in consts {
        for b in consts {
            if rng.random_bool(0.25) {
                facts.push(format!("e({a}, {b})."));
            }
        }
    }

    let txs = (0..rng.random_range(2..5usize))
        .map(|_| {
            (0..rng.random_range(1..3usize))
                .map(|_| {
                    let c = consts[rng.random_range(0..consts.len())];
                    if rng.random_bool(0.4) {
                        let d = consts[rng.random_range(0..consts.len())];
                        format!("+e({c}, {d}).")
                    } else {
                        format!("+{}({c}).", pred(rng))
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    Case {
        seed,
        rules,
        facts,
        txs,
    }
}

/// A range-restricted case over unary/binary predicates and a small
/// constant pool.
fn generate_var(seed: u64, rng: &mut StdRng) -> Case {
    const PREDS: [&str; 4] = ["p", "q", "r", "s"];
    let consts = &["c0", "c1", "c2", "c3"][..rng.random_range(2..5usize)];
    let pred = |rng: &mut StdRng| PREDS[rng.random_range(0..PREDS.len())];

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..5usize) {
        match rng.random_range(0..5u32) {
            // Copy with a mutual-undo partner.
            0 => {
                let (p, q, r) = (pred(rng), pred(rng), pred(rng));
                rules.push(format!("{p}(X) -> +{q}(X)."));
                rules.push(format!("{r}(X) -> -{q}(X)."));
            }
            // Negation-guarded deletion.
            1 => {
                let (p, q, r) = (pred(rng), pred(rng), pred(rng));
                rules.push(format!("{p}(X), !{q}(X) -> -{r}(X)."));
            }
            // Fan-in on one head predicate.
            2 => {
                let y = pred(rng);
                for _ in 0..rng.random_range(2..4usize) {
                    let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                    rules.push(format!("{}(X) -> {sign}{y}(X).", pred(rng)));
                }
            }
            // Edge propagation through the binary predicate.
            3 => {
                let q = pred(rng);
                rules.push(format!("e(X, Y), {q}(X) -> +{q}(Y)."));
            }
            // Event cascade.
            _ => {
                let (p, q) = (pred(rng), pred(rng));
                let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                rules.push(format!("+{p}(X) -> {sign}{q}(X)."));
            }
        }
    }

    let mut facts = Vec::new();
    for p in PREDS {
        for c in consts {
            if rng.random_bool(0.35) {
                facts.push(format!("{p}({c})."));
            }
        }
    }
    for a in consts {
        for b in consts {
            if rng.random_bool(0.2) {
                facts.push(format!("e({a}, {b})."));
            }
        }
    }

    let txs = if rng.random_bool(0.8) {
        let del = deletion_bias(rng);
        (0..rng.random_range(1..4usize))
            .map(|_| {
                (0..rng.random_range(1..4usize))
                    .map(|_| {
                        let sign = if rng.random_bool(del) { "-" } else { "+" };
                        let c = consts[rng.random_range(0..consts.len())];
                        if rng.random_bool(0.25) {
                            let d = consts[rng.random_range(0..consts.len())];
                            format!("{sign}e({c}, {d}).")
                        } else {
                            format!("{sign}{}({c}).", pred(rng))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    } else {
        Vec::new()
    };
    Case {
        seed,
        rules,
        facts,
        txs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn case_text_roundtrip() {
        let mut seen_txs = false;
        for seed in 0..20 {
            let case = generate(seed);
            let back = Case::parse(&case.to_text()).unwrap();
            assert_eq!(back.rules, case.rules);
            assert_eq!(back.facts, case.facts);
            assert_eq!(back.txs, case.txs);
            seen_txs |= !case.txs.is_empty();
        }
        assert!(seen_txs, "no early seed produced an update sequence");
    }

    #[test]
    fn corpus_format_tolerates_comments_and_blank_lines() {
        let parsed =
            Case::parse("# a comment\n\nrules:\np -> +q.\n\nfacts:\n# none\np.\n").unwrap();
        assert_eq!(parsed.rules, vec!["p -> +q."]);
        assert_eq!(parsed.facts, vec!["p."]);
    }

    #[test]
    fn parse_rejects_items_outside_sections() {
        assert!(Case::parse("p -> +q.\nrules:\n").is_err());
    }

    #[test]
    fn every_early_seed_parses_and_compiles() {
        for seed in 0..200 {
            let case = generate(seed);
            let program = park_syntax::parse_program(&case.program_source())
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            park_syntax::check_program(&program).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            park_storage::FactStore::from_source(
                park_storage::Vocabulary::new(),
                &case.facts_source(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            for tx in &case.txs {
                let parsed = park_syntax::parse_updates(tx)
                    .unwrap_or_else(|e| panic!("seed {seed} tx `{tx}`: {e:?}"));
                assert!(!parsed.is_empty(), "seed {seed}: empty transaction `{tx}`");
            }
        }
    }

    #[test]
    fn stratified_bias_certifies_with_deletion_chains() {
        let (mut negation, mut deletions, mut derived_targets) = (false, false, false);
        for seed in 0..200 {
            let case = generate_biased(seed, FuzzBias::Stratified);
            assert_eq!(case, generate_biased(seed, FuzzBias::Stratified));
            let program = park_syntax::parse_program(&case.program_source())
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            park_syntax::check_program(&program).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let compiled =
                park_engine::CompiledProgram::compile(park_storage::Vocabulary::new(), &program)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(
                park_engine::certify_incremental(&compiled),
                "seed {seed} left the widened incremental fragment:\n{}",
                case.program_source()
            );
            assert!(!case.txs.is_empty(), "seed {seed}: no update chain");
            for tx in &case.txs {
                park_syntax::parse_updates(tx)
                    .unwrap_or_else(|e| panic!("seed {seed} tx `{tx}`: {e:?}"));
                deletions |= tx.contains('-');
                for d in ["s(", "t(", "u(", "v("] {
                    derived_targets |= tx.contains(d);
                }
            }
            negation |= case.rules.iter().any(|r| r.contains('!'));
        }
        assert!(negation, "stratified bias never used negation");
        assert!(deletions, "stratified bias never generated a deletion");
        assert!(
            derived_targets,
            "stratified bias never touched a derived pred"
        );
    }

    #[test]
    fn sequences_cover_both_signs() {
        let (mut plus, mut minus) = (false, false);
        for seed in 0..50 {
            for tx in &generate(seed).txs {
                plus |= tx.contains('+');
                minus |= tx.contains('-');
            }
        }
        assert!(plus && minus, "sequence bias lost a sign: +{plus} -{minus}");
    }
}
