//! Seeded generation of small, conflict-rich PARK cases.
//!
//! A [`Case`] is a program plus a database, both as source text, so it can
//! be minimized line by line, checked into the regression corpus, and
//! pasted straight into `park run`. Generation is deterministic from a
//! `u64` seed and deliberately biased toward the shapes where nearby
//! active-rule semantics diverge: mutual-undo pairs, chains with a kill
//! rule, high fan-in atoms, negation guards, event cascades, and
//! self-undoing rules.
//!
//! Roughly three out of four cases are **ground** (propositional): every
//! rule then has at most one grounding, which is what lets the harness
//! demand byte-exact agreement with the oracle (see `crate::harness`).
//! The rest are **range-restricted** programs over unary/binary predicates
//! and a small constant pool.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One generated (or hand-written) differential test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The seed that produced it (0 for corpus/hand-written cases).
    pub seed: u64,
    /// Program rules, one per line.
    pub rules: Vec<String>,
    /// Database facts, one per line.
    pub facts: Vec<String>,
}

impl Case {
    /// The program as parseable source.
    pub fn program_source(&self) -> String {
        self.rules.join("\n")
    }

    /// The database as parseable source.
    pub fn facts_source(&self) -> String {
        self.facts.join("\n")
    }

    /// Serialize in the corpus file format (see `tests/corpus/`).
    pub fn to_text(&self) -> String {
        let mut s = String::from("rules:\n");
        for r in &self.rules {
            s.push_str(r);
            s.push('\n');
        }
        s.push_str("facts:\n");
        for f in &self.facts {
            s.push_str(f);
            s.push('\n');
        }
        s
    }

    /// Parse the corpus file format: a `rules:` section then a `facts:`
    /// section, one item per line; `#` lines are comments.
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        let mut section: Option<&mut Vec<String>> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line {
                "rules:" => section = Some(&mut rules),
                "facts:" => section = Some(&mut facts),
                item => match section {
                    Some(ref mut sec) => sec.push(item.to_string()),
                    None => return Err(format!("line before any section: `{item}`")),
                },
            }
        }
        Ok(Case {
            seed: 0,
            rules,
            facts,
        })
    }
}

/// Generate the case for `seed`. Same seed, same case, forever — failing
/// seeds reproduce from the command line (`park fuzz --seed N --cases 1`).
pub fn generate(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    if rng.random_bool(0.75) {
        generate_ground(seed, &mut rng)
    } else {
        generate_var(seed, &mut rng)
    }
}

const ATOMS: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// A propositional case assembled from conflict-prone motifs.
fn generate_ground(seed: u64, rng: &mut StdRng) -> Case {
    let pool = &ATOMS[..rng.random_range(4..ATOMS.len() + 1)];
    let atom = |rng: &mut StdRng| pool[rng.random_range(0..pool.len())];
    let lit = |rng: &mut StdRng| {
        let a = atom(rng);
        match rng.random_range(0..10u32) {
            0..=5 => a.to_string(),
            6..=7 => format!("!{a}"),
            8 => format!("+{a}"),
            _ => format!("-{a}"),
        }
    };
    let body = |rng: &mut StdRng, min: usize| {
        let n = rng.random_range(min..3usize);
        (0..n).map(|_| lit(rng)).collect::<Vec<_>>().join(", ")
    };

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..6usize) {
        match rng.random_range(0..6u32) {
            // A mutual-undo pair on one atom.
            0 => {
                let (x, y, z) = (atom(rng), atom(rng), atom(rng));
                rules.push(format!("{x} -> +{y}."));
                rules.push(format!("{z} -> -{y}."));
            }
            // A derivation chain with a kill rule at the end.
            1 => {
                let len = rng.random_range(2..4usize);
                let links: Vec<&str> = (0..=len).map(|_| atom(rng)).collect();
                for w in links.windows(2) {
                    rules.push(format!("{} -> +{}.", w[0], w[1]));
                }
                rules.push(format!("{} -> -{}.", links[0], links[len]));
            }
            // High fan-in: several rules contesting one atom.
            2 => {
                let y = atom(rng);
                for _ in 0..rng.random_range(2..5usize) {
                    let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                    rules.push(format!("{} -> {sign}{y}.", body(rng, 1)));
                }
            }
            // A negation guard feeding an insertion.
            3 => {
                let (x, y, z) = (atom(rng), atom(rng), atom(rng));
                rules.push(format!("!{x} -> +{y}."));
                rules.push(format!("{z} -> +{x}."));
            }
            // A self-undoing rule.
            4 => {
                let x = atom(rng);
                rules.push(format!("{x} -> -{x}."));
            }
            // A plain rule, occasionally body-less (an unconditional
            // update, like the synthetic rules of P_U).
            _ => {
                let sign = if rng.random_bool(0.6) { "+" } else { "-" };
                let b = if rng.random_bool(0.85) {
                    format!("{} ", body(rng, 1))
                } else {
                    String::new()
                };
                rules.push(format!("{b}-> {sign}{}.", atom(rng)));
            }
        }
    }

    let facts = pool
        .iter()
        .filter(|_| rng.random_bool(0.45))
        .map(|a| format!("{a}."))
        .collect();
    Case { seed, rules, facts }
}

/// A range-restricted case over unary/binary predicates and a small
/// constant pool.
fn generate_var(seed: u64, rng: &mut StdRng) -> Case {
    const PREDS: [&str; 4] = ["p", "q", "r", "s"];
    let consts = &["c0", "c1", "c2", "c3"][..rng.random_range(2..5usize)];
    let pred = |rng: &mut StdRng| PREDS[rng.random_range(0..PREDS.len())];

    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..5usize) {
        match rng.random_range(0..5u32) {
            // Copy with a mutual-undo partner.
            0 => {
                let (p, q, r) = (pred(rng), pred(rng), pred(rng));
                rules.push(format!("{p}(X) -> +{q}(X)."));
                rules.push(format!("{r}(X) -> -{q}(X)."));
            }
            // Negation-guarded deletion.
            1 => {
                let (p, q, r) = (pred(rng), pred(rng), pred(rng));
                rules.push(format!("{p}(X), !{q}(X) -> -{r}(X)."));
            }
            // Fan-in on one head predicate.
            2 => {
                let y = pred(rng);
                for _ in 0..rng.random_range(2..4usize) {
                    let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                    rules.push(format!("{}(X) -> {sign}{y}(X).", pred(rng)));
                }
            }
            // Edge propagation through the binary predicate.
            3 => {
                let q = pred(rng);
                rules.push(format!("e(X, Y), {q}(X) -> +{q}(Y)."));
            }
            // Event cascade.
            _ => {
                let (p, q) = (pred(rng), pred(rng));
                let sign = if rng.random_bool(0.5) { "+" } else { "-" };
                rules.push(format!("+{p}(X) -> {sign}{q}(X)."));
            }
        }
    }

    let mut facts = Vec::new();
    for p in PREDS {
        for c in consts {
            if rng.random_bool(0.35) {
                facts.push(format!("{p}({c})."));
            }
        }
    }
    for a in consts {
        for b in consts {
            if rng.random_bool(0.2) {
                facts.push(format!("e({a}, {b})."));
            }
        }
    }
    Case { seed, rules, facts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn case_text_roundtrip() {
        let case = generate(3);
        let back = Case::parse(&case.to_text()).unwrap();
        assert_eq!(back.rules, case.rules);
        assert_eq!(back.facts, case.facts);
    }

    #[test]
    fn corpus_format_tolerates_comments_and_blank_lines() {
        let parsed =
            Case::parse("# a comment\n\nrules:\np -> +q.\n\nfacts:\n# none\np.\n").unwrap();
        assert_eq!(parsed.rules, vec!["p -> +q."]);
        assert_eq!(parsed.facts, vec!["p."]);
    }

    #[test]
    fn parse_rejects_items_outside_sections() {
        assert!(Case::parse("p -> +q.\nrules:\n").is_err());
    }

    #[test]
    fn every_early_seed_parses_and_compiles() {
        for seed in 0..200 {
            let case = generate(seed);
            let program = park_syntax::parse_program(&case.program_source())
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            park_syntax::check_program(&program).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            park_storage::FactStore::from_source(
                park_storage::Vocabulary::new(),
                &case.facts_source(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }
}
