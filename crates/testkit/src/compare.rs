//! Observable-identity comparison helpers.
//!
//! Both the differential harness and the hand-written identity tests (and
//! the CLI's end-to-end tests) compare runs on the same surface: the
//! mode-independent *fingerprint* of a [`ParkOutcome`] (final database,
//! blocked set, key counters, and the full trace event stream — see
//! [`ParkOutcome::fingerprint`]) plus the `SELECT` call transcript. The
//! helpers here render that comparison and its failure messages in one
//! place so every call site reports divergences the same way.

use park_engine::{ParkOutcome, Trace, TraceEvent};
use park_policies::{ConflictResolver, Decision, Recording};

/// A [`Recording`] wrapper around a boxed policy, for capturing the
/// `SELECT` transcript of an engine run.
pub type RecordingPolicy = Recording<Box<dyn ConflictResolver>>;

/// Wrap the named policy (from `park_policies::by_name`) in a recorder.
pub fn recording_policy(name: &str) -> RecordingPolicy {
    Recording::new(park_policies::by_name(name).unwrap_or_else(|| panic!("unknown policy {name}")))
}

/// Render a recorded `SELECT` transcript as `"<conflict> -> <resolution>"`
/// lines — the same format `oracle::evaluate` records.
pub fn transcript(decisions: &[Decision]) -> Vec<String> {
    decisions
        .iter()
        .map(|d| format!("{} -> {}", d.conflict, d.resolution.as_str()))
        .collect()
}

/// First line-level difference between two multi-line strings, rendered
/// for a failure message; `None` when identical.
pub fn diff_lines(label_a: &str, a: &str, label_b: &str, b: &str) -> Option<String> {
    if a == b {
        return None;
    }
    let (mut la, mut lb) = (a.lines(), b.lines());
    let mut n = 1;
    loop {
        match (la.next(), lb.next()) {
            (Some(x), Some(y)) if x == y => n += 1,
            (x, y) => {
                let side = |s: Option<&str>| s.unwrap_or("<end of output>").to_string();
                return Some(format!(
                    "line {n} differs\n  {label_a}: {}\n  {label_b}: {}",
                    side(x),
                    side(y)
                ));
            }
        }
    }
}

/// Compare two byte streams (e.g. captured process stdout), reporting the
/// first differing line; `None` when identical.
pub fn diff_bytes(label_a: &str, a: &[u8], b_label: &str, b: &[u8]) -> Option<String> {
    if a == b {
        return None;
    }
    diff_lines(
        label_a,
        &String::from_utf8_lossy(a),
        b_label,
        &String::from_utf8_lossy(b),
    )
    .or_else(|| Some(format!("{label_a} and {b_label} differ in raw bytes")))
}

/// Assert byte-identical output, with a line-level failure message.
///
/// Shared by the CLI e2e tests (warm vs cold process output) and the
/// engine-level identity tests.
pub fn assert_identical_bytes(context: &str, label_a: &str, a: &[u8], label_b: &str, b: &[u8]) {
    if let Some(d) = diff_bytes(label_a, a, label_b, b) {
        panic!("{context}: {d}");
    }
}

/// Compare two runs on the full observable surface — fingerprint plus
/// `SELECT` transcript; `None` when identical.
pub fn diff_runs(
    label_a: &str,
    a: &ParkOutcome,
    a_calls: &[String],
    label_b: &str,
    b: &ParkOutcome,
    b_calls: &[String],
) -> Option<String> {
    diff_lines(label_a, &a.fingerprint(), label_b, &b.fingerprint()).or_else(|| {
        diff_lines(label_a, &a_calls.join("\n"), label_b, &b_calls.join("\n"))
            .map(|d| format!("SELECT transcript: {d}"))
    })
}

/// Assert two runs are observably identical (panicking helper for tests).
pub fn assert_observably_identical(
    context: &str,
    label_a: &str,
    a: &ParkOutcome,
    a_calls: &[String],
    label_b: &str,
    b: &ParkOutcome,
    b_calls: &[String],
) {
    if let Some(d) = diff_runs(label_a, a, a_calls, label_b, b, b_calls) {
        panic!("{context}: {d}");
    }
}

/// Rewrite a trace into a canonical form that is invariant under the
/// intra-step enumeration order: `added` lists and `Inconsistent` atom
/// lists are sorted, and each maximal batch of consecutive
/// `ConflictResolved` events is sorted by conflict rendering.
///
/// For variable (non-ground) programs the engine's greedy join planner
/// visits groundings in a different order than the oracle's brute-force
/// enumeration, so only this canonical form — not the raw event stream —
/// is comparable across the two (and only under `ResolutionScope::All`,
/// where the *set* of conflicts resolved per restart is order-free).
pub fn canonicalize_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = Vec::with_capacity(events.len());
    let mut batch: Vec<TraceEvent> = Vec::new();
    let flush = |batch: &mut Vec<TraceEvent>, out: &mut Vec<TraceEvent>| {
        batch.sort_by_key(|e| match e {
            TraceEvent::ConflictResolved { conflict, .. } => conflict.clone(),
            _ => unreachable!("batch holds only ConflictResolved events"),
        });
        out.append(batch);
    };
    for e in events {
        match e {
            TraceEvent::ConflictResolved { .. } => batch.push(e.clone()),
            other => {
                flush(&mut batch, &mut out);
                let mut o = other.clone();
                match &mut o {
                    TraceEvent::Step { added, .. } => added.sort(),
                    TraceEvent::Inconsistent {
                        atoms, deferred, ..
                    } => {
                        atoms.sort();
                        deferred.sort();
                    }
                    _ => {}
                }
                out.push(o);
            }
        }
    }
    flush(&mut batch, &mut out);
    out
}

/// A copy of `out` with its trace canonicalized (see
/// [`canonicalize_events`]), for order-insensitive fingerprint comparison.
pub fn canonical(out: &ParkOutcome) -> ParkOutcome {
    let mut t = Trace::new();
    for e in canonicalize_events(out.trace.events()) {
        t.push(e);
    }
    let mut c = out.clone();
    c.trace = t;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::Resolution;

    #[test]
    fn diff_lines_reports_first_difference() {
        assert!(diff_lines("a", "x\ny", "b", "x\ny").is_none());
        let d = diff_lines("a", "x\ny", "b", "x\nz").unwrap();
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("a: y"), "{d}");
        assert!(d.contains("b: z"), "{d}");
        let d = diff_lines("a", "x", "b", "x\nmore").unwrap();
        assert!(d.contains("<end of output>"), "{d}");
    }

    #[test]
    fn canonicalize_sorts_within_steps_and_conflict_batches() {
        let events = vec![
            TraceEvent::Step {
                run: 1,
                step: 1,
                interp: "{p, +a, +b}".into(),
                added: vec!["+b".into(), "+a".into()],
            },
            TraceEvent::Inconsistent {
                run: 1,
                step: 2,
                atoms: vec!["q".into(), "a".into()],
                deferred: vec![],
            },
            TraceEvent::ConflictResolved {
                conflict: "(q, {(r2)}, {(r3)})".into(),
                policy: "inertia".into(),
                resolution: Resolution::Delete,
                blocked: vec![],
            },
            TraceEvent::ConflictResolved {
                conflict: "(a, {(r1)}, {(r4)})".into(),
                policy: "inertia".into(),
                resolution: Resolution::Insert,
                blocked: vec![],
            },
            TraceEvent::RunStarted { run: 2 },
        ];
        let canon = canonicalize_events(&events);
        match &canon[0] {
            TraceEvent::Step { added, .. } => assert_eq!(added, &["+a", "+b"]),
            other => panic!("unexpected {other:?}"),
        }
        match &canon[1] {
            TraceEvent::Inconsistent { atoms, .. } => assert_eq!(atoms, &["a", "q"]),
            other => panic!("unexpected {other:?}"),
        }
        match (&canon[2], &canon[3]) {
            (
                TraceEvent::ConflictResolved { conflict: c1, .. },
                TraceEvent::ConflictResolved { conflict: c2, .. },
            ) => assert!(c1 < c2, "{c1} vs {c2}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(canon[4], TraceEvent::RunStarted { run: 2 });
    }
}
