//! Greedy case minimization.
//!
//! Fuzzer counterexamples are reported (and checked into the corpus) in
//! shrunk form: repeatedly delete single rules, facts, transactions, and
//! update statements while the failure predicate keeps holding, to a
//! fixpoint. Deleting whole source lines can never un-parse a case —
//! every rule and fact is one self-contained statement — so the predicate
//! only ever sees well-formed candidates.
//!
//! Rule lines are parsed **once**, before the greedy loop starts, and each
//! candidate program is assembled from the pre-parsed rule ASTs. The loop
//! visits O(lines²) candidates on a large case, so re-parsing the full
//! program text per candidate (the old behaviour) made shrinking the
//! dominant cost of a fuzz failure; now each candidate costs one
//! `Vec<Rule>` clone.

use crate::gen::Case;
use park_syntax::{parse_program, Program, Rule};

/// Shrink `case` to a minimal failing case: the result still satisfies
/// `fails`, and removing any single remaining rule, fact, transaction, or
/// update statement makes it pass.
///
/// `fails` is typically `|c| check_case(c, variant).is_err()`; it must
/// hold for `case` itself (checked by a debug assertion).
pub fn minimize(case: &Case, mut fails: impl FnMut(&Case) -> bool) -> Case {
    minimize_parsed(case, |c, _| fails(c))
}

/// Like [`minimize`], but hands the predicate each candidate's pre-parsed
/// program alongside its text, so a parse-aware predicate (such as the
/// harness) never re-parses rule sources inside the shrink loop.
///
/// The program is `None` only when some remaining rule line does not parse
/// on its own — impossible for generated cases, possible for hand-written
/// ones with mid-statement line breaks — in which case the predicate must
/// fall back to parsing the text itself.
pub fn minimize_parsed(
    case: &Case,
    mut fails: impl FnMut(&Case, Option<&Program>) -> bool,
) -> Case {
    // Parse each rule line exactly once. A line may hold several
    // statements ("p -> +q. q -> -p."), so each entry is a rule *group*.
    let mut parsed: Vec<Option<Vec<Rule>>> = case
        .rules
        .iter()
        .map(|line| parse_program(line).ok().map(|p| p.rules))
        .collect();
    let assemble = |groups: &[Option<Vec<Rule>>]| -> Option<Program> {
        let mut rules = Vec::new();
        for g in groups {
            rules.extend_from_slice(g.as_deref()?);
        }
        Some(Program { rules })
    };

    debug_assert!(
        fails(case, assemble(&parsed).as_ref()),
        "minimize called on a passing case"
    );
    let mut cur = case.clone();
    loop {
        let mut shrunk = false;
        for i in 0..cur.rules.len() {
            let mut cand = cur.clone();
            cand.rules.remove(i);
            let mut cand_parsed = parsed.clone();
            cand_parsed.remove(i);
            if fails(&cand, assemble(&cand_parsed).as_ref()) {
                cur = cand;
                parsed = cand_parsed;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        let program = assemble(&parsed);
        for i in 0..cur.facts.len() {
            let mut cand = cur.clone();
            cand.facts.remove(i);
            if fails(&cand, program.as_ref()) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        // Drop whole transactions, then single statements within one.
        for i in 0..cur.txs.len() {
            let mut cand = cur.clone();
            cand.txs.remove(i);
            if fails(&cand, program.as_ref()) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        'txs: for i in 0..cur.txs.len() {
            let stmts: Vec<&str> = cur.txs[i]
                .split('.')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if stmts.len() < 2 {
                continue;
            }
            for j in 0..stmts.len() {
                let mut rest: Vec<&str> = stmts.clone();
                rest.remove(j);
                let mut cand = cur.clone();
                cand.txs[i] = format!("{}.", rest.join(". "));
                if fails(&cand, program.as_ref()) {
                    cur = cand;
                    shrunk = true;
                    break 'txs;
                }
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(rules: &[&str], facts: &[&str]) -> Case {
        Case {
            seed: 0,
            rules: rules.iter().map(|s| s.to_string()).collect(),
            facts: facts.iter().map(|s| s.to_string()).collect(),
            txs: Vec::new(),
        }
    }

    #[test]
    fn minimize_drops_everything_irrelevant() {
        // Failure: "contains the rule `p -> +q.` and the fact `p.`".
        let big = case(
            &["x -> +y.", "p -> +q.", "a -> -b."],
            &["x.", "p.", "b.", "a."],
        );
        let min = minimize(&big, |c| {
            c.rules.iter().any(|r| r == "p -> +q.") && c.facts.iter().any(|f| f == "p.")
        });
        assert_eq!(min.rules, vec!["p -> +q."]);
        assert_eq!(min.facts, vec!["p."]);
    }

    #[test]
    fn minimize_is_one_minimal() {
        // Failure: at least two facts remain.
        let big = case(&[], &["a.", "b.", "c.", "d."]);
        let min = minimize(&big, |c| c.facts.len() >= 2);
        assert_eq!(min.facts.len(), 2);
    }

    #[test]
    fn minimize_shrinks_transactions_and_statements() {
        let mut big = case(&["p -> +q."], &["p."]);
        big.txs = vec!["+a. -b. +c.".into(), "+d.".into(), "-e. +f.".into()];
        // Failure: some transaction still mentions `-b`.
        let min = minimize(&big, |c| c.txs.iter().any(|t| t.contains("-b")));
        assert!(min.rules.is_empty() && min.facts.is_empty());
        assert_eq!(min.txs, vec!["-b."]);
    }

    #[test]
    fn minimize_parsed_hands_out_the_assembled_program() {
        let big = case(
            &["x -> +y.", "p -> +q. q -> -p.", "a -> -b."],
            &["x.", "p."],
        );
        let min = minimize_parsed(&big, |c, program| {
            // Every candidate of this case parses line by line, so the
            // pre-parsed program must always be present and must match the
            // candidate's text rule for rule (spans differ: the pre-parsed
            // rules were parsed one line at a time).
            let p = program.expect("all rule lines are self-contained");
            let reparsed = parse_program(&c.program_source()).unwrap();
            assert_eq!(p.rules.len(), reparsed.rules.len());
            for (a, b) in p.rules.iter().zip(&reparsed.rules) {
                assert_eq!(a.head, b.head);
                assert_eq!(a.name, b.name);
            }
            c.rules.iter().any(|r| r.contains("-p"))
        });
        assert_eq!(min.rules, vec!["p -> +q. q -> -p."]);
        assert!(min.facts.is_empty());
    }

    #[test]
    fn minimize_parsed_falls_back_to_none_on_unparseable_lines() {
        let big = case(&["p ->", "+q."], &["p."]);
        let mut saw_none = false;
        let min = minimize_parsed(&big, |c, program| {
            saw_none |= program.is_none();
            c.rules.len() >= 2
        });
        assert!(saw_none, "split statement lines must yield no program");
        assert_eq!(min.rules.len(), 2);
    }

    #[test]
    fn minimize_parsed_never_reparses_rule_text_per_candidate() {
        // A large generated-style case: parsing happens once per line up
        // front, so the shrink loop's cost is candidate assembly only.
        // Guarded behaviourally: the predicate checks that the program it
        // receives always has exactly as many rules as the candidate's
        // parsed text — i.e. the assembly tracks line removal correctly
        // through hundreds of shrink steps.
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        for seed in 0..40 {
            let c = crate::gen::generate(seed);
            rules.extend(c.rules);
            facts.extend(c.facts);
        }
        facts.sort();
        facts.dedup();
        let big = case(&[], &[]);
        let big = Case {
            rules,
            facts,
            ..big
        };
        let min = minimize_parsed(&big, |c, program| {
            let p = program.expect("generated rule lines always parse");
            let reparsed = parse_program(&c.program_source()).unwrap();
            assert_eq!(p.rules.len(), reparsed.rules.len());
            c.rules.len() >= 3 && c.facts.len() >= 2
        });
        assert_eq!(min.rules.len(), 3);
        assert_eq!(min.facts.len(), 2);
    }
}
