//! Greedy case minimization.
//!
//! Fuzzer counterexamples are reported (and checked into the corpus) in
//! shrunk form: repeatedly delete single rules and facts while the failure
//! predicate keeps holding, to a fixpoint. Deleting whole source lines can
//! never un-parse a case — every rule and fact is one self-contained
//! statement — so the predicate only ever sees well-formed candidates.

use crate::gen::Case;

/// Shrink `case` to a 1-minimal failing case: the result still satisfies
/// `fails`, and removing any single remaining rule or fact makes it pass.
///
/// `fails` is typically `|c| check_case(c, variant).is_err()`; it must
/// hold for `case` itself (checked by a debug assertion).
pub fn minimize(case: &Case, mut fails: impl FnMut(&Case) -> bool) -> Case {
    debug_assert!(fails(case), "minimize called on a passing case");
    let mut cur = case.clone();
    loop {
        let mut shrunk = false;
        for i in 0..cur.rules.len() {
            let mut cand = cur.clone();
            cand.rules.remove(i);
            if fails(&cand) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        for i in 0..cur.facts.len() {
            let mut cand = cur.clone();
            cand.facts.remove(i);
            if fails(&cand) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(rules: &[&str], facts: &[&str]) -> Case {
        Case {
            seed: 0,
            rules: rules.iter().map(|s| s.to_string()).collect(),
            facts: facts.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn minimize_drops_everything_irrelevant() {
        // Failure: "contains the rule `p -> +q.` and the fact `p.`".
        let big = case(
            &["x -> +y.", "p -> +q.", "a -> -b."],
            &["x.", "p.", "b.", "a."],
        );
        let min = minimize(&big, |c| {
            c.rules.iter().any(|r| r == "p -> +q.") && c.facts.iter().any(|f| f == "p.")
        });
        assert_eq!(min.rules, vec!["p -> +q."]);
        assert_eq!(min.facts, vec!["p."]);
    }

    #[test]
    fn minimize_is_one_minimal() {
        // Failure: at least two facts remain.
        let big = case(&[], &["a.", "b.", "c.", "d."]);
        let min = minimize(&big, |c| c.facts.len() >= 2);
        assert_eq!(min.facts.len(), 2);
    }
}
