//! # park-testkit
//!
//! Differential testing for the PARK engine, in three parts:
//!
//! * [`oracle`] — a deliberately slow, paper-literal reference
//!   implementation of `PARK(D, P)`: brute-force Γ over the active domain,
//!   always-cold Δ restarts, `incorp` spelled out. Audit it against
//!   PAPER.md, not against the engine.
//! * [`gen`] — a seeded generator of small, conflict-rich programs and
//!   databases ([`Case`]), with a line-oriented text format for the
//!   regression corpus (`tests/corpus/`).
//! * [`harness`] — the conformance check: every case runs through the
//!   engine's full mode matrix (evaluation × parallelism × restart
//!   strategy × scope, under several `SELECT` policies) and is compared
//!   against the oracle — byte-exact where the fragment admits it — plus a
//!   stratified-datalog cross-check on the insert-only fragment. Failures
//!   are shrunk by [`mod@minimize`].
//!
//! [`compare`] holds the shared fingerprint/transcript diff helpers, also
//! used by the engine identity suites and the CLI's end-to-end tests.
//! The entry point for humans is `park fuzz --seed N --cases K`; see
//! `docs/testing.md` for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod gen;
pub mod harness;
pub mod minimize;
pub mod oracle;

pub use gen::{generate, generate_biased, Case, FuzzBias};
pub use harness::{
    check_case, check_case_parsed, check_case_with, run_fuzz, run_fuzz_biased, CaseStats,
    Divergence, EngineConfig, FuzzFailure, FuzzReport, POLICIES,
};
pub use minimize::{minimize, minimize_parsed};
pub use oracle::{evaluate as oracle_evaluate, OracleRun, OracleVariant};
pub use park_engine::refine::AnalysisVariant;
