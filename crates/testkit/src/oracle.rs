//! A paper-literal reference implementation of PARK(D, P).
//!
//! This module is the *oracle* of the differential harness: a deliberately
//! slow transcription of Sections 4.1–4.2 of the paper, written to be
//! audited against PAPER.md line by line rather than to perform. It shares
//! only the engine's *frontend and data containers* — the compiled rule
//! patterns (for rule ids, variable names, and literal shapes), the
//! three-zone [`IInterpretation`], and the `Grounding`/`Conflict`/
//! `BlockedSet` record types with their paper-notation rendering — and
//! reimplements every *semantic* component independently:
//!
//! * **Γ_{P,B}** by brute force: all substitutions over the active domain
//!   are enumerated per rule (no join plans, no indexes, no semi-naive
//!   deltas) and each body literal is checked against the validity
//!   definition verbatim;
//! * **conflict detection** one step into the future, merged with the
//!   run's own provenance bookkeeping;
//! * **Δ restarts** always cold: on a conflict the blocked set grows and
//!   the computation restarts from `I = D` with nothing carried over
//!   (no replay, no warm state);
//! * **incorp** spelled out as `(I° ∪ I⁺) − I⁻`.
//!
//! The oracle emits the same observable record the engine does — a
//! [`ParkOutcome`] with a full trace — so the harness can compare the two
//! byte for byte (see `crate::harness` for which fragments admit exact
//! comparison and which need canonical ordering).

use park_engine::{
    BlockedSet, CompiledLiteral, CompiledProgram, CompiledRule, Conflict, ConflictResolver,
    EngineError, Grounding, IInterpretation, LitKind, ParkOutcome, ResolutionScope, RunStats,
    SelectContext, TermSlot, Trace, TraceEvent,
};
use park_storage::{Code, FactStore, PredId, Value, Vocabulary};
use park_syntax::{CompOp, Sign};
use std::collections::{HashMap, HashSet};

/// A fired atom's key and its per-sign deriving groundings — the oracle's
/// conflict-provenance map, keyed by encoded row.
type ProvenanceMap = HashMap<(PredId, Box<[Code]>), [HashSet<Grounding>; 2]>;

/// Safety valves: generated cases are tiny, so hitting either limit is
/// itself a divergence worth reporting.
const MAX_STEPS: u64 = 100_000;
const MAX_RESTARTS: u64 = 100_000;

/// Which semantics to run.
///
/// `Faithful` is the paper. The broken variants exist so the harness can
/// prove it *would* catch a semantics bug (acceptance criterion: an
/// injected bug is found within 1000 generated cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVariant {
    /// The paper's Δ operator: on conflict, restart from `D`.
    Faithful,
    /// Injected bug: after resolving a conflict, keep computing from the
    /// current `I` instead of restarting from `D` — consequences of the
    /// invalidated marks are never discarded (the paper's P2 example is
    /// exactly the program this breaks).
    SkipRestartFromD,
}

/// The oracle's result: the same outcome record the engine produces, plus
/// the `SELECT` transcript (one `"<conflict> -> <resolution>"` line per
/// call, in call order).
#[derive(Debug)]
pub struct OracleRun {
    /// Database, blocked set, stats, and full trace — comparable via
    /// [`ParkOutcome::fingerprint`].
    pub outcome: ParkOutcome,
    /// The `SELECT` calls, rendered, in the order the policy was consulted.
    pub decisions: Vec<String>,
}

/// Evaluate `PARK(D, P)` by the book.
pub fn evaluate(
    program: &CompiledProgram,
    db: &FactStore,
    scope: ResolutionScope,
    resolver: &mut dyn ConflictResolver,
    variant: OracleVariant,
) -> Result<OracleRun, EngineError> {
    let vocab = program.vocab();
    let domain = active_domain(program, db);
    let policy = resolver.name().to_string();
    let mut blocked = BlockedSet::new();
    let mut trace = Trace::new();
    let mut decisions: Vec<String> = Vec::new();
    let mut gamma_steps: u64 = 0;
    let mut restarts: u64 = 0;
    let mut conflicts_resolved: u64 = 0;

    let final_interp = 'outer: loop {
        // (Re)start the inflationary computation from I = ⟨∅, D⟩.
        let run = restarts + 1;
        trace.push(TraceEvent::RunStarted { run });
        let mut interp = IInterpretation::from_database(db.clone());
        let mut provenance: ProvenanceMap = HashMap::new();
        let mut step_in_run: u64 = 0;

        loop {
            if gamma_steps >= MAX_STEPS {
                return Err(EngineError::StepLimit { limit: MAX_STEPS });
            }
            // Γ_{P,B}(I): every non-blocked grounding (r, θ) whose body is
            // valid in I, by exhaustive substitution enumeration.
            let mut fired: Vec<(Grounding, Sign, PredId, Box<[Code]>)> = Vec::new();
            for rule in program.rules() {
                for subst in substitutions(rule.num_vars as usize, &domain) {
                    let g = Grounding {
                        rule: rule.id,
                        subst: subst.clone().into_boxed_slice(),
                    };
                    if blocked.contains(&g) || !body_valid(vocab, rule, &subst, &interp) {
                        continue;
                    }
                    let tuple = rule.head.instantiate(&subst);
                    fired.push((g, rule.head_sign, rule.head.pred, tuple));
                }
            }
            let conflicts = conflicts_of(vocab, &fired, &provenance);

            if conflicts.is_empty() {
                // Consistent: take the inflationary step.
                gamma_steps += 1;
                step_in_run += 1;
                let mut added: Vec<String> = Vec::new();
                for (_, sign, pred, tuple) in &fired {
                    if interp.insert_marked(*sign, *pred, tuple) {
                        added.push(format!("{sign}{}", vocab.display_row(*pred, tuple)));
                    }
                }
                for (g, sign, pred, tuple) in &fired {
                    let sides = provenance.entry((*pred, tuple.clone())).or_default();
                    let side = match sign {
                        Sign::Insert => &mut sides[0],
                        Sign::Delete => &mut sides[1],
                    };
                    side.insert(g.clone());
                }
                if added.is_empty() {
                    // Γ_{P,B}(I) = I: the fixpoint ω is reached.
                    trace.push(TraceEvent::Fixpoint {
                        run,
                        interp: interp.display(),
                        blocked: blocked.display(program),
                    });
                    break 'outer interp;
                }
                trace.push(TraceEvent::Step {
                    run,
                    step: step_in_run,
                    interp: interp.display(),
                    added,
                });
            } else {
                // Inconsistent: SELECT decides, losers are blocked, and the
                // computation restarts from D (unless the injected bug says
                // otherwise).
                if restarts >= MAX_RESTARTS {
                    return Err(EngineError::RestartLimit {
                        limit: MAX_RESTARTS,
                    });
                }
                let (selected, deferred) = match scope {
                    ResolutionScope::All => conflicts.split_at(conflicts.len()),
                    ResolutionScope::One => conflicts.split_at(1),
                };
                let atom = |c: &Conflict| vocab.display_fact(c.pred, &c.tuple);
                trace.push(TraceEvent::Inconsistent {
                    run,
                    step: step_in_run + 1,
                    atoms: selected.iter().map(atom).collect(),
                    deferred: deferred.iter().map(atom).collect(),
                });
                let ctx = SelectContext {
                    database: db,
                    program,
                    interp: &interp,
                };
                for c in selected {
                    let resolution =
                        resolver
                            .select(&ctx, c)
                            .map_err(|message| EngineError::Resolver {
                                policy: policy.clone(),
                                message,
                            })?;
                    conflicts_resolved += 1;
                    decisions.push(format!("{} -> {}", c.display(program), resolution.as_str()));
                    let mut newly: Vec<String> = Vec::new();
                    for g in c.losing_side(resolution) {
                        if blocked.insert(g.clone()) {
                            newly.push(g.display(program));
                        }
                    }
                    if newly.is_empty() {
                        return Err(EngineError::NoProgress { atom: atom(c) });
                    }
                    trace.push(TraceEvent::ConflictResolved {
                        conflict: c.display(program),
                        policy: policy.clone(),
                        resolution,
                        blocked: newly,
                    });
                }
                restarts += 1;
                match variant {
                    OracleVariant::Faithful => continue 'outer,
                    // BUG under test: fall through to the next Γ step with
                    // the inconsistent run's I and provenance intact.
                    OracleVariant::SkipRestartFromD => continue,
                }
            }
        }
    };

    // incorp(I) = (I° ∪ {a | +a ∈ I⁺}) − {a | -a ∈ I⁻}.
    let mut database = final_interp.base().clone();
    for (p, t) in final_interp.plus().iter_rows() {
        database.insert_row(p, t);
    }
    for (p, t) in final_interp.minus().iter_rows() {
        database.remove_row(p, t);
    }

    let stats = RunStats {
        gamma_steps,
        restarts,
        conflicts_resolved,
        blocked_instances: blocked.len() as u64,
        ..RunStats::default()
    };
    Ok(OracleRun {
        outcome: ParkOutcome {
            database,
            interpretation: final_interp,
            blocked,
            program: program.clone(),
            stats,
            trace,
            program_marks: None,
        },
        decisions,
    })
}

/// The active domain: every constant in `D` or in the program's rules,
/// as interned codes *sorted by decoded value* — function-free rules can
/// only ever bind variables to these values, and the Value-order
/// enumeration keeps the oracle's observable orderings independent of
/// intern-code allocation order.
fn active_domain(program: &CompiledProgram, db: &FactStore) -> Vec<Code> {
    let vocab = program.vocab();
    let mut out: Vec<Value> = Vec::new();
    for (_, tuple) in db.iter() {
        out.extend(tuple.values().iter().copied());
    }
    let mut atom_consts = |terms: &[TermSlot]| {
        out.extend(terms.iter().filter_map(|t| match t {
            TermSlot::Const(c) => Some(vocab.decode(*c)),
            TermSlot::Var(_) => None,
        }));
    };
    for rule in program.rules() {
        atom_consts(&rule.head.terms);
        for lit in rule.body.iter() {
            match lit {
                CompiledLiteral::Atom { atom, .. } => atom_consts(&atom.terms),
                CompiledLiteral::Guard { lhs, rhs, .. } => atom_consts(&[*lhs, *rhs]),
            }
        }
    }
    out.sort();
    out.dedup();
    out.into_iter().map(|v| vocab.encode(v)).collect()
}

/// All total substitutions for `num_vars` variables over `domain`, in
/// lexicographic slot order.
fn substitutions(num_vars: usize, domain: &[Code]) -> Vec<Vec<Code>> {
    let mut out = vec![Vec::new()];
    for _ in 0..num_vars {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for prefix in &out {
            for v in domain {
                let mut s = prefix.clone();
                s.push(*v);
                next.push(s);
            }
        }
        out = next;
    }
    out
}

/// Validity of every body literal of `rθ` in `I` (Sections 4.2–4.3),
/// checked in source order.
fn body_valid(
    vocab: &Vocabulary,
    rule: &CompiledRule,
    subst: &[Code],
    interp: &IInterpretation,
) -> bool {
    rule.body.iter().all(|lit| match lit {
        CompiledLiteral::Atom { kind, atom } => {
            let t = atom.instantiate(subst);
            let in_base = interp.base().contains_row(atom.pred, &t);
            let in_plus = interp.plus().contains_row(atom.pred, &t);
            let in_minus = interp.minus().contains_row(atom.pred, &t);
            match kind {
                // a is valid iff a ∈ I° or +a ∈ I⁺.
                LitKind::Pos => in_base || in_plus,
                // ¬a is valid iff -a ∈ I⁻, or a ∉ I° and +a ∉ I⁺.
                LitKind::Neg => in_minus || !(in_base || in_plus),
                // ±a (event) is valid iff the mark is in its zone.
                LitKind::Event(Sign::Insert) => in_plus,
                LitKind::Event(Sign::Delete) => in_minus,
            }
        }
        CompiledLiteral::Guard { op, lhs, rhs } => {
            let code = |t: &TermSlot| match *t {
                TermSlot::Const(c) => c,
                TermSlot::Var(s) => subst[s as usize],
            };
            let (l, r) = (code(lhs), code(rhs));
            match op {
                // Codes are injective: equality needs no decode.
                CompOp::Eq => l == r,
                CompOp::Ne => l != r,
                // Ordered comparisons are integer-only; symbols compare
                // false (the language extension's documented semantics).
                // Decoded, because spilled big-int codes are not
                // order-preserving.
                _ => match (vocab.decode(l), vocab.decode(r)) {
                    (Value::Int(a), Value::Int(b)) => op.eval_ordering(a.cmp(&b)),
                    _ => false,
                },
            }
        }
    })
}

/// The conflicts of `fired` "one step into the future", merged with the
/// run's provenance: atoms with both an inserting and a deleting grounding,
/// in order of first appearance, each side deduplicated and sorted by
/// `(rule, substitution)` over *decoded* substitutions (code order is not
/// value order for spilled integers).
fn conflicts_of(
    vocab: &Vocabulary,
    fired: &[(Grounding, Sign, PredId, Box<[Code]>)],
    provenance: &ProvenanceMap,
) -> Vec<Conflict> {
    let mut order: Vec<(PredId, Box<[Code]>)> = Vec::new();
    let mut current: ProvenanceMap = HashMap::new();
    for (g, sign, pred, tuple) in fired {
        let key = (*pred, tuple.clone());
        let sides = current.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Default::default()
        });
        let side = match sign {
            Sign::Insert => &mut sides[0],
            Sign::Delete => &mut sides[1],
        };
        side.insert(g.clone());
    }
    let empty: [HashSet<Grounding>; 2] = Default::default();
    let mut out = Vec::new();
    for key in order {
        let cur = &current[&key];
        let hist = provenance.get(&key).unwrap_or(&empty);
        let merge = |i: usize| -> Vec<Grounding> {
            let mut v: Vec<Grounding> = cur[i].union(&hist[i]).cloned().collect();
            v.sort_by_cached_key(|g| {
                let vals: Vec<Value> = g.subst.iter().map(|&c| vocab.decode(c)).collect();
                (g.rule, vals)
            });
            v
        };
        let (ins, del) = (merge(0), merge(1));
        if !ins.is_empty() && !del.is_empty() {
            out.push(Conflict {
                pred: key.0,
                tuple: vocab.decode_row(&key.1),
                ins,
                del,
            });
        }
    }
    out
}
