//! The cross-mode conformance harness.
//!
//! [`check_case`] runs one [`Case`] through the real engine under every
//! configuration of the mode matrix — evaluation mode × parallelism ×
//! restart strategy × resolution scope, under several `SELECT` policies —
//! and checks each run against the paper-literal oracle
//! (`crate::oracle`). [`run_fuzz`] drives that check over a stream of
//! generated cases and minimizes the first failure.
//!
//! ## Which fragments admit which comparison
//!
//! * **Ground programs under naive evaluation** (the bulk of generation):
//!   every rule has at most one grounding and naive Γ re-enumerates rules
//!   in id order every step — exactly the order the oracle uses. These
//!   configurations must match the oracle **byte for byte**: final
//!   database, blocked set, semantic counters, full trace event stream,
//!   and `SELECT` call sequence.
//! * **`ResolutionScope::All`, everything else**: semi-naive deltas omit
//!   already-fired groundings, and the join planner visits variable
//!   groundings in its own order, so the *first-appearance* order of
//!   conflicts (and of `added` marks) legitimately differs from the
//!   oracle's — but the *sets* per Γ step and per restart are order-free,
//!   and All-scope resolution with stateless policies does not depend on
//!   visit order. These runs must match the oracle's **canonicalized**
//!   trace (sorted `added` lists and conflict batches — see
//!   `crate::compare::canonical`) and sorted transcript.
//! * **`ResolutionScope::One`, everything else**: *which* conflict is
//!   "first" genuinely depends on enumeration order, and resolving a
//!   different conflict first steers the whole computation, so the oracle
//!   is only a pivot for the ground naive runs. Instead every such
//!   configuration must match the sequential warm run of its own
//!   evaluation mode byte for byte — parallelism and restart strategy must
//!   still be unobservable.
//!
//! Insert-only cases whose negated predicates are purely extensional are
//! additionally cross-checked against the independent
//! `park_baselines::stratified_datalog` model.

use crate::compare;
use crate::gen::Case;
use crate::oracle::{self, OracleVariant};
use park::db::ActiveDatabase;
use park_baselines::stratified_datalog;
use park_engine::refine::AnalysisVariant;
use park_engine::{
    CompiledLiteral, CompiledProgram, Engine, EngineOptions, EvaluationMode, JsonMetrics, LitKind,
    ParkOutcome, ResolutionScope, StatCounters,
};
use park_storage::{FactStore, PredId, UpdateSet, Vocabulary};
use park_syntax::Sign;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// The `SELECT` policies every case is checked under. Stateless and
/// order-independent by construction — a precondition of the canonical
/// (order-free) comparison regime for variable programs.
pub const POLICIES: [&str; 3] = ["inertia", "prefer-insert", "prefer-delete"];

/// One cell of the engine's mode matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Grounding enumeration strategy.
    pub evaluation: EvaluationMode,
    /// Intra-step parallelism (`None` = sequential).
    pub parallelism: Option<usize>,
    /// Warm (replaying) or cold restarts.
    pub warm_restarts: bool,
    /// Conflicts resolved per restart.
    pub scope: ResolutionScope,
}

impl EngineConfig {
    /// The full matrix: naive/semi-naive/compiled × sequential/4 threads ×
    /// warm/cold × all/one — 24 configurations.
    pub fn matrix() -> Vec<EngineConfig> {
        let mut out = Vec::with_capacity(24);
        for evaluation in [
            EvaluationMode::Naive,
            EvaluationMode::SemiNaive,
            EvaluationMode::Compiled,
        ] {
            for parallelism in [None, Some(4)] {
                for warm_restarts in [true, false] {
                    for scope in [ResolutionScope::All, ResolutionScope::One] {
                        out.push(EngineConfig {
                            evaluation,
                            parallelism,
                            warm_restarts,
                            scope,
                        });
                    }
                }
            }
        }
        out
    }

    /// A short label for failure reports, e.g. `seminaive/4-threads/warm/one`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            match self.evaluation {
                EvaluationMode::Naive => "naive",
                EvaluationMode::SemiNaive => "seminaive",
                EvaluationMode::Compiled => "compiled",
            },
            match self.parallelism {
                None => "seq".to_string(),
                Some(n) => format!("{n}-threads"),
            },
            if self.warm_restarts { "warm" } else { "cold" },
            match self.scope {
                ResolutionScope::All => "all",
                ResolutionScope::One => "one",
            },
        )
    }

    /// The engine options for this cell (tracing always on — the trace is
    /// part of the comparison surface).
    pub fn options(&self) -> EngineOptions {
        EngineOptions::traced()
            .with_scope(self.scope)
            .with_evaluation(self.evaluation)
            .with_parallelism(self.parallelism)
            .with_warm_restarts(self.warm_restarts)
    }

    /// The pivot this cell is compared against for variable `One`-scope
    /// cases: the sequential warm run of the same evaluation mode.
    fn pivot(&self) -> EngineConfig {
        EngineConfig {
            parallelism: None,
            warm_restarts: true,
            ..*self
        }
    }
}

/// A conformance failure: one engine configuration disagreed with its
/// reference (oracle, pivot, or baseline) on one case.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed of the offending case (0 for corpus cases).
    pub seed: u64,
    /// The `SELECT` policy in force.
    pub policy: String,
    /// The engine configuration label (or `frontend` / `stratified-baseline`).
    pub config: String,
    /// What differed, down to the first differing line.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}, policy {}, config {}: {}",
            self.seed, self.policy, self.config, self.detail
        )
    }
}

/// What a passing case exercised (aggregated into [`FuzzReport`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// The program was propositional (byte-exact comparison regime).
    pub ground: bool,
    /// At least one conflict was detected and resolved.
    pub had_conflicts: bool,
    /// The case was also cross-checked against the stratified baseline.
    pub stratified_checked: bool,
    /// Transactions replayed by the update-sequence regime (0 for
    /// single-shot cases), counted once per transaction, not per policy.
    pub sequence_txs: u64,
    /// Sequence transactions the incremental [`ActiveDatabase`] answered
    /// from its warm state rather than the cold from-`D` path.
    pub warm_txs: u64,
    /// The warm subset that carried deletions and reused the affected
    /// strata (`partial_stratum_txs` in the database counters).
    pub partial_txs: u64,
    /// Deterministic engine counters summed over every matrix run of the
    /// case (all configurations × policies) — the raw material for
    /// aggregate metrics documents (`park fuzz --metrics`).
    pub counters: StatCounters,
}

/// One engine or oracle run, reduced to its comparable observables.
enum RunOutcome {
    /// Outcome plus rendered `SELECT` transcript.
    Done(Box<ParkOutcome>, Vec<String>),
    /// The run failed; errors must agree across modes too.
    Failed(String),
}

impl RunOutcome {
    fn brief(&self) -> String {
        match self {
            RunOutcome::Done(..) => "completed".to_string(),
            RunOutcome::Failed(e) => format!("failed ({e})"),
        }
    }
}

/// Compare two runs; with `order_free`, traces are canonicalized and
/// transcripts sorted first (the variable-program `All`-scope regime).
fn diff_outcomes(
    label_a: &str,
    a: &RunOutcome,
    label_b: &str,
    b: &RunOutcome,
    order_free: bool,
) -> Option<String> {
    match (a, b) {
        (RunOutcome::Failed(x), RunOutcome::Failed(y)) => {
            (x != y).then(|| format!("{label_a} failed with `{x}`, {label_b} with `{y}`"))
        }
        (RunOutcome::Done(oa, ca), RunOutcome::Done(ob, cb)) => {
            if order_free {
                let sort = |calls: &[String]| {
                    let mut s = calls.to_vec();
                    s.sort();
                    s
                };
                compare::diff_runs(
                    label_a,
                    &compare::canonical(oa),
                    &sort(ca),
                    label_b,
                    &compare::canonical(ob),
                    &sort(cb),
                )
            } else {
                compare::diff_runs(label_a, oa, ca, label_b, ob, cb)
            }
        }
        _ => Some(format!(
            "{label_a} {}, but {label_b} {}",
            a.brief(),
            b.brief()
        )),
    }
}

/// Negation is extensional and the program insert-only: the fragment on
/// which PARK provably agrees with stratified datalog's perfect model.
fn insert_only_extensional(program: &CompiledProgram) -> bool {
    let heads: HashSet<PredId> = program.rules().iter().map(|r| r.head.pred).collect();
    program.rules().iter().all(|r| {
        r.head_sign == Sign::Insert
            && r.body.iter().all(|lit| match lit {
                CompiledLiteral::Atom {
                    kind: LitKind::Event(_),
                    ..
                } => false,
                CompiledLiteral::Atom {
                    kind: LitKind::Neg,
                    atom,
                } => !heads.contains(&atom.pred),
                _ => true,
            })
    })
}

/// Run `case` through the full mode matrix under every policy and check
/// every run against its reference. `variant` selects the oracle semantics
/// — [`OracleVariant::Faithful`] for real testing, a broken variant to
/// prove the harness detects semantic bugs.
pub fn check_case(case: &Case, variant: OracleVariant) -> Result<CaseStats, Divergence> {
    check_case_with(case, variant, AnalysisVariant::Faithful)
}

/// [`check_case`] with an explicit static-analysis variant for the lint
/// verdict cross-checks. `AnalysisVariant::Faithful` is the real analyzer;
/// the broken variants exist so tests can prove an unsound analysis change
/// is caught as a divergence rather than silently certifying programs.
pub fn check_case_with(
    case: &Case,
    variant: OracleVariant,
    lint_variant: AnalysisVariant,
) -> Result<CaseStats, Divergence> {
    check_case_parsed(case, None, variant, lint_variant)
}

/// [`check_case_with`] taking an optionally pre-parsed program, so callers
/// that already hold the AST — the minimizer assembles each shrink
/// candidate from rule ASTs parsed once up front — skip re-parsing the
/// rule text. `pre_parsed`, when given, must be the parse of
/// `case.program_source()`.
pub fn check_case_parsed(
    case: &Case,
    pre_parsed: Option<&park_syntax::Program>,
    variant: OracleVariant,
    lint_variant: AnalysisVariant,
) -> Result<CaseStats, Divergence> {
    let seed = case.seed;
    let front = |detail: String| Divergence {
        seed,
        policy: "-".into(),
        config: "frontend".into(),
        detail,
    };

    let vocab = Vocabulary::new();
    let parsed_here;
    let program = match pre_parsed {
        Some(p) => p,
        None => {
            parsed_here = park_syntax::parse_program(&case.program_source())
                .map_err(|e| front(format!("program does not parse: {e:?}")))?;
            &parsed_here
        }
    };
    park_syntax::check_program(program)
        .map_err(|e| front(format!("program does not check: {e:?}")))?;
    let db = FactStore::from_source(Arc::clone(&vocab), &case.facts_source())
        .map_err(|e| front(format!("facts do not load: {e:?}")))?;
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), program)
        .map_err(|e| front(format!("program does not compile: {e}")))?;
    let ground = compiled.rules().iter().all(|r| r.num_vars == 0);

    // The static analyzer's verdicts on this program. Every claim is
    // cross-checked against observed runtime behaviour below: a certified
    // conflict-free program must never restart, a rule flagged unreachable
    // or never-firing must never fire, and deleting an always-blocked rule
    // must not change the result under its constant policy.
    let lint = park_lint::verdicts(&compiled, lint_variant);

    let matrix = EngineConfig::matrix();
    let mut engines = Vec::with_capacity(matrix.len());
    for cfg in matrix {
        let engine = Engine::with_options(Arc::clone(&vocab), program, cfg.options())
            .map_err(|e| front(format!("engine construction failed ({}): {e}", cfg.label())))?;
        engines.push((cfg, engine));
    }

    // Every engine run is metered through a `JsonMetrics` sink and its
    // event-derived totals cross-checked against the engine's own
    // `RunStats` counters — the two bookkeeping paths must agree exactly
    // in every cell of the matrix.
    // Per-rule firing counts summed over every matrix run — the witness
    // stream for the unreachable / never-fires lint cross-check.
    let fired_by_rule: RefCell<BTreeMap<u32, u64>> = RefCell::new(BTreeMap::new());
    let run_engine = |engine: &Engine, policy: &str| -> RunOutcome {
        let mut rec = compare::recording_policy(policy);
        let mut sink = JsonMetrics::new("testkit");
        match engine.park_with_metrics(&db, &mut rec, &mut sink) {
            Ok(out) => {
                let totals = sink.totals();
                let counters = out.stats.counters();
                if totals != counters {
                    return RunOutcome::Failed(format!(
                        "metrics totals diverged from RunStats: metrics {totals:?} vs stats {counters:?}"
                    ));
                }
                let mut acc = fired_by_rule.borrow_mut();
                for (&rule, &n) in sink.fired_by_rule() {
                    *acc.entry(rule).or_insert(0) += n;
                }
                RunOutcome::Done(Box::new(out), compare::transcript(rec.decisions()))
            }
            Err(e) => RunOutcome::Failed(e.to_string()),
        }
    };
    let run_oracle = |scope: ResolutionScope, policy: &str| -> RunOutcome {
        let mut p = park_policies::by_name(policy).expect("harness policies are known");
        match oracle::evaluate(&compiled, &db, scope, &mut p, variant) {
            Ok(r) => RunOutcome::Done(Box::new(r.outcome), r.decisions),
            Err(e) => RunOutcome::Failed(e.to_string()),
        }
    };

    let mut stats = CaseStats {
        ground,
        ..CaseStats::default()
    };
    for (pi, policy) in POLICIES.iter().enumerate() {
        let oracle_all = run_oracle(ResolutionScope::All, policy);
        let oracle_one = run_oracle(ResolutionScope::One, policy);

        if pi == 0 {
            if let RunOutcome::Done(o, _) = &oracle_all {
                stats.had_conflicts = o.stats.restarts > 0;
            }
            if insert_only_extensional(&compiled) {
                stats.stratified_checked = true;
                let diverged = |detail: String| Divergence {
                    seed,
                    policy: policy.to_string(),
                    config: "stratified-baseline".into(),
                    detail,
                };
                match (&oracle_all, stratified_datalog(&compiled, &db, 1 << 20)) {
                    (RunOutcome::Done(o, _), Ok(s)) => {
                        if let Some(d) = compare::diff_lines(
                            "park",
                            &o.database.sorted_display().join("\n"),
                            "stratified",
                            &s.database.sorted_display().join("\n"),
                        ) {
                            return Err(diverged(d));
                        }
                    }
                    (RunOutcome::Done(..), Err(e)) => {
                        return Err(diverged(format!(
                            "stratified baseline rejected an insert-only extensional case: {e}"
                        )));
                    }
                    (RunOutcome::Failed(e), _) => {
                        return Err(diverged(format!(
                            "oracle failed on a conflict-free insert-only case: {e}"
                        )));
                    }
                }
            }
        }

        let results: Vec<RunOutcome> = engines.iter().map(|(_, e)| run_engine(e, policy)).collect();
        for ((cfg, _), res) in engines.iter().zip(&results) {
            if let RunOutcome::Done(o, _) = res {
                stats.counters.absorb(&o.stats.counters());
                // A conflict-free certificate is a hard promise: no run of
                // a certified program may detect (let alone resolve) a
                // conflict under any configuration or policy.
                let c = o.stats.counters();
                if lint.certified_conflict_free && (c.restarts > 0 || c.conflicts_resolved > 0) {
                    return Err(Divergence {
                        seed,
                        policy: policy.to_string(),
                        config: "lint-certificate".into(),
                        detail: format!(
                            "program was certified conflict-free, but {} observed \
                             {} restart(s) and {} resolved conflict(s)",
                            cfg.label(),
                            c.restarts,
                            c.conflicts_resolved
                        ),
                    });
                }
            }
        }
        for ((cfg, _), res) in engines.iter().zip(&results) {
            let oracle_ref = match cfg.scope {
                ResolutionScope::All => &oracle_all,
                ResolutionScope::One => &oracle_one,
            };
            let exact_vs_oracle = ground && cfg.evaluation == EvaluationMode::Naive;
            let diff = if exact_vs_oracle {
                diff_outcomes("engine", res, "oracle", oracle_ref, false)
            } else if cfg.scope == ResolutionScope::All {
                diff_outcomes("engine", res, "oracle", oracle_ref, true)
            } else {
                let pivot = cfg.pivot();
                if *cfg == pivot {
                    continue;
                }
                let pivot_res = engines
                    .iter()
                    .position(|(c, _)| *c == pivot)
                    .map(|i| &results[i])
                    .expect("the sequential warm pivot is in the matrix");
                diff_outcomes("engine", res, "pivot", pivot_res, false)
            };
            if let Some(detail) = diff {
                return Err(Divergence {
                    seed,
                    policy: policy.to_string(),
                    config: cfg.label(),
                    detail,
                });
            }
        }
    }

    // A rule flagged unreachable (its event is unproducible) or never-firing
    // (its body is unsatisfiable) must not have fired in any matrix run.
    let fired = fired_by_rule.into_inner();
    for (&rule, what) in lint
        .unreachable
        .iter()
        .map(|r| (r, "unreachable"))
        .chain(lint.never_fires.iter().map(|r| (r, "never-firing")))
    {
        let n = fired.get(&rule.0).copied().unwrap_or(0);
        if n > 0 {
            return Err(Divergence {
                seed,
                policy: "-".into(),
                config: "lint-unreachable".into(),
                detail: format!(
                    "rule `{}` was flagged {what} by the analyzer but fired {n} \
                     time(s) across the matrix",
                    compiled.rule(rule).display_name()
                ),
            });
        }
    }

    // An always-blocked verdict claims the rule cannot affect the result
    // under its constant policy: deleting it must leave the final database
    // unchanged. (The blocked set legitimately differs — the loser's
    // groundings are only *in* it while the rule exists.)
    for &(rule, policy) in &lint.always_blocked {
        let policy_name = policy.policy_name();
        let run_db = |p: &park_syntax::Program| -> Result<String, String> {
            let engine = Engine::with_options(Arc::clone(&vocab), p, EngineOptions::default())
                .map_err(|e| e.to_string())?;
            let mut select = park_policies::by_name(policy_name).expect("constant policy exists");
            engine
                .park(&db, select.as_mut())
                .map(|o| o.database.sorted_display().join("\n"))
                .map_err(|e| e.to_string())
        };
        let mut reduced = program.clone();
        reduced.rules.remove(rule.0 as usize);
        let blocked_diverged = |detail: String| Divergence {
            seed,
            policy: policy_name.to_string(),
            config: "lint-always-blocked".into(),
            detail: format!(
                "rule `{}` was flagged always-blocked under `{policy_name}`, but {detail}",
                compiled.rule(rule).display_name()
            ),
        };
        match (run_db(program), run_db(&reduced)) {
            (Ok(with), Ok(without)) => {
                if let Some(d) = compare::diff_lines("with-rule", &with, "without-rule", &without) {
                    return Err(blocked_diverged(format!(
                        "deleting it changed the result: {d}"
                    )));
                }
            }
            (Err(a), Err(b)) if a == b => {}
            (with, without) => {
                return Err(blocked_diverged(format!(
                    "the runs with and without it disagreed on failure: \
                     with `{with:?}`, without `{without:?}`"
                )));
            }
        }
    }

    if !case.txs.is_empty() {
        check_sequence(
            case, &vocab, program, &compiled, &engines, &db, ground, variant, &mut stats,
        )?;
    }

    Ok(stats)
}

/// The update-sequence regime: replay `case.txs` as a chain of committed
/// transactions and check, at every step, that (a) every matrix
/// configuration chained over its own committed states still satisfies the
/// single-shot comparison regime against the equally-chained oracle, and
/// (b) a transactional [`ActiveDatabase`] pair — incremental mode on vs
/// off — produces byte-identical [`park::db::TransactionReport`]s, equal
/// committed states, and a final database matching the oracle chain.
///
/// This is what makes cross-transaction incrementality a tested semantics
/// rather than a cache: the warm path may only ever be an optimization of
/// `PARK(D, P, U)` applied transaction by transaction.
#[allow(clippy::too_many_arguments)]
fn check_sequence(
    case: &Case,
    vocab: &Arc<Vocabulary>,
    program: &park_syntax::Program,
    compiled: &CompiledProgram,
    engines: &[(EngineConfig, Engine)],
    db: &FactStore,
    ground: bool,
    variant: OracleVariant,
    stats: &mut CaseStats,
) -> Result<(), Divergence> {
    let seed = case.seed;
    // Parse (and intern) every transaction once, up front.
    let mut txs = Vec::with_capacity(case.txs.len());
    for t in &case.txs {
        let u = UpdateSet::from_source(vocab, t).map_err(|e| Divergence {
            seed,
            policy: "-".into(),
            config: "frontend-txs".into(),
            detail: format!("transaction `{t}` does not parse: {e}"),
        })?;
        txs.push(u);
    }

    for policy in POLICIES {
        let fail = |config: String, detail: String| Divergence {
            seed,
            policy: policy.to_string(),
            config,
            detail,
        };
        // One chain state per configuration, two for the oracle scopes,
        // and the ActiveDatabase pair (which, like the oracle, evaluates
        // under the paper-default Naive/All options).
        let mut chains: Vec<FactStore> = engines.iter().map(|_| db.clone()).collect();
        let mut oracle_dbs = [db.clone(), db.clone()];
        let open = |inc: bool| {
            ActiveDatabase::open(program, db.clone())
                .map(|d| d.with_incremental(inc))
                .map_err(|e| fail("active-db".into(), format!("open failed: {e}")))
        };
        let (mut warm_db, mut cold_db) = (open(true)?, open(false)?);

        for (ti, u) in txs.iter().enumerate() {
            if policy == POLICIES[0] {
                stats.sequence_txs += 1;
            }
            let pu = compiled.with_updates(u);
            let run_oracle = |scope: ResolutionScope, chain_db: &FactStore| -> RunOutcome {
                let mut p = park_policies::by_name(policy).expect("harness policies are known");
                match oracle::evaluate(&pu, chain_db, scope, &mut p, variant) {
                    Ok(r) => RunOutcome::Done(Box::new(r.outcome), r.decisions),
                    Err(e) => RunOutcome::Failed(e.to_string()),
                }
            };
            let oracle_all = run_oracle(ResolutionScope::All, &oracle_dbs[0]);
            let oracle_one = run_oracle(ResolutionScope::One, &oracle_dbs[1]);

            let results: Vec<RunOutcome> = engines
                .iter()
                .zip(&chains)
                .map(|((_, engine), chain_db)| {
                    let mut rec = compare::recording_policy(policy);
                    let mut sink = JsonMetrics::new("testkit");
                    match engine.run_with_metrics(chain_db, u, &mut rec, &mut sink) {
                        Ok(out) => {
                            let totals = sink.totals();
                            let counters = out.stats.counters();
                            if totals != counters {
                                return RunOutcome::Failed(format!(
                                    "metrics totals diverged from RunStats: \
                                     metrics {totals:?} vs stats {counters:?}"
                                ));
                            }
                            RunOutcome::Done(Box::new(out), compare::transcript(rec.decisions()))
                        }
                        Err(e) => RunOutcome::Failed(e.to_string()),
                    }
                })
                .collect();

            for ((cfg, _), res) in engines.iter().zip(&results) {
                if let RunOutcome::Done(o, _) = res {
                    stats.counters.absorb(&o.stats.counters());
                }
                let oracle_ref = match cfg.scope {
                    ResolutionScope::All => &oracle_all,
                    ResolutionScope::One => &oracle_one,
                };
                let exact_vs_oracle = ground && cfg.evaluation == EvaluationMode::Naive;
                let diff = if exact_vs_oracle {
                    diff_outcomes("engine", res, "oracle", oracle_ref, false)
                } else if cfg.scope == ResolutionScope::All {
                    diff_outcomes("engine", res, "oracle", oracle_ref, true)
                } else {
                    let pivot = cfg.pivot();
                    if *cfg == pivot {
                        continue;
                    }
                    let pivot_res = engines
                        .iter()
                        .position(|(c, _)| *c == pivot)
                        .map(|i| &results[i])
                        .expect("the sequential warm pivot is in the matrix");
                    diff_outcomes("engine", res, "pivot", pivot_res, false)
                };
                if let Some(detail) = diff {
                    return Err(fail(cfg.label(), format!("tx {ti}: {detail}")));
                }
            }

            // The transactional pair: the incremental database must be an
            // *unobservable* optimization of the cold one.
            let mut pw = park_policies::by_name(policy).expect("harness policies are known");
            let mut pc = park_policies::by_name(policy).expect("harness policies are known");
            let db_fail = |detail: String| fail("active-db".into(), format!("tx {ti}: {detail}"));
            match (
                warm_db.transact(u, pw.as_mut()),
                cold_db.transact(u, pc.as_mut()),
            ) {
                (Ok(rw), Ok(rc)) => {
                    let obs = |r: &park::db::TransactionReport| {
                        (
                            r.number,
                            r.added.clone(),
                            r.removed.clone(),
                            r.blocked.clone(),
                            r.stats.gamma_steps,
                            r.stats.restarts,
                            r.stats.conflicts_resolved,
                            r.stats.blocked_instances,
                        )
                    };
                    if obs(&rw) != obs(&rc) {
                        return Err(db_fail(format!(
                            "incremental and cold reports differ:\n  incremental {:?}\n  cold {:?}",
                            obs(&rw),
                            obs(&rc)
                        )));
                    }
                    if !warm_db.state().same_facts(cold_db.state()) {
                        return Err(db_fail(format!(
                            "committed states differ:\n  incremental {:?}\n  cold {:?}",
                            warm_db.state().sorted_display(),
                            cold_db.state().sorted_display()
                        )));
                    }
                    if let RunOutcome::Done(o, _) = &oracle_all {
                        if let Some(d) = compare::diff_lines(
                            "active-db",
                            &cold_db.state().sorted_display().join("\n"),
                            "oracle",
                            &o.database.sorted_display().join("\n"),
                        ) {
                            return Err(db_fail(d));
                        }
                    }
                }
                (Err(a), Err(b)) if a.to_string() == b.to_string() => {}
                (a, b) => {
                    return Err(db_fail(format!(
                        "incremental and cold transactions disagreed on failure: \
                         incremental {:?} vs cold {:?}",
                        a.map(|r| r.number),
                        b.map(|r| r.number)
                    )));
                }
            }

            // Advance the chains; if the oracle could not complete this
            // transaction (errors already checked to agree), stop here.
            match (&oracle_all, &oracle_one) {
                (RunOutcome::Done(oa, _), RunOutcome::Done(oo, _)) => {
                    oracle_dbs[0] = oa.database.clone();
                    oracle_dbs[1] = oo.database.clone();
                    for (chain_db, res) in chains.iter_mut().zip(&results) {
                        if let RunOutcome::Done(o, _) = res {
                            *chain_db = o.database.clone();
                        }
                    }
                }
                _ => break,
            }
        }
        let inc = warm_db.incremental_stats();
        stats.warm_txs += inc.incremental_txs + inc.partial_stratum_txs;
        stats.partial_txs += inc.partial_stratum_txs;
    }
    Ok(())
}

/// Aggregate statistics over a fuzzing run — reported so a "0 divergences"
/// result can be read together with what the cases actually exercised.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzReport {
    /// Cases checked.
    pub cases: u64,
    /// Propositional cases (byte-exact regime).
    pub ground_cases: u64,
    /// Cases where at least one conflict was resolved.
    pub conflict_cases: u64,
    /// Cases also cross-checked against the stratified baseline.
    pub stratified_checks: u64,
    /// Cases that carried an update sequence (transaction-chain regime).
    pub sequence_cases: u64,
    /// Transactions replayed across all sequence cases.
    pub sequence_txs: u64,
    /// Sequence transactions the incremental database answered warm
    /// (summed over the per-policy replays).
    pub warm_txs: u64,
    /// The warm subset that carried deletions and replayed only the
    /// affected strata instead of falling back to a cold run.
    pub partial_txs: u64,
    /// Engine counters summed over every matrix run of every passing case.
    pub counters: StatCounters,
}

/// The first failing case of a fuzz run, with its greedy minimization.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The generated case as produced.
    pub case: Case,
    /// The same failure, shrunk by `crate::minimize`.
    pub minimized: Case,
    /// The divergence the original case produced.
    pub divergence: Divergence,
}

/// Check `cases` generated cases starting at `seed` (case *i* uses seed
/// `seed + i`). Stops at the first divergence, minimizes it, and returns
/// it; `progress` is called after every passing case.
pub fn run_fuzz(
    seed: u64,
    cases: u64,
    variant: OracleVariant,
    progress: impl FnMut(u64, &FuzzReport),
) -> Result<FuzzReport, Box<FuzzFailure>> {
    run_fuzz_biased(
        seed,
        cases,
        variant,
        crate::gen::FuzzBias::Default,
        progress,
    )
}

/// [`run_fuzz`] with an explicit generator bias (`park fuzz --bias`).
pub fn run_fuzz_biased(
    seed: u64,
    cases: u64,
    variant: OracleVariant,
    bias: crate::gen::FuzzBias,
    mut progress: impl FnMut(u64, &FuzzReport),
) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut report = FuzzReport::default();
    for i in 0..cases {
        let case = crate::gen::generate_biased(seed.wrapping_add(i), bias);
        match check_case(&case, variant) {
            Ok(s) => {
                report.cases += 1;
                report.ground_cases += u64::from(s.ground);
                report.conflict_cases += u64::from(s.had_conflicts);
                report.stratified_checks += u64::from(s.stratified_checked);
                report.sequence_cases += u64::from(s.sequence_txs > 0);
                report.sequence_txs += s.sequence_txs;
                report.warm_txs += s.warm_txs;
                report.partial_txs += s.partial_txs;
                report.counters.absorb(&s.counters);
            }
            Err(divergence) => {
                let minimized = crate::minimize::minimize_parsed(&case, |c, p| {
                    check_case_parsed(c, p, variant, AnalysisVariant::Faithful).is_err()
                });
                return Err(Box::new(FuzzFailure {
                    case,
                    minimized,
                    divergence,
                }));
            }
        }
        progress(i + 1, &report);
    }
    Ok(report)
}
