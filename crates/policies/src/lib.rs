//! # park-policies
//!
//! Conflict-resolution (`SELECT`) policies for the PARK semantics.
//!
//! The paper's central design requirement is that the active-database
//! semantics be *parameterized* by the conflict-resolution policy: any
//! function `SELECT(D, P, I, conflict) → insert | delete` slots into the
//! same fixpoint machinery. Section 5 sketches a family of policies; this
//! crate implements all of them:
//!
//! | paper (§4.1/§5)              | type                                   |
//! |------------------------------|----------------------------------------|
//! | principle of inertia         | [`Inertia`] (re-exported from engine)  |
//! | rule priority                | [`RulePriority`]                       |
//! | specificity (partial)        | [`Specificity`]                        |
//! | voting over critics          | [`Voting`], [`Critic`]                 |
//! | interactive                  | [`Interactive`], [`ScriptedOracle`]    |
//! | random                       | [`RandomPolicy`] (seeded)              |
//! | "updates can't be overwritten" (§4.3 remark) | [`TransactionsWin`]    |
//!
//! plus combinators ([`Chain`], [`Recording`]) and simple constants
//! ([`PreferInsert`], [`PreferDelete`], [`AntiInertia`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod constant;
pub mod interactive;
pub mod priority;
pub mod random;
pub mod specificity;
mod testutil;
pub mod voting;

pub use compose::{Chain, Decision, Memoized, PartialPolicy, PerPredicate, Recording};
pub use constant::{AntiInertia, PreferDelete, PreferInsert};
pub use interactive::{parse_answer, CallbackOracle, Interactive, Oracle, ScriptedOracle};
pub use park_engine::{ConflictResolver, Inertia, Resolution};
pub use priority::{RulePriority, TransactionsWin};
pub use random::RandomPolicy;
pub use specificity::Specificity;
pub use voting::{Critic, PolicyCritic, Voting};

/// Construct one of the built-in policies by name — the CLI's `--policy`
/// switch. Recognized: `inertia`, `anti-inertia`, `prefer-insert`,
/// `prefer-delete`, `priority`, `specificity`, `transactions-win`, and
/// `random[:seed]`.
pub fn by_name(name: &str) -> Option<Box<dyn ConflictResolver>> {
    if let Some(seed) = name.strip_prefix("random:") {
        return seed
            .parse::<u64>()
            .ok()
            .map(|s| Box::new(RandomPolicy::seeded(s)) as Box<dyn ConflictResolver>);
    }
    Some(match name {
        "inertia" => Box::new(Inertia),
        "anti-inertia" => Box::new(AntiInertia),
        "prefer-insert" => Box::new(PreferInsert),
        "prefer-delete" => Box::new(PreferDelete),
        "priority" => Box::new(RulePriority::new()),
        "specificity" => Box::new(Specificity::new()),
        "transactions-win" => Box::new(TransactionsWin::new()),
        "random" => Box::new(RandomPolicy::seeded(0)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_builtins() {
        for n in [
            "inertia",
            "anti-inertia",
            "prefer-insert",
            "prefer-delete",
            "priority",
            "specificity",
            "transactions-win",
            "random",
            "random:42",
        ] {
            assert!(by_name(n).is_some(), "missing policy {n}");
        }
        assert!(by_name("nonsense").is_none());
        assert!(by_name("random:notanumber").is_none());
    }

    #[test]
    fn by_name_returns_working_policies() {
        use park_engine::Engine;
        use std::sync::Arc;
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut policy = by_name("prefer-insert").unwrap();
        let out = engine.park(&db, policy.as_mut()).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
    }
}
