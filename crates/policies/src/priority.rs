//! Rule-priority conflict resolution (Section 5).
//!
//! "Within the sets `ins` and `del` of the set of conflicts, the set
//! containing the rule with the highest priority is chosen by SELECT."
//! Priorities come from rule annotations (`@priority(n)`); this is the
//! scheme of Ariel, Postgres, and Starburst that the paper cites.

use park_engine::{Conflict, ConflictResolver, Grounding, Inertia, Resolution, SelectContext};

/// Choose the side containing the highest-priority rule; fall back to an
/// inner policy on ties (the paper leaves ties open — the default inner
/// policy is the principle of inertia).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulePriority<T = Inertia> {
    tie_break: T,
}

impl RulePriority<Inertia> {
    /// Priority policy with inertia tie-breaking.
    pub fn new() -> Self {
        RulePriority { tie_break: Inertia }
    }
}

impl<T: ConflictResolver> RulePriority<T> {
    /// Priority policy with an explicit tie-breaking policy.
    pub fn with_tie_break(tie_break: T) -> Self {
        RulePriority { tie_break }
    }
}

fn side_priority(ctx: &SelectContext<'_>, side: &[Grounding]) -> Option<i32> {
    side.iter().map(|g| ctx.program.rule(g.rule).priority).max()
}

impl<T: ConflictResolver> ConflictResolver for RulePriority<T> {
    fn name(&self) -> &str {
        "rule-priority"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let ins = side_priority(ctx, &c.ins);
        let del = side_priority(ctx, &c.del);
        match (ins, del) {
            (Some(i), Some(d)) if i > d => Ok(Resolution::Insert),
            (Some(i), Some(d)) if i < d => Ok(Resolution::Delete),
            (Some(_), None) => Ok(Resolution::Insert),
            (None, Some(_)) => Ok(Resolution::Delete),
            _ => self.tie_break.select(ctx, c),
        }
    }
}

/// Transaction updates win: if exactly one side of a conflict contains a
/// transaction-update grounding (a `tx` rule of `P_U`), that side wins;
/// otherwise defer to the inner policy.
///
/// This encodes the paper's Section 4.3 remark that the semantics where "a
/// transaction's updates cannot be overwritten" is expressible *inside* the
/// conflict-resolution policy rather than in the fixpoint machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransactionsWin<T = Inertia> {
    inner: T,
}

impl TransactionsWin<Inertia> {
    /// Transactions-win with inertia as the inner policy.
    pub fn new() -> Self {
        TransactionsWin { inner: Inertia }
    }
}

impl<T: ConflictResolver> TransactionsWin<T> {
    /// Transactions-win around an explicit inner policy.
    pub fn around(inner: T) -> Self {
        TransactionsWin { inner }
    }
}

impl<T: ConflictResolver> ConflictResolver for TransactionsWin<T> {
    fn name(&self) -> &str {
        "transactions-win"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let has_tx = |side: &[Grounding]| side.iter().any(|g| ctx.program.rule(g.rule).is_update);
        match (has_tx(&c.ins), has_tx(&c.del)) {
            (true, false) => Ok(Resolution::Insert),
            (false, true) => Ok(Resolution::Delete),
            _ => self.inner.select(ctx, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{conflict_sides, session};
    use park_engine::{Engine, EngineOptions};
    use park_storage::UpdateSet;
    use std::sync::Arc;

    #[test]
    fn higher_priority_side_wins() {
        let (db, program, interp, vocab) = session(
            "@priority(2) r2: p -> +q. @priority(4) r4: a -> -q. @priority(5) r5: b -> +q.",
            "p.",
        );
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let mut policy = RulePriority::new();
        // ins = {r2(prio 2)}, del = {r4(prio 4)} → delete.
        let c = conflict_sides(&vocab, "q", &[0], &[1]);
        assert_eq!(policy.select(&ctx, &c).unwrap(), Resolution::Delete);
        // ins = {r5(prio 5)}, del = {r4(prio 4)} → insert.
        let c = conflict_sides(&vocab, "q", &[2], &[1]);
        assert_eq!(policy.select(&ctx, &c).unwrap(), Resolution::Insert);
    }

    #[test]
    fn tie_falls_back_to_inertia() {
        let (db, program, interp, vocab) = session(
            "@priority(3) r1: p -> +q. @priority(3) r2: p -> -q.",
            "p. a.",
        );
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let mut policy = RulePriority::new();
        // Equal priorities; q ∉ D → inertia says delete.
        let c = conflict_sides(&vocab, "q", &[0], &[1]);
        assert_eq!(policy.select(&ctx, &c).unwrap(), Resolution::Delete);
        // a ∈ D → inertia says insert.
        let c = conflict_sides(&vocab, "a", &[0], &[1]);
        assert_eq!(policy.select(&ctx, &c).unwrap(), Resolution::Insert);
    }

    #[test]
    fn paper_section5_priority_run() {
        // The paper's Section 5 program under rule priorities: result
        // {p, a, b, q}, blocked {r2, r4}.
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program(
            "@priority(1) r1: p -> +a.
             @priority(2) r2: p -> +q.
             @priority(3) r3: a -> +b.
             @priority(4) r4: a -> -q.
             @priority(5) r5: b -> +q.",
        )
        .unwrap();
        let engine =
            Engine::with_options(Arc::clone(&vocab), &program, EngineOptions::default()).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let out = engine.park(&db, &mut RulePriority::new()).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["a", "b", "p", "q"]);
        assert_eq!(out.blocked_display(), vec!["(r2)", "(r4)"]);
    }

    #[test]
    fn transactions_win_beats_rules() {
        // Program rule deletes s(b); the transaction inserts it. Under
        // plain inertia the deletion would win (s(b) ∉ D... it is in D
        // here) — use a case where inertia would side with the rule, and
        // check TransactionsWin overrides it.
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("r1: p(X) -> -s(X).").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(Arc::clone(&vocab), "p(b).").unwrap();
        // s(b) ∉ D: inertia would resolve the conflict to delete, siding
        // with r1. Transactions-win must keep the inserted s(b).
        let updates = UpdateSet::from_source(&vocab, "+s(b).").unwrap();
        let out = engine
            .run(&db, &updates, &mut TransactionsWin::new())
            .unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p(b)", "s(b)"]);
        // And under plain inertia the update is overwritten.
        let out = engine
            .run(&db, &updates, &mut park_engine::Inertia)
            .unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p(b)"]);
    }

    #[test]
    fn transactions_win_defers_when_no_tx_involved() {
        let (db, program, interp, vocab) = session("r1: p -> +q. r2: p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_sides(&vocab, "q", &[0], &[1]);
        // No tx groundings: inner inertia decides (q ∉ D → delete).
        assert_eq!(
            TransactionsWin::new().select(&ctx, &c).unwrap(),
            Resolution::Delete
        );
    }
}
