//! Policy combinators.
//!
//! The paper stresses that conflict resolution is application-dependent and
//! that partial principles (like specificity) "may be combined with other
//! conflict resolution strategies". [`Chain`] runs a sequence of *partial*
//! policies, taking the first committed answer, with a total policy as the
//! final authority. [`Recording`] wraps any policy and logs its decisions
//! for inspection.

use park_engine::{Conflict, ConflictResolver, Resolution, SelectContext};

/// A partial conflict-resolution policy: may abstain.
pub trait PartialPolicy {
    /// A short name for traces.
    fn name(&self) -> &str;
    /// Decide, abstain (`Ok(None)`), or fail.
    fn try_select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Option<Resolution>, String>;
}

/// Closures abstaining with `None` are partial policies.
impl<F> PartialPolicy for F
where
    F: FnMut(&SelectContext<'_>, &Conflict) -> Option<Resolution>,
{
    fn name(&self) -> &str {
        "closure"
    }
    fn try_select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Option<Resolution>, String> {
        Ok(self(ctx, conflict))
    }
}

/// First-match chain of partial policies with a total fallback.
pub struct Chain {
    parts: Vec<Box<dyn PartialPolicy>>,
    fallback: Box<dyn ConflictResolver>,
    name: String,
}

impl Chain {
    /// Build a chain; the fallback answers whatever the parts abstain on.
    pub fn new(parts: Vec<Box<dyn PartialPolicy>>, fallback: Box<dyn ConflictResolver>) -> Self {
        let name = format!("chain[{} parts -> {}]", parts.len(), fallback.name());
        Chain {
            parts,
            fallback,
            name,
        }
    }
}

impl ConflictResolver for Chain {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        for p in &mut self.parts {
            if let Some(r) = p.try_select(ctx, c)? {
                return Ok(r);
            }
        }
        self.fallback.select(ctx, c)
    }
}

/// Routes each conflict to a policy chosen by the contested atom's
/// predicate.
///
/// This is the paper's §3 *flexible conflict resolution* requirement made
/// concrete: "which of these two actions must be performed may depend
/// critically upon the atom in question … policies that vary from atom to
/// atom". A payroll shop can resolve `bonus` conflicts by rule priority
/// while everything else follows inertia.
pub struct PerPredicate {
    routes: Vec<(String, Box<dyn ConflictResolver>)>,
    default: Box<dyn ConflictResolver>,
}

impl PerPredicate {
    /// A router that sends everything to `default`.
    pub fn new(default: Box<dyn ConflictResolver>) -> Self {
        PerPredicate {
            routes: Vec::new(),
            default,
        }
    }

    /// Route conflicts over predicate `pred` to `policy` (builder style).
    pub fn route(mut self, pred: impl Into<String>, policy: Box<dyn ConflictResolver>) -> Self {
        self.routes.push((pred.into(), policy));
        self
    }
}

impl ConflictResolver for PerPredicate {
    fn name(&self) -> &str {
        "per-predicate"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let pred_name = ctx.program.vocab().pred_name(c.pred);
        for (name, policy) in &mut self.routes {
            if name.as_str() == &*pred_name {
                return policy.select(ctx, c);
            }
        }
        self.default.select(ctx, c)
    }
}

/// Memoizes decisions per contested atom.
///
/// PARK restarts from `D` after every resolution, so the *same* conflict
/// can be presented again in a later restart (notably under
/// `ResolutionScope::One`, and whenever distinct conflicts interleave).
/// Deterministic policies answer identically anyway; stateful ones — an
/// interactive human, a random coin — may not, which is semantically legal
/// but surprising (and, for a human, annoying). `Memoized` pins the first
/// decision for each atom and replays it on re-presentation.
pub struct Memoized<T> {
    inner: T,
    cache: std::collections::HashMap<(park_storage::PredId, park_storage::Tuple), Resolution>,
}

impl<T: ConflictResolver> Memoized<T> {
    /// Wrap `inner`.
    pub fn new(inner: T) -> Self {
        Memoized {
            inner,
            cache: std::collections::HashMap::new(),
        }
    }

    /// Number of distinct atoms decided so far.
    pub fn decided(&self) -> usize {
        self.cache.len()
    }

    /// Forget all pinned decisions (e.g. between transactions).
    pub fn reset(&mut self) {
        self.cache.clear();
    }
}

impl<T: ConflictResolver> ConflictResolver for Memoized<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        if let Some(&r) = self.cache.get(&(c.pred, c.tuple.clone())) {
            return Ok(r);
        }
        let r = self.inner.select(ctx, c)?;
        self.cache.insert((c.pred, c.tuple.clone()), r);
        Ok(r)
    }
}

/// A decision record from a [`Recording`] wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The conflict, rendered.
    pub conflict: String,
    /// The resolution chosen.
    pub resolution: Resolution,
}

/// Wraps a policy and records every decision it makes.
pub struct Recording<T> {
    inner: T,
    decisions: Vec<Decision>,
}

impl<T: ConflictResolver> Recording<T> {
    /// Wrap `inner`.
    pub fn new(inner: T) -> Self {
        Recording {
            inner,
            decisions: Vec::new(),
        }
    }

    /// The decisions made so far, in order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }
}

impl<T: ConflictResolver> ConflictResolver for Recording<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let resolution = self.inner.select(ctx, c)?;
        self.decisions.push(Decision {
            conflict: c.display(ctx.program),
            resolution,
        });
        Ok(resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constant::PreferDelete;
    use park_engine::{Engine, Inertia};
    use std::sync::Arc;

    #[test]
    fn chain_takes_first_committed_answer() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        // First part abstains; second commits to insert; fallback would say
        // delete.
        let mut chain = Chain::new(
            vec![
                Box::new(|_: &SelectContext<'_>, _: &Conflict| None),
                Box::new(|_: &SelectContext<'_>, _: &Conflict| Some(Resolution::Insert)),
            ],
            Box::new(PreferDelete),
        );
        let out = engine.park(&db, &mut chain).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
    }

    #[test]
    fn chain_falls_back_when_all_abstain() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut chain = Chain::new(
            vec![Box::new(|_: &SelectContext<'_>, _: &Conflict| None)],
            Box::new(Inertia),
        );
        let out = engine.park(&db, &mut chain).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p"]);
        assert!(chain.name().contains("chain"));
    }

    #[test]
    fn per_predicate_routes_by_contested_atom() {
        use crate::constant::PreferInsert;
        // Two independent conflicts on different predicates: `q` routed to
        // prefer-insert, `z` falls through to inertia (z ∉ D → delete).
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q. p -> +z. p -> -z.").unwrap();
        let engine = park_engine::Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut router = PerPredicate::new(Box::new(Inertia)).route("q", Box::new(PreferInsert));
        let out = engine.park(&db, &mut router).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
        assert_eq!(router.name(), "per-predicate");
    }

    #[test]
    fn memoized_replays_first_decision() {
        use crate::interactive::Interactive;
        // The paper's Section 5 program contests `q` twice, through
        // different rule pairs ({r2} vs {r4}, then {r5} vs {r4}). A
        // stateful policy could answer the two q-conflicts differently;
        // Memoized pins the first decision, so one scripted answer covers
        // both presentations.
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        )
        .unwrap();
        let engine = park_engine::Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        // Bare scripted policy with a single answer runs dry on the second
        // q-conflict.
        let mut bare = Interactive::scripted([Resolution::Delete]);
        assert!(engine.park(&db, &mut bare).is_err());
        // Memoized succeeds with the same single answer and matches the
        // inertia outcome ({p, a, b}).
        let mut memo = Memoized::new(Interactive::scripted([Resolution::Delete]));
        let out = engine.park(&db, &mut memo).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["a", "b", "p"]);
        assert_eq!(memo.decided(), 1);
        memo.reset();
        assert_eq!(memo.decided(), 0);
    }

    #[test]
    fn recording_captures_decisions() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("r1: p -> +q. r2: p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut rec = Recording::new(Inertia);
        engine.park(&db, &mut rec).unwrap();
        assert_eq!(rec.decisions().len(), 1);
        assert_eq!(rec.decisions()[0].resolution, Resolution::Delete);
        assert!(rec.decisions()[0].conflict.contains('q'));
    }
}
