//! Random conflict resolution (Section 5).
//!
//! "In some cases it may be convenient that the system just randomly
//! chooses one from the conflicting rules." The generator is explicitly
//! seeded so runs are reproducible — an unseeded random policy would break
//! test determinism, and the paper's unambiguity requirement concerns the
//! semantics *given* the SELECT function, which a fixed seed provides.

use park_engine::{Conflict, ConflictResolver, Resolution, SelectContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded coin-flip policy.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: StdRng,
    /// Probability of choosing `insert` (default 0.5).
    insert_probability: f64,
}

impl RandomPolicy {
    /// Fair coin with the given seed.
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
            insert_probability: 0.5,
        }
    }

    /// Biased coin.
    pub fn with_bias(seed: u64, insert_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&insert_probability),
            "probability out of range"
        );
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
            insert_probability,
        }
    }
}

impl ConflictResolver for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn select(&mut self, _: &SelectContext<'_>, _: &Conflict) -> Result<Resolution, String> {
        if self.rng.random_bool(self.insert_probability) {
            Ok(Resolution::Insert)
        } else {
            Ok(Resolution::Delete)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{conflict_for, session};

    #[test]
    fn same_seed_same_decisions() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let decisions = |seed: u64| {
            let mut p = RandomPolicy::seeded(seed);
            (0..32)
                .map(|_| p.select(&ctx, &c).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(7), decisions(7));
    }

    #[test]
    fn bias_one_always_inserts() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let mut p = RandomPolicy::with_bias(3, 1.0);
        for _ in 0..16 {
            assert_eq!(p.select(&ctx, &c).unwrap(), Resolution::Insert);
        }
        let mut p = RandomPolicy::with_bias(3, 0.0);
        for _ in 0..16 {
            assert_eq!(p.select(&ctx, &c).unwrap(), Resolution::Delete);
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_bias_panics() {
        let _ = RandomPolicy::with_bias(0, 1.5);
    }
}
