//! The voting scheme (Section 5).
//!
//! "A critic is a program that takes as input a conflict and returns the
//! value insert or delete. When a conflict occurs, the PARK semantics
//! invokes the set of critics and asks each of them for its vote. The
//! majority opinion of the critics is then adopted."
//!
//! Each critic may embody a different intuition (recency, source
//! reliability, a human user, ...). Interactive conflict resolution is the
//! special case of a single human critic — see [`crate::interactive`].

use park_engine::{Conflict, ConflictResolver, Resolution, SelectContext};

/// A voting critic.
pub trait Critic {
    /// A short name for traces.
    fn name(&self) -> &str {
        "critic"
    }
    /// Cast a vote on a conflict.
    fn vote(&mut self, ctx: &SelectContext<'_>, conflict: &Conflict) -> Resolution;
}

/// Closures vote too: `|ctx, conflict| Resolution::Insert`.
impl<F> Critic for F
where
    F: FnMut(&SelectContext<'_>, &Conflict) -> Resolution,
{
    fn vote(&mut self, ctx: &SelectContext<'_>, conflict: &Conflict) -> Resolution {
        self(ctx, conflict)
    }
}

/// Majority voting over a panel of critics; exact ties go to `tie_break`.
pub struct Voting {
    critics: Vec<Box<dyn Critic>>,
    tie_break: Resolution,
}

impl Voting {
    /// A panel with the given critics; ties resolve to `tie_break`.
    pub fn new(critics: Vec<Box<dyn Critic>>, tie_break: Resolution) -> Self {
        Voting { critics, tie_break }
    }

    /// Number of critics on the panel.
    pub fn panel_size(&self) -> usize {
        self.critics.len()
    }
}

impl ConflictResolver for Voting {
    fn name(&self) -> &str {
        "voting"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let mut inserts = 0usize;
        let mut deletes = 0usize;
        for critic in &mut self.critics {
            match critic.vote(ctx, c) {
                Resolution::Insert => inserts += 1,
                Resolution::Delete => deletes += 1,
            }
        }
        Ok(match inserts.cmp(&deletes) {
            std::cmp::Ordering::Greater => Resolution::Insert,
            std::cmp::Ordering::Less => Resolution::Delete,
            std::cmp::Ordering::Equal => self.tie_break,
        })
    }
}

/// A critic that defers to any full policy (lets e.g. inertia or rule
/// priority sit on a panel).
pub struct PolicyCritic<T> {
    inner: T,
    /// Vote cast when the inner policy errors (policies on a panel must
    /// always vote).
    pub on_error: Resolution,
}

impl<T: ConflictResolver> PolicyCritic<T> {
    /// Wrap a policy as a critic; `on_error` is cast if the policy fails.
    pub fn new(inner: T, on_error: Resolution) -> Self {
        PolicyCritic { inner, on_error }
    }
}

impl<T: ConflictResolver> Critic for PolicyCritic<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn vote(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Resolution {
        self.inner.select(ctx, c).unwrap_or(self.on_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constant::{PreferDelete, PreferInsert};
    use crate::testutil::{conflict_for, session};
    use park_engine::Inertia;

    #[test]
    fn majority_wins() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let mut v = Voting::new(
            vec![
                Box::new(PolicyCritic::new(PreferInsert, Resolution::Delete)),
                Box::new(PolicyCritic::new(PreferInsert, Resolution::Delete)),
                Box::new(PolicyCritic::new(PreferDelete, Resolution::Insert)),
            ],
            Resolution::Delete,
        );
        assert_eq!(v.panel_size(), 3);
        assert_eq!(v.select(&ctx, &c).unwrap(), Resolution::Insert);
    }

    #[test]
    fn tie_uses_tie_break() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let mk = |tie| {
            Voting::new(
                vec![
                    Box::new(PolicyCritic::new(PreferInsert, Resolution::Delete))
                        as Box<dyn Critic>,
                    Box::new(PolicyCritic::new(PreferDelete, Resolution::Insert)),
                ],
                tie,
            )
        };
        assert_eq!(
            mk(Resolution::Delete).select(&ctx, &c).unwrap(),
            Resolution::Delete
        );
        assert_eq!(
            mk(Resolution::Insert).select(&ctx, &c).unwrap(),
            Resolution::Insert
        );
    }

    #[test]
    fn closures_are_critics() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let mut v = Voting::new(
            vec![
                Box::new(|_: &SelectContext<'_>, _: &Conflict| Resolution::Delete),
                Box::new(PolicyCritic::new(Inertia, Resolution::Insert)),
                Box::new(|_: &SelectContext<'_>, _: &Conflict| Resolution::Delete),
            ],
            Resolution::Insert,
        );
        // Two delete votes + inertia (q ∉ D → delete) = unanimous delete.
        assert_eq!(v.select(&ctx, &c).unwrap(), Resolution::Delete);
    }

    #[test]
    fn empty_panel_is_all_ties() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        let mut v = Voting::new(vec![], Resolution::Insert);
        assert_eq!(v.select(&ctx, &c).unwrap(), Resolution::Insert);
    }
}
