//! Interactive conflict resolution (Section 5).
//!
//! "As soon as a conflict is found, the user is queried and may resolve the
//! conflict by choosing one among the conflicting rules." The paper also
//! observes this is the voting scheme with a single human critic.
//!
//! The engine-facing type is [`Interactive`], generic over an [`Oracle`].
//! [`ScriptedOracle`] replays a fixed decision list (deterministic tests,
//! batch runs); [`CallbackOracle`] asks a closure, which is how the CLI
//! hooks up a real prompt.

use park_engine::{Conflict, ConflictResolver, Resolution, SelectContext};
use std::collections::VecDeque;

/// A source of interactive answers.
pub trait Oracle {
    /// Answer one rendered conflict; `None` means "no answer available".
    fn answer(&mut self, prompt: &str) -> Option<Resolution>;
}

/// Replays a fixed sequence of decisions; errors when exhausted.
#[derive(Debug, Clone, Default)]
pub struct ScriptedOracle {
    script: VecDeque<Resolution>,
}

impl ScriptedOracle {
    /// An oracle answering with `decisions` in order.
    pub fn new(decisions: impl IntoIterator<Item = Resolution>) -> Self {
        ScriptedOracle {
            script: decisions.into_iter().collect(),
        }
    }

    /// Answers remaining in the script.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Oracle for ScriptedOracle {
    fn answer(&mut self, _prompt: &str) -> Option<Resolution> {
        self.script.pop_front()
    }
}

/// Asks a closure for each decision.
pub struct CallbackOracle<F>(pub F);

impl<F: FnMut(&str) -> Option<Resolution>> Oracle for CallbackOracle<F> {
    fn answer(&mut self, prompt: &str) -> Option<Resolution> {
        (self.0)(prompt)
    }
}

/// The interactive policy: renders each conflict and asks the oracle.
pub struct Interactive<O> {
    oracle: O,
}

impl<O: Oracle> Interactive<O> {
    /// Wrap an oracle.
    pub fn new(oracle: O) -> Self {
        Interactive { oracle }
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

impl Interactive<ScriptedOracle> {
    /// Convenience: an interactive policy over a fixed script.
    pub fn scripted(decisions: impl IntoIterator<Item = Resolution>) -> Self {
        Interactive::new(ScriptedOracle::new(decisions))
    }
}

impl<O: Oracle> ConflictResolver for Interactive<O> {
    fn name(&self) -> &str {
        "interactive"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let prompt = c.display(ctx.program);
        self.oracle
            .answer(&prompt)
            .ok_or_else(|| format!("no interactive answer for conflict {prompt}"))
    }
}

/// Parse a human answer: `i`/`insert`/`+` or `d`/`delete`/`-`
/// (case-insensitive, surrounding whitespace ignored).
pub fn parse_answer(s: &str) -> Option<Resolution> {
    match s.trim().to_ascii_lowercase().as_str() {
        "i" | "ins" | "insert" | "+" => Some(Resolution::Insert),
        "d" | "del" | "delete" | "-" => Some(Resolution::Delete),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::Engine;
    use std::sync::Arc;

    #[test]
    fn scripted_answers_in_order() {
        // Two conflicts, answered insert then delete.
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q. p -> +r. p -> -r.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut policy = Interactive::scripted([Resolution::Insert, Resolution::Delete]);
        let out = engine.park(&db, &mut policy).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
        assert_eq!(policy.oracle().remaining(), 0);
    }

    #[test]
    fn exhausted_script_is_a_policy_error() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut policy = Interactive::scripted([]);
        let err = engine.park(&db, &mut policy).unwrap_err();
        assert!(matches!(err, park_engine::EngineError::Resolver { .. }));
    }

    #[test]
    fn callback_oracle_sees_rendered_conflict() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("r1: p -> +q. r2: p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        let mut prompts: Vec<String> = Vec::new();
        let mut policy = Interactive::new(CallbackOracle(|prompt: &str| {
            prompts.push(prompt.to_string());
            Some(Resolution::Delete)
        }));
        let out = engine.park(&db, &mut policy).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p"]);
        let _ = policy; // release the closure's borrow of `prompts`
        assert_eq!(prompts.len(), 1);
        assert!(prompts[0].contains("(q, {(r1)}, {(r2)})"), "{prompts:?}");
    }

    #[test]
    fn parse_answer_accepts_common_spellings() {
        assert_eq!(parse_answer(" Insert "), Some(Resolution::Insert));
        assert_eq!(parse_answer("i"), Some(Resolution::Insert));
        assert_eq!(parse_answer("+"), Some(Resolution::Insert));
        assert_eq!(parse_answer("DELETE"), Some(Resolution::Delete));
        assert_eq!(parse_answer("-"), Some(Resolution::Delete));
        assert_eq!(parse_answer("maybe"), None);
    }
}
