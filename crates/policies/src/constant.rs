//! Constant and inertia-derived policies.

use park_engine::{Conflict, ConflictResolver, Resolution, SelectContext};

/// Always resolve conflicts in favour of insertion.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreferInsert;

impl ConflictResolver for PreferInsert {
    fn name(&self) -> &str {
        "prefer-insert"
    }
    fn select(&mut self, _: &SelectContext<'_>, _: &Conflict) -> Result<Resolution, String> {
        Ok(Resolution::Insert)
    }
}

/// Always resolve conflicts in favour of deletion.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreferDelete;

impl ConflictResolver for PreferDelete {
    fn name(&self) -> &str {
        "prefer-delete"
    }
    fn select(&mut self, _: &SelectContext<'_>, _: &Conflict) -> Result<Resolution, String> {
        Ok(Resolution::Delete)
    }
}

/// The dual of the principle of inertia: flip the atom's status relative to
/// the original database (`delete` if it was present, `insert` otherwise).
///
/// Not advocated by the paper; useful as a stress test of policy
/// independence — the engine must produce a unique result under *any*
/// `SELECT`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AntiInertia;

impl ConflictResolver for AntiInertia {
    fn name(&self) -> &str {
        "anti-inertia"
    }
    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        if ctx.database.contains(c.pred, &c.tuple) {
            Ok(Resolution::Delete)
        } else {
            Ok(Resolution::Insert)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{conflict_for, session};

    #[test]
    fn constants_ignore_context() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p. a.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let c = conflict_for(&vocab, "q");
        assert_eq!(PreferInsert.select(&ctx, &c).unwrap(), Resolution::Insert);
        assert_eq!(PreferDelete.select(&ctx, &c).unwrap(), Resolution::Delete);
    }

    #[test]
    fn anti_inertia_flips() {
        let (db, program, interp, vocab) = session("p -> +q. p -> -q.", "p. a.");
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        // a ∈ D → delete; q ∉ D → insert (the opposite of inertia).
        assert_eq!(
            AntiInertia
                .select(&ctx, &conflict_for(&vocab, "a"))
                .unwrap(),
            Resolution::Delete
        );
        assert_eq!(
            AntiInertia
                .select(&ctx, &conflict_for(&vocab, "q"))
                .unwrap(),
            Resolution::Insert
        );
    }

    #[test]
    fn names() {
        assert_eq!(PreferInsert.name(), "prefer-insert");
        assert_eq!(PreferDelete.name(), "prefer-delete");
        assert_eq!(AntiInertia.name(), "anti-inertia");
    }
}
