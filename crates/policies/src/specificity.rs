//! Specificity-based conflict resolution (Section 5).
//!
//! "An old AI principle says that more 'specific' rules should be given
//! priority over more general rules" — `penguin(X) -> -flies(X)` beats
//! `bird(X) -> +flies(X)`. The paper notes this is *not complete* (sides
//! can tie or be incomparable) and "may be combined with other conflict
//! resolution strategies"; accordingly this policy wraps a fallback.
//!
//! Specificity measure: a rule's body literal count, with constants adding
//! a half step (a body mentioning a constant is more specific than one of
//! equal length without). The side containing the single most specific
//! grounding wins; any tie defers to the fallback.

use park_engine::{Conflict, ConflictResolver, Grounding, Inertia, Resolution, SelectContext};

/// Prefer the side derived by the more specific rule; defer ties to an
/// inner policy (default: inertia).
#[derive(Debug, Clone, Copy, Default)]
pub struct Specificity<T = Inertia> {
    fallback: T,
}

impl Specificity<Inertia> {
    /// Specificity with inertia fallback.
    pub fn new() -> Self {
        Specificity { fallback: Inertia }
    }
}

impl<T: ConflictResolver> Specificity<T> {
    /// Specificity with an explicit fallback.
    pub fn with_fallback(fallback: T) -> Self {
        Specificity { fallback }
    }
}

/// Twice the body length plus one per constant-containing literal — integer
/// arithmetic for the "half step".
fn rule_specificity(ctx: &SelectContext<'_>, g: &Grounding) -> u32 {
    let rule = ctx.program.rule(g.rule);
    let mut score = 0u32;
    for lit in rule.source.body.iter() {
        score += 2;
        let has_const = match lit.atom() {
            Some(a) => a.args.iter().any(|t| t.as_const().is_some()),
            // A comparison guard narrows the rule like a constant does.
            None => true,
        };
        if has_const {
            score += 1;
        }
    }
    score
}

fn side_specificity(ctx: &SelectContext<'_>, side: &[Grounding]) -> Option<u32> {
    side.iter().map(|g| rule_specificity(ctx, g)).max()
}

impl<T: ConflictResolver> ConflictResolver for Specificity<T> {
    fn name(&self) -> &str {
        "specificity"
    }

    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        match (side_specificity(ctx, &c.ins), side_specificity(ctx, &c.del)) {
            (Some(i), Some(d)) if i > d => Ok(Resolution::Insert),
            (Some(i), Some(d)) if i < d => Ok(Resolution::Delete),
            _ => self.fallback.select(ctx, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::Engine;
    use std::sync::Arc;

    #[test]
    fn penguin_beats_bird() {
        // The paper's example: bird(X) -> +flies(X) vs the more specific
        // penguin(X), bird(X) -> -flies(X).
        let vocab = park_storage::Vocabulary::new();
        let program =
            park_syntax::parse_program("bird(X) -> +flies(X). penguin(X), bird(X) -> -flies(X).")
                .unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(
            vocab,
            "bird(tweety). bird(pingu). penguin(pingu).",
        )
        .unwrap();
        let out = engine.park(&db, &mut Specificity::new()).unwrap();
        let facts = out.database.sorted_display();
        assert!(facts.contains(&"flies(tweety)".to_string()), "{facts:?}");
        assert!(!facts.contains(&"flies(pingu)".to_string()), "{facts:?}");
    }

    #[test]
    fn constants_add_half_step() {
        // q(X, a) is more specific than q(X, Y) at equal body length.
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("q(X, Y) -> +r(X). q(X, a) -> -r(X).").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "q(x, a). r(x).").unwrap();
        let out = engine.park(&db, &mut Specificity::new()).unwrap();
        // The deletion (constant-bearing rule) wins: r(x) is gone.
        assert_eq!(out.database.sorted_display(), vec!["q(x, a)"]);
    }

    #[test]
    fn tie_defers_to_fallback() {
        let vocab = park_storage::Vocabulary::new();
        let program = park_syntax::parse_program("p -> +q. p -> -q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = park_storage::FactStore::from_source(vocab, "p.").unwrap();
        // Equal specificity; inertia fallback: q ∉ D → delete → no q.
        let out = engine.park(&db, &mut Specificity::new()).unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p"]);
        // With a prefer-insert fallback the insertion survives instead.
        let out = engine
            .park(
                &db,
                &mut Specificity::with_fallback(crate::constant::PreferInsert),
            )
            .unwrap();
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
    }
}
