//! Shared helpers for policy unit tests.
#![cfg(test)]

use park_engine::{CompiledProgram, Conflict, Grounding, IInterpretation, RuleId};
use park_storage::{FactStore, Tuple, Vocabulary};
use park_syntax::parse_program;
use std::sync::Arc;

/// Compile a program, build a database, and wrap it in a fresh
/// i-interpretation, all over one vocabulary.
pub fn session(
    rules: &str,
    facts: &str,
) -> (FactStore, CompiledProgram, IInterpretation, Arc<Vocabulary>) {
    let vocab = Vocabulary::new();
    let program =
        CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
    let db = FactStore::from_source(Arc::clone(&vocab), facts).unwrap();
    let interp = IInterpretation::from_database(db.clone());
    (db, program, interp, vocab)
}

/// A conflict over the propositional atom `name` with empty sides.
pub fn conflict_for(vocab: &Arc<Vocabulary>, name: &str) -> Conflict {
    Conflict {
        pred: vocab.pred(name, 0).unwrap(),
        tuple: Tuple::empty(),
        ins: vec![],
        del: vec![],
    }
}

/// A conflict over the propositional atom `name` whose sides cite the given
/// rule ids (with empty substitutions).
pub fn conflict_sides(
    vocab: &Arc<Vocabulary>,
    name: &str,
    ins_rules: &[u32],
    del_rules: &[u32],
) -> Conflict {
    let g = |r: &u32| Grounding {
        rule: RuleId(*r),
        subst: Box::from([]),
    };
    Conflict {
        pred: vocab.pred(name, 0).unwrap(),
        tuple: Tuple::empty(),
        ins: ins_rules.iter().map(g).collect(),
        del: del_rules.iter().map(g).collect(),
    }
}
