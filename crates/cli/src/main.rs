//! `park` — command-line driver for the PARK active-rule engine.
//!
//! ```text
//! park run <program.park> [--db <data.facts>] [--updates <tx.updates>]
//!          [--policy <name>] [--scope all|one] [--eval naive|semi|compiled]
//!          [--threads <n>] [--cold-restarts] [--trace] [--trace-json <f>]
//!          [--stats] [--snapshot <out.json>] [--metrics <out.json>]
//! park check <program.park>...
//! park lint <program.park>... [--format text|json]
//! park analyze <program.park> [--db <data.facts>] [--plan]
//! park query '<body>' [--db <data.facts>]
//! park repl <program.park> [--db <data.facts>] [--policy <name>]
//! park serve [--listen <addr>] [--once] [--policy <name>] [engine options]
//! park baseline <naive|immediate> <program.park> [--db <data.facts>] ...
//! park workload <list|name> [--out <dir>] [generator options]
//! park report <metrics.json>...
//! ```
//!
//! Policies: `inertia` (default), `anti-inertia`, `prefer-insert`,
//! `prefer-delete`, `priority`, `specificity`, `transactions-win`,
//! `random[:seed]`, and `interactive` (prompts on stdin: i/d).
//! Sample inputs live in `examples/data/`.
#![forbid(unsafe_code)]

use park_baselines::{immediate_fire, naive_mark_eliminate, ImmediateConfig, ImmediateResult};
use park_engine::{Engine, EngineOptions, EvaluationMode, JsonMetrics, ResolutionScope};
use park_json::Json;
use park_policies::{parse_answer, CallbackOracle, ConflictResolver, Interactive};
use park_storage::{FactStore, Snapshot, UpdateSet, Vocabulary};
use park_syntax::{check_program, parse_program};
use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;
use std::sync::Arc;

mod repl;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("park: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut it = args.into_iter();
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match it.next().as_deref() {
        Some("run") => done(cmd_run(it.collect(), false)),
        Some("check") => done(cmd_check(it.collect())),
        Some("lint") => cmd_lint(it.collect()),
        Some("analyze") => done(cmd_analyze(it.collect())),
        Some("repl") => done(cmd_repl(it.collect())),
        Some("serve") => done(cmd_serve(it.collect())),
        Some("query") => done(cmd_query(it.collect())),
        Some("baseline") => done(cmd_baseline(it.collect())),
        Some("workload") => done(cmd_workload(it.collect())),
        Some("fuzz") => done(cmd_fuzz(it.collect())),
        Some("report") => done(cmd_report(it.collect())),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}` (try `park help`)")),
    }
}

const HELP: &str = "\
park - the PARK semantics for active rules (EDBT 1996)

USAGE:
  park run <program.park> [OPTIONS]      evaluate PARK(D, P, U)
  park check <program.park>...           parse + safety-check programs
                                         (reports every error in every file)
  park lint <program.park>...            static analysis with stable lint codes
                                         [--format text|json]; exit 0 = clean,
                                         1 = warnings, 2 = errors; suppress
                                         with `%# allow(PARKxxx)` comment lines
  park analyze <program.park> [--db <f>] dependency/recursion/conflict report;
                                         with --db also per-relation shard
                                         stats and a confluence probe; --plan
                                         dumps the compiled evaluator's lowered
                                         bytecode and cost-model choices;
                                         --graph dumps the SCC condensation +
                                         stratum assignment as park-graph/v1
                                         JSON (add --dot for Graphviz)
  park repl <program.park> [--db <f>]    interactive transactional session
  park serve [--listen <addr>] [--once]  resident multi-database engine:
                                         ndjson requests on stdin (or a TCP
                                         socket) answered with park-serve/v1
                                         frames; accepts --policy/--scope/
                                         --eval/--threads/--trace/--incremental
                                         session defaults (see docs/serve.md
                                         and docs/incremental.md)
  park query '<body>' --db <data.facts>  conjunctive query over a database
  park baseline <naive|immediate> <program.park> [OPTIONS]
  park workload <list|name> [--out DIR]  emit a generated workload
  park fuzz [--seed N] [--cases K]       differential-test the engine against
                                         the paper-literal oracle;
                                         --bias stratified draws layered
                                         stratified-negation programs with
                                         deletion-bearing update chains
  park report <metrics.json>...          aggregate park-metrics/v1 documents
                                         into a markdown report
  park help

OPTIONS (run/baseline):
  --db <file>         facts file for the database instance D (default: empty)
  --updates <file>    transaction updates U, e.g. `+q(b). -p(a).`
  --policy <name>     inertia | anti-inertia | prefer-insert | prefer-delete |
                      priority | specificity | transactions-win |
                      random[:seed] | interactive        (default: inertia)
  --scope <all|one>   conflicts resolved per restart     (default: all)
  --eval <naive|semi|compiled>
                      grounding enumeration strategy     (default: naive);
                      `compiled` lowers rules to register bytecode with
                      cost-model join ordering and index selection
                      (see docs/compile.md)
  --threads <n>       evaluate each step on n threads with a deterministic
                      ordered merge: identical results
                      (default: no pool, single-threaded)
  --cold-restarts     re-run every step cold after a conflict instead of
                      replaying the previous run's firing log (diagnostic;
                      results are identical either way)
  --trace             print the paper-style step listing
  --trace-json <file> write the trace as JSON events
  --stats             print run statistics
  --snapshot <file>   write the result database as JSON
  --metrics <file>    write a park-metrics/v1 JSON document: per-step timings
                      and firing counts, per-rule tallies, restart causes,
                      replay savings (also accepted by `park fuzz`; aggregate
                      with `park report`)
";

#[derive(Default)]
struct RunArgs {
    program: Option<String>,
    db: Option<String>,
    updates: Option<String>,
    policy: String,
    scope: ResolutionScope,
    evaluation: EvaluationMode,
    threads: Option<usize>,
    cold_restarts: bool,
    trace: bool,
    trace_json: Option<String>,
    stats: bool,
    snapshot: Option<String>,
    metrics: Option<String>,
    plan: bool,
    graph: bool,
    dot: bool,
}

fn parse_run_args(args: Vec<String>) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        policy: "inertia".into(),
        ..RunArgs::default()
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--db" => out.db = Some(grab("--db")?),
            "--updates" => out.updates = Some(grab("--updates")?),
            "--policy" => out.policy = grab("--policy")?,
            "--scope" => {
                out.scope = match grab("--scope")?.as_str() {
                    "all" => ResolutionScope::All,
                    "one" => ResolutionScope::One,
                    other => return Err(format!("unknown scope `{other}`")),
                }
            }
            "--eval" => {
                out.evaluation = match grab("--eval")?.as_str() {
                    "naive" => EvaluationMode::Naive,
                    "semi" | "semi-naive" | "seminaive" => EvaluationMode::SemiNaive,
                    "compiled" | "compile" | "bytecode" => EvaluationMode::Compiled,
                    other => return Err(format!("unknown evaluation mode `{other}`")),
                }
            }
            "--threads" => {
                let raw = grab("--threads")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{raw}`"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                out.threads = Some(n);
            }
            "--cold-restarts" => out.cold_restarts = true,
            "--plan" => out.plan = true,
            "--graph" => out.graph = true,
            "--dot" => out.dot = true,
            "--trace" => out.trace = true,
            "--trace-json" => out.trace_json = Some(grab("--trace-json")?),
            "--stats" => out.stats = true,
            "--snapshot" => out.snapshot = Some(grab("--snapshot")?),
            "--metrics" => out.metrics = Some(grab("--metrics")?),
            other if !other.starts_with("--") && out.program.is_none() => {
                out.program = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(out)
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// The shared front half of `check`, `analyze`, and `run`: read, parse, and
/// safety-check one program file, rendering the parse error or *every*
/// safety error as a caret diagnostic.
fn load_program(path: &str) -> Result<(String, park_syntax::Program), String> {
    let src = read_file(path)?;
    let program =
        parse_program(&src).map_err(|e| format!("in {path}:{}\n{}", e.span, e.render(&src)))?;
    check_program(&program).map_err(|errs| {
        errs.iter()
            .map(|e| format!("in {path}:{}\n{}", e.span, e.render(&src)))
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    Ok((src, program))
}

fn load_session(
    a: &RunArgs,
) -> Result<(Arc<Vocabulary>, park_syntax::Program, FactStore, UpdateSet), String> {
    let program_path = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let (_, program) = load_program(program_path)?;
    let vocab = Vocabulary::new();
    let db = match &a.db {
        Some(path) => FactStore::from_source(Arc::clone(&vocab), &read_file(path)?)
            .map_err(|e| e.to_string())?,
        None => FactStore::new(Arc::clone(&vocab)),
    };
    let updates = match &a.updates {
        Some(path) => {
            UpdateSet::from_source(&vocab, &read_file(path)?).map_err(|e| e.to_string())?
        }
        None => UpdateSet::empty(),
    };
    Ok((vocab, program, db, updates))
}

/// The stdin-backed interactive policy.
fn interactive_policy() -> impl ConflictResolver {
    Interactive::new(CallbackOracle(|prompt: &str| {
        let stdin = std::io::stdin();
        loop {
            eprint!("conflict {prompt}\nresolve [i]nsert / [d]elete? ");
            std::io::stderr().flush().ok();
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {
                    if let Some(r) = parse_answer(&line) {
                        return Some(r);
                    }
                    eprintln!("unrecognized answer {line:?}");
                }
            }
        }
    }))
}

fn make_policy(name: &str) -> Result<Box<dyn ConflictResolver>, String> {
    if name == "interactive" {
        // The interactive policy prompts on stdin mid-evaluation. With
        // stdin redirected the first conflict would read updates (or EOF)
        // as answers and fail halfway through — reject up front instead.
        if !std::io::stdin().is_terminal() {
            return Err(
                "policy `interactive` needs a terminal on stdin; in scripts use a \
                 deterministic policy, or `park serve` with per-transaction \
                 \"answers\" (see docs/serve.md)"
                    .into(),
            );
        }
        return Ok(Box::new(interactive_policy()));
    }
    park_policies::by_name(name).ok_or_else(|| format!("unknown policy `{name}`"))
}

fn cmd_run(args: Vec<String>, _baseline: bool) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let (vocab, program, db, updates) = load_session(&a)?;
    let options = EngineOptions {
        trace: a.trace || a.trace_json.is_some(),
        scope: a.scope,
        evaluation: a.evaluation,
        parallelism: a.threads,
        warm_restarts: !a.cold_restarts,
        ..EngineOptions::default()
    };
    let engine = Engine::with_options(vocab, &program, options).map_err(|e| e.to_string())?;
    let mut policy = make_policy(&a.policy)?;
    let out = if let Some(path) = &a.metrics {
        let mut sink = JsonMetrics::new("run");
        let out = engine
            .run_with_metrics(&db, &updates, policy.as_mut(), &mut sink)
            .map_err(|e| e.to_string())?;
        std::fs::write(path, format!("{}\n", sink.to_json().to_pretty()))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        out
    } else {
        engine
            .run(&db, &updates, policy.as_mut())
            .map_err(|e| e.to_string())?
    };
    if a.trace {
        println!("{}", out.trace.render());
    }
    if let Some(path) = &a.trace_json {
        std::fs::write(path, out.trace.to_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!("{}", out.database.to_source().trim_end());
    if a.stats {
        eprintln!("{}", out.stats.summary());
        // Report the *effective* configuration: no --threads means no
        // thread pool, which behaves like one thread, and a request beyond
        // the host's available parallelism is clamped (task decomposition
        // still follows the request, so results are unaffected).
        match a.threads {
            None | Some(1) => eprintln!("threads=1 (no pool)"),
            Some(n) if out.stats.effective_parallelism < n => eprintln!(
                "threads={n} (oversubscribed; pool clamped to host parallelism {})",
                out.stats.effective_parallelism
            ),
            Some(n) => eprintln!("threads={n}"),
        }
        let blocked = out.blocked_display();
        if !blocked.is_empty() {
            eprintln!("blocked: {}", blocked.join(", "));
        }
    }
    if let Some(path) = &a.snapshot {
        let json = Snapshot::of(&out.database)
            .to_json()
            .map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

fn cmd_serve(args: Vec<String>) -> Result<(), String> {
    let mut listen: Option<String> = None;
    let mut once = false;
    let mut opts = park_serve::ServeOptions::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--listen" => listen = Some(grab("--listen")?),
            "--once" => once = true,
            "--policy" => opts.policy = grab("--policy")?,
            "--scope" => {
                opts.scope = match grab("--scope")?.as_str() {
                    "all" => ResolutionScope::All,
                    "one" => ResolutionScope::One,
                    other => return Err(format!("unknown scope `{other}`")),
                }
            }
            "--eval" => {
                opts.evaluation = match grab("--eval")?.as_str() {
                    "naive" => EvaluationMode::Naive,
                    "semi" | "semi-naive" | "seminaive" => EvaluationMode::SemiNaive,
                    "compiled" | "compile" | "bytecode" => EvaluationMode::Compiled,
                    other => return Err(format!("unknown evaluation mode `{other}`")),
                }
            }
            "--threads" => {
                let raw = grab("--threads")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{raw}`"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                opts.threads = Some(n);
            }
            "--trace" => opts.trace = true,
            "--incremental" => opts.incremental = true,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    park_serve::resolve_policy(&opts.policy)?;
    match listen {
        Some(addr) => {
            let stdout = std::io::stdout();
            park_serve::serve_tcp(&addr, once, &opts, &mut stdout.lock()).map_err(|e| e.to_string())
        }
        None => {
            let stdin = std::io::stdin();
            park_serve::serve(stdin.lock(), std::io::stdout(), &opts).map_err(|e| e.to_string())
        }
    }
}

fn cmd_check(args: Vec<String>) -> Result<(), String> {
    let mut files = Vec::new();
    for a in args {
        if a.starts_with("--") {
            return Err(format!("unexpected argument `{a}`"));
        }
        files.push(a);
    }
    if files.is_empty() {
        return Err("missing <program.park> argument".into());
    }
    // Check every file and report every error before failing — a broken
    // first file must not mask problems in the rest of the batch.
    let mut failures = Vec::new();
    for path in &files {
        match load_program(path) {
            Ok((_, program)) => println!("{path}: {} rules, safe", program.len()),
            Err(e) => failures.push(e),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn cmd_lint(args: Vec<String>) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().ok_or("--format requires a value")?.as_str() {
                "text" => json = false,
                "json" => json = true,
                other => return Err(format!("unknown format `{other}` (text|json)")),
            },
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("usage: park lint <program.park>... [--format text|json]".into());
    }
    let mut reports = Vec::new();
    let mut sources = Vec::new();
    for path in &files {
        // An unreadable file is as fatal as an error-severity diagnostic:
        // CI must not read "clean" off a lint run that saw nothing.
        let src = match read_file(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("park: {e}");
                return Ok(ExitCode::from(2));
            }
        };
        reports.push(park_lint::lint_source(
            path,
            &src,
            park_lint::AnalysisVariant::Faithful,
        ));
        sources.push(src);
    }
    if json {
        println!("{}", park_lint::reports_to_json(&reports).to_pretty());
    } else {
        for (report, src) in reports.iter().zip(&sources) {
            print!("{}", park_lint::render_text(report, src));
        }
    }
    Ok(match park_lint::max_severity(&reports) {
        Some(park_lint::Severity::Error) => ExitCode::from(2),
        Some(park_lint::Severity::Warning) => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    })
}

fn cmd_analyze(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let path = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let (src, program) = load_program(path)?;
    let compiled = park_engine::CompiledProgram::compile(Vocabulary::new(), &program)
        .map_err(|e| e.to_string())?;
    // --graph replaces the text report with a machine-readable dump of the
    // SCC condensation and stratum assignment: park-graph/v1 JSON, or a
    // Graphviz digraph with --dot. Both orderings are deterministic (the
    // condensation comes out of a sorted-adjacency Tarjan).
    if a.graph {
        let strata = park_engine::Strata::of(&compiled);
        if a.dot {
            print!("{}", graph_dot(&compiled, &strata));
        } else {
            println!("{}", graph_json(path, &compiled, &strata).to_pretty());
        }
        return Ok(());
    }
    let report = park_engine::analysis::report(&compiled);
    println!("{path}:");
    println!("  rules          : {}", report.rules);
    println!("  predicates     : {}", report.preds);
    println!(
        "  recursive      : {}",
        if report.recursive.is_empty() {
            "-".into()
        } else {
            report.recursive.join(", ")
        }
    );
    println!(
        "  stratified     : {}",
        if report.stratified { "yes" } else { "no" }
    );
    if report.conflicts.is_empty() {
        println!("  conflict pairs : none (statically conflict-free)");
    } else {
        println!("  conflict pairs :");
        for (ins, del, pred) in &report.conflicts {
            println!("    {ins} (+{pred}) vs {del} (-{pred})");
        }
    }
    // The refined verdicts from the shared lint analyses: which of the
    // syntactic pairs survive condition-overlap refinement, and the rest
    // of the diagnostics catalogue (see `park lint` / docs/lints.md).
    let lint = park_lint::lint_source(path, &src, park_lint::AnalysisVariant::Faithful);
    if lint.certified_conflict_free {
        println!("  certificate    : conflict-free (engine skips conflict bookkeeping)");
    }
    if lint.diagnostics.is_empty() {
        println!("  lint           : clean");
    } else {
        println!("  lint           :");
        for d in &lint.diagnostics {
            let loc = if d.span.is_synthetic() {
                String::new()
            } else {
                format!(" {}:{}:", d.span.line, d.span.col)
            };
            println!(
                "    {}[{}]{loc} {}",
                d.severity.as_str(),
                d.code.code(),
                d.message
            );
        }
    }
    // With a database, probe whether the result is policy-sensitive.
    if let Some(db_path) = &a.db {
        let vocab = Arc::clone(compiled.vocab());
        let db = FactStore::from_source(vocab, &read_file(db_path)?).map_err(|e| e.to_string())?;
        // Per-relation shard stats: how the interned columnar store lays
        // this database out (see docs/storage.md).
        let mut shard_preds: Vec<park_storage::PredId> = db.nonempty_preds().collect();
        shard_preds.sort_by_key(|p| db.vocab().pred_name(*p));
        println!(
            "  shards         : {} relations, {} facts, {} encoded bytes",
            shard_preds.len(),
            db.len(),
            db.encoded_bytes()
        );
        for p in shard_preds {
            let Some(rel) = db.relation(p) else { continue };
            println!(
                "    {}/{}: {} facts, {} bytes, {} indexes",
                db.vocab().pred_name(p),
                db.vocab().pred_arity(p),
                rel.len(),
                rel.encoded_bytes(),
                rel.index_count()
            );
        }
        let engine =
            Engine::new(Arc::clone(compiled.vocab()), &program).map_err(|e| e.to_string())?;
        match park_engine::confluence_probe(&engine, &db).map_err(|e| e.to_string())? {
            park_engine::Confluence::StaticallyConfluent => {
                println!("  confluence     : statically confluent (policy-independent)")
            }
            park_engine::Confluence::ProbablyConfluent { conflicts } => println!(
                "  confluence     : extreme policies agree on this database \
                 ({conflicts} conflicts probed)"
            ),
            park_engine::Confluence::PolicySensitive {
                only_with_insert,
                only_with_delete,
            } => {
                println!("  confluence     : POLICY-SENSITIVE on this database");
                if !only_with_insert.is_empty() {
                    println!("    only under insert: {}", only_with_insert.join(", "));
                }
                if !only_with_delete.is_empty() {
                    println!("    only under delete: {}", only_with_delete.join(", "));
                }
            }
        }
    }
    // The compiled evaluator's lowered bytecode: join order, index picks,
    // and per-op shapes. The cost model reads the --db shard sizes when
    // one is supplied; with no database it falls back to its defaults.
    if a.plan {
        let vocab = Arc::clone(compiled.vocab());
        let db = match &a.db {
            Some(db_path) => {
                FactStore::from_source(vocab, &read_file(db_path)?).map_err(|e| e.to_string())?
            }
            None => FactStore::new(vocab),
        };
        let lowered = park_engine::lower(&compiled, &db);
        for line in lowered.render(&compiled).lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

fn edge_kind_name(kind: park_engine::EdgeKind) -> &'static str {
    match kind {
        park_engine::EdgeKind::Positive => "positive",
        park_engine::EdgeKind::Negative => "negative",
        park_engine::EdgeKind::Event => "event",
    }
}

/// The `park analyze --graph` document: the dependency graph's SCC
/// condensation with per-component strata, per-predicate assignments, the
/// (sorted) edge list, and the localized stratification failures.
fn graph_json(
    file: &str,
    program: &park_engine::CompiledProgram,
    strata: &park_engine::Strata,
) -> Json {
    let vocab = program.vocab();
    let name = |p: park_storage::PredId| vocab.pred_name(p).to_string();
    let graph = strata.graph();
    let self_loop = |p: park_storage::PredId| graph.edges.iter().any(|&(f, t, _)| f == p && t == p);

    // Components in condensation order: dependencies before dependents.
    let components: Vec<Json> = strata
        .components()
        .iter()
        .enumerate()
        .map(|(i, comp)| {
            let mut preds: Vec<String> = comp.iter().map(|&p| name(p)).collect();
            preds.sort();
            let recursive = comp.len() > 1 || self_loop(comp[0]);
            Json::object([
                ("index", Json::from(i)),
                (
                    "stratum",
                    Json::from(i64::from(strata.component_stratum(i))),
                ),
                ("recursive", Json::from(recursive)),
                (
                    "preds",
                    Json::from(preds.into_iter().map(Json::Str).collect::<Vec<_>>()),
                ),
            ])
        })
        .collect();

    let mut pred_rows: Vec<(String, usize, u32)> = strata
        .components()
        .iter()
        .enumerate()
        .flat_map(|(i, comp)| {
            comp.iter()
                .map(move |&p| (p, i))
                .collect::<Vec<_>>()
                .into_iter()
        })
        .map(|(p, i)| (name(p), i, strata.component_stratum(i)))
        .collect();
    pred_rows.sort();
    let predicates: Vec<Json> = pred_rows
        .into_iter()
        .map(|(n, comp, stratum)| {
            Json::object([
                ("name", Json::str(n)),
                ("component", Json::from(comp)),
                ("stratum", Json::from(i64::from(stratum))),
            ])
        })
        .collect();

    let mut edge_rows: Vec<(String, String, &'static str)> = graph
        .edges
        .iter()
        .map(|&(f, t, k)| (name(f), name(t), edge_kind_name(k)))
        .collect();
    edge_rows.sort();
    let edges: Vec<Json> = edge_rows
        .into_iter()
        .map(|(f, t, k)| {
            Json::object([
                ("from", Json::str(f)),
                ("to", Json::str(t)),
                ("kind", Json::str(k)),
            ])
        })
        .collect();

    let offending: Vec<Json> = strata
        .offending_edges()
        .iter()
        .map(|e| {
            let mut comp: Vec<String> = e.component.iter().map(|&p| name(p)).collect();
            comp.sort();
            let rules: Vec<Json> = e
                .rules
                .iter()
                .map(|&(id, span)| {
                    Json::object([
                        ("rule", Json::str(program.rule(id).display_name())),
                        ("line", Json::from(span.line as i64)),
                        ("col", Json::from(span.col as i64)),
                    ])
                })
                .collect();
            Json::object([
                ("from", Json::str(name(e.from))),
                ("to", Json::str(name(e.to))),
                ("kind", Json::str(edge_kind_name(e.kind))),
                (
                    "component",
                    Json::from(comp.into_iter().map(Json::Str).collect::<Vec<_>>()),
                ),
                ("rules", Json::from(rules)),
            ])
        })
        .collect();

    Json::object([
        ("schema", Json::str("park-graph/v1")),
        ("file", Json::str(file)),
        ("stratified", Json::from(strata.is_stratified())),
        ("max_stratum", Json::from(i64::from(strata.max_stratum()))),
        ("components", Json::from(components)),
        ("predicates", Json::from(predicates)),
        ("edges", Json::from(edges)),
        ("offending", Json::from(offending)),
    ])
}

/// The same condensation as a Graphviz digraph: one cluster per stratum,
/// negative edges dashed+red, event edges dotted+blue, offending edges
/// bold.
fn graph_dot(program: &park_engine::CompiledProgram, strata: &park_engine::Strata) -> String {
    use std::fmt::Write as _;
    let vocab = program.vocab();
    let name = |p: park_storage::PredId| vocab.pred_name(p).to_string();
    let mut out = String::from("digraph park {\n  rankdir=BT;\n  node [shape=box];\n");
    let max = strata.max_stratum();
    for s in 0..=max {
        let mut members: Vec<String> = strata
            .components()
            .iter()
            .enumerate()
            .filter(|&(i, _)| strata.component_stratum(i) == s)
            .flat_map(|(_, comp)| comp.iter().map(|&p| name(p)))
            .collect();
        members.sort();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_stratum_{s} {{");
        let _ = writeln!(out, "    label=\"stratum {s}\";");
        for m in &members {
            let _ = writeln!(out, "    \"{m}\";");
        }
        let _ = writeln!(out, "  }}");
    }
    let offending: std::collections::HashSet<(String, String, &'static str)> = strata
        .offending_edges()
        .iter()
        .map(|e| (name(e.from), name(e.to), edge_kind_name(e.kind)))
        .collect();
    let mut edge_rows: Vec<(String, String, park_engine::EdgeKind)> = strata
        .graph()
        .edges
        .iter()
        .map(|&(f, t, k)| (name(f), name(t), k))
        .collect();
    edge_rows.sort();
    for (f, t, k) in edge_rows {
        let mut attrs = match k {
            park_engine::EdgeKind::Positive => String::new(),
            park_engine::EdgeKind::Negative => "style=dashed, color=red, label=\"!\"".into(),
            park_engine::EdgeKind::Event => "style=dotted, color=blue, label=\"±\"".into(),
        };
        if offending.contains(&(f.clone(), t.clone(), edge_kind_name(k))) {
            if !attrs.is_empty() {
                attrs.push_str(", ");
            }
            attrs.push_str("penwidth=2.0");
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  \"{f}\" -> \"{t}\";");
        } else {
            let _ = writeln!(out, "  \"{f}\" -> \"{t}\" [{attrs}];");
        }
    }
    out.push_str("}\n");
    out
}

fn cmd_query(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let query_src = a.program.as_deref().ok_or("missing \"<body>\" argument")?;
    let vocab = Vocabulary::new();
    let db = match &a.db {
        Some(path) => FactStore::from_source(Arc::clone(&vocab), &read_file(path)?)
            .map_err(|e| e.to_string())?,
        None => FactStore::new(Arc::clone(&vocab)),
    };
    let q = park_engine::Query::parse(&vocab, query_src).map_err(|e| e.to_string())?;
    let rows = q.run_on_database(&db);
    if rows.is_empty() {
        println!("(no answers)");
    } else {
        for r in q.render_rows(&rows) {
            println!("{r}");
        }
    }
    Ok(())
}

fn cmd_repl(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let program = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    repl::run_repl(
        program,
        a.db.as_deref(),
        &a.policy,
        &mut stdin.lock(),
        &mut stdout.lock(),
    )
}

fn cmd_baseline(mut args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        return Err("usage: park baseline <naive|immediate> <program.park> ...".into());
    }
    let which = args.remove(0);
    let a = parse_run_args(args)?;
    let (vocab, program, db, updates) = load_session(&a)?;
    match which.as_str() {
        "naive" => {
            let compiled = park_engine::CompiledProgram::compile(vocab, &program)
                .map_err(|e| e.to_string())?;
            let out = naive_mark_eliminate(&compiled, &db, &updates, 1 << 22)
                .map_err(|e| e.to_string())?;
            println!("{}", out.database.to_source().trim_end());
            if a.stats {
                eprintln!(
                    "steps={} eliminated={}",
                    out.steps,
                    out.eliminated.join(",")
                );
            }
        }
        "immediate" => {
            if !updates.is_empty() {
                return Err("the immediate baseline does not support --updates".into());
            }
            let compiled = park_engine::CompiledProgram::compile(vocab, &program)
                .map_err(|e| e.to_string())?;
            let out = immediate_fire(&compiled, &db, ImmediateConfig::default());
            match &out {
                ImmediateResult::Converged { database, fires } => {
                    println!("{}", database.to_source().trim_end());
                    if a.stats {
                        eprintln!("converged after {fires} firings");
                    }
                }
                ImmediateResult::Diverged { fires, .. } => {
                    return Err(format!(
                        "immediate execution diverged after {fires} firings"
                    ));
                }
            }
        }
        other => return Err(format!("unknown baseline `{other}`")),
    }
    Ok(())
}

fn cmd_workload(args: Vec<String>) -> Result<(), String> {
    let mut name = None;
    let mut out_dir = ".".to_string();
    let mut n: usize = 50;
    let mut seed: u64 = 42;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().ok_or("--out requires a value")?,
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --n: {e}"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other if !other.starts_with("--") && name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let name = name.ok_or("usage: park workload <list|name> [--out DIR] [--n N] [--seed S]")?;
    let write = |stem: &str, ext: &str, contents: &str| -> Result<(), String> {
        let path = format!("{out_dir}/{stem}.{ext}");
        std::fs::write(&path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    match name.as_str() {
        "list" => {
            println!("irreflexive-graph  closure  chains  payroll  inventory  inventory-guards");
        }
        "irreflexive-graph" => {
            write(
                "irreflexive_graph",
                "park",
                &park_workloads::irreflexive_graph_program(),
            )?;
            write(
                "irreflexive_graph",
                "facts",
                &park_workloads::nodes_database(n),
            )?;
        }
        "closure" => {
            write(
                "closure",
                "park",
                &park_workloads::transitive_closure_program(),
            )?;
            write(
                "closure",
                "facts",
                &park_workloads::erdos_renyi_edges(n, 0.1, seed),
            )?;
        }
        "chains" => {
            let (p, f) = park_workloads::staggered_conflicts(n.min(64));
            write("chains", "park", &p)?;
            write("chains", "facts", &f)?;
        }
        "payroll" => {
            let cfg = park_workloads::PayrollConfig {
                employees: n,
                seed,
                ..Default::default()
            };
            let (facts, updates) = park_workloads::payroll_database(&cfg);
            write("payroll", "park", &park_workloads::payroll_program())?;
            write("payroll", "facts", &facts)?;
            write("payroll", "updates", &updates)?;
        }
        "inventory" => {
            let cfg = park_workloads::InventoryConfig {
                items: n,
                seed,
                ..Default::default()
            };
            write("inventory", "park", &park_workloads::inventory_program())?;
            write(
                "inventory",
                "facts",
                &park_workloads::inventory_database(&cfg),
            )?;
        }
        "inventory-guards" => {
            let cfg = park_workloads::InventoryConfig {
                items: n,
                seed,
                ..Default::default()
            };
            write(
                "inventory_guards",
                "park",
                &park_workloads::inventory_guard_program(),
            )?;
            write(
                "inventory_guards",
                "facts",
                &park_workloads::inventory_guard_database(&cfg),
            )?;
        }
        other => {
            return Err(format!(
                "unknown workload `{other}` (try `park workload list`)"
            ))
        }
    }
    Ok(())
}

fn cmd_fuzz(args: Vec<String>) -> Result<(), String> {
    let mut seed: u64 = 0;
    let mut cases: u64 = 100;
    let mut metrics: Option<String> = None;
    let mut bias = park_testkit::FuzzBias::Default;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--cases" => {
                cases = it
                    .next()
                    .ok_or("--cases requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?
            }
            "--metrics" => metrics = Some(it.next().ok_or("--metrics requires a value")?),
            "--bias" => {
                let v = it.next().ok_or("--bias requires a value")?;
                bias = park_testkit::FuzzBias::parse(&v)
                    .ok_or(format!("bad --bias `{v}` (expected default|stratified)"))?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let started = std::time::Instant::now();
    let progress_every = (cases / 10).max(1);
    let report = park_testkit::run_fuzz_biased(
        seed,
        cases,
        park_testkit::OracleVariant::Faithful,
        bias,
        |done, _| {
            if done % progress_every == 0 || done == cases {
                eprintln!("fuzz: {done}/{cases} cases checked");
            }
        },
    )
    .map_err(|f| {
        let flag = match bias {
            park_testkit::FuzzBias::Default => String::new(),
            park_testkit::FuzzBias::Stratified => " --bias stratified".to_string(),
        };
        format!(
            "divergence on case seed {} ({}):\n  {}\nminimized reproducer \
             (rerun with `park fuzz --seed {}{flag} --cases 1`):\n{}",
            f.divergence.seed,
            f.divergence.config,
            f.divergence,
            f.divergence.seed,
            f.minimized.to_text()
        )
    })?;
    if let Some(path) = &metrics {
        // Fuzzing sweeps thousands of independent runs, so the document
        // carries the aggregate counters (no per-step stream).
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let doc = Json::object([
            ("schema", Json::str("park-metrics/v1")),
            ("source", Json::str("fuzz")),
            ("seed", Json::from(seed)),
            ("cases", Json::from(report.cases)),
            ("totals", counters_json(&report.counters, elapsed_ns)),
        ]);
        std::fs::write(path, format!("{}\n", doc.to_pretty()))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!(
        "fuzz: {} cases, 0 divergences (seed {}, {} ground, {} with conflicts, \
         {} stratified cross-checks; {} engine configs x {} policies per case)",
        report.cases,
        seed,
        report.ground_cases,
        report.conflict_cases,
        report.stratified_checks,
        park_testkit::EngineConfig::matrix().len(),
        park_testkit::POLICIES.len(),
    );
    println!(
        "fuzz: {} update-sequence cases, {} transactions replayed, \
         {} answered warm by the incremental database ({} partial-stratum)",
        report.sequence_cases, report.sequence_txs, report.warm_txs, report.partial_txs,
    );
    Ok(())
}

fn counters_json(c: &park_engine::StatCounters, elapsed_ns: u64) -> Json {
    Json::object([
        ("gamma_steps", Json::from(c.gamma_steps)),
        ("restarts", Json::from(c.restarts)),
        ("conflicts_resolved", Json::from(c.conflicts_resolved)),
        ("groundings_fired", Json::from(c.groundings_fired)),
        ("blocked_instances", Json::from(c.blocked_instances)),
        ("eval_tasks", Json::from(c.eval_tasks)),
        ("replayed_steps", Json::from(c.replayed_steps)),
        (
            "replay_divergence_step",
            c.replay_divergence_step.map_or(Json::Null, Json::from),
        ),
        ("peak_marked_atoms", Json::from(c.peak_marked_atoms)),
        ("elapsed_ns", Json::from(elapsed_ns)),
    ])
}

/// One validated `park-metrics/v1` document, reduced to what the report
/// renders.
struct MetricsDoc {
    path: String,
    source: String,
    policy: String,
    config: String,
    threads: String,
    counters: park_engine::StatCounters,
    elapsed_ns: u64,
    rules: Vec<(String, u64, u64)>,
    resolutions: Vec<(String, String, u64)>,
    replays_served: u64,
    divergences: u64,
}

fn require_u64(totals: &Json, key: &str, path: &str) -> Result<u64, String> {
    totals
        .get(key)
        .and_then(Json::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("{path}: totals.{key} missing or not a non-negative integer"))
}

fn load_metrics_doc(path: &str) -> Result<MetricsDoc, String> {
    let doc = park_json::parse(&read_file(path)?).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("park-metrics/v1") => {}
        Some(other) => return Err(format!("{path}: unsupported schema `{other}`")),
        None => return Err(format!("{path}: missing `schema` field")),
    }
    let totals = doc
        .get("totals")
        .ok_or_else(|| format!("{path}: missing `totals` object"))?;
    let counters =
        park_engine::StatCounters {
            gamma_steps: require_u64(totals, "gamma_steps", path)?,
            restarts: require_u64(totals, "restarts", path)?,
            conflicts_resolved: require_u64(totals, "conflicts_resolved", path)?,
            groundings_fired: require_u64(totals, "groundings_fired", path)?,
            blocked_instances: require_u64(totals, "blocked_instances", path)?,
            eval_tasks: require_u64(totals, "eval_tasks", path)?,
            replayed_steps: require_u64(totals, "replayed_steps", path)?,
            replay_divergence_step: match totals.get("replay_divergence_step") {
                None | Some(&Json::Null) => None,
                Some(v) => Some(v.as_i64().and_then(|n| u64::try_from(n).ok()).ok_or_else(
                    || format!("{path}: totals.replay_divergence_step must be an integer or null"),
                )?),
            },
            peak_marked_atoms: require_u64(totals, "peak_marked_atoms", path)?
                .try_into()
                .map_err(|_| format!("{path}: totals.peak_marked_atoms out of range"))?,
        };
    let elapsed_ns = require_u64(totals, "elapsed_ns", path)?;
    let str_of = |v: Option<&Json>| v.and_then(Json::as_str).unwrap_or("-").to_string();
    let options = doc.get("options");
    let (config, threads) = match options {
        Some(o) => {
            let requested = o
                .get("requested_threads")
                .and_then(Json::as_i64)
                .unwrap_or(1);
            let effective = o
                .get("effective_threads")
                .and_then(Json::as_i64)
                .unwrap_or(requested);
            let threads = if effective < requested {
                format!("{requested}→{effective} (oversubscribed)")
            } else {
                requested.to_string()
            };
            let warm = if o.get("warm_restarts").and_then(Json::as_bool) == Some(false) {
                "cold"
            } else {
                "warm"
            };
            (
                format!(
                    "{}/{}/{warm}",
                    str_of(o.get("evaluation")),
                    str_of(o.get("scope")),
                ),
                threads,
            )
        }
        None => ("-".to_string(), "-".to_string()),
    };
    let rules = doc
        .get("rules")
        .and_then(Json::as_array)
        .map(|rules| {
            rules
                .iter()
                .map(|r| {
                    (
                        str_of(r.get("rule")),
                        r.get("fired").and_then(Json::as_i64).unwrap_or(0) as u64,
                        r.get("blocked").and_then(Json::as_i64).unwrap_or(0) as u64,
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let resolutions = doc
        .get("restarts")
        .and_then(Json::as_array)
        .map(|restarts| {
            restarts
                .iter()
                .flat_map(|r| {
                    r.get("resolutions")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(|res| {
                            (
                                str_of(res.get("atom")),
                                str_of(res.get("resolution")),
                                res.get("newly_blocked").and_then(Json::as_i64).unwrap_or(0) as u64,
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect()
        })
        .unwrap_or_default();
    let (replays_served, divergences) = doc
        .get("replays")
        .and_then(Json::as_array)
        .map(|replays| {
            (
                replays
                    .iter()
                    .map(|r| r.get("served").and_then(Json::as_i64).unwrap_or(0) as u64)
                    .sum(),
                replays
                    .iter()
                    .filter(|r| !matches!(r.get("divergence_step"), None | Some(&Json::Null)))
                    .count() as u64,
            )
        })
        .unwrap_or((0, 0));
    Ok(MetricsDoc {
        path: path.to_string(),
        source: str_of(doc.get("source")),
        policy: str_of(doc.get("policy")),
        config,
        threads,
        counters,
        elapsed_ns,
        rules,
        resolutions,
        replays_served,
        divergences,
    })
}

fn cmd_report(args: Vec<String>) -> Result<(), String> {
    let mut files = Vec::new();
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().ok_or("--out requires a value")?),
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("usage: park report <metrics.json>... [--out <file>]".into());
    }
    let docs = files
        .iter()
        .map(|f| load_metrics_doc(f))
        .collect::<Result<Vec<_>, _>>()?;

    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "# PARK run-metrics report");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "(generated by `park report` from {} park-metrics/v1 document{})",
        docs.len(),
        if docs.len() == 1 { "" } else { "s" },
    );
    let _ = writeln!(md);
    let _ = writeln!(md, "## Totals");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| file | source | policy | config | threads | steps | restarts | conflicts | fired | blocked | tasks | replayed | peak | elapsed ms |"
    );
    let _ = writeln!(
        md,
        "|------|--------|--------|--------|---------|-------|----------|-----------|-------|---------|-------|----------|------|------------|"
    );
    let mut total = park_engine::StatCounters::default();
    let mut total_ns: u64 = 0;
    for d in &docs {
        let c = &d.counters;
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2} |",
            d.path,
            d.source,
            d.policy,
            d.config,
            d.threads,
            c.gamma_steps,
            c.restarts,
            c.conflicts_resolved,
            c.groundings_fired,
            c.blocked_instances,
            c.eval_tasks,
            c.replayed_steps,
            c.peak_marked_atoms,
            d.elapsed_ns as f64 / 1e6,
        );
        total.absorb(c);
        total_ns = total_ns.saturating_add(d.elapsed_ns);
    }
    if docs.len() > 1 {
        let _ = writeln!(
            md,
            "| **all** | | | | | {} | {} | {} | {} | {} | {} | {} | {} | {:.2} |",
            total.gamma_steps,
            total.restarts,
            total.conflicts_resolved,
            total.groundings_fired,
            total.blocked_instances,
            total.eval_tasks,
            total.replayed_steps,
            total.peak_marked_atoms,
            total_ns as f64 / 1e6,
        );
    }

    let mut per_rule: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for d in &docs {
        for (rule, fired, blocked) in &d.rules {
            let e = per_rule.entry(rule.clone()).or_insert((0, 0));
            e.0 += fired;
            e.1 += blocked;
        }
    }
    if !per_rule.is_empty() {
        let _ = writeln!(md);
        let _ = writeln!(md, "## Per-rule firings");
        let _ = writeln!(md);
        let _ = writeln!(md, "| rule | fired | blocked groundings |");
        let _ = writeln!(md, "|------|-------|--------------------|");
        for (rule, (fired, blocked)) in &per_rule {
            let _ = writeln!(md, "| {rule} | {fired} | {blocked} |");
        }
    }

    let mut causes: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for d in &docs {
        for (atom, resolution, newly) in &d.resolutions {
            let e = causes
                .entry((atom.clone(), resolution.clone()))
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += newly;
        }
    }
    if !causes.is_empty() {
        let _ = writeln!(md);
        let _ = writeln!(md, "## Restart causes");
        let _ = writeln!(md);
        let _ = writeln!(md, "| conflict atom | resolution | times | newly blocked |");
        let _ = writeln!(md, "|---------------|------------|-------|---------------|");
        for ((atom, resolution), (times, newly)) in &causes {
            let _ = writeln!(md, "| `{atom}` | {resolution} | {times} | {newly} |");
        }
    }

    let served: u64 = docs.iter().map(|d| d.replays_served).sum();
    let diverged: u64 = docs.iter().map(|d| d.divergences).sum();
    if served > 0 || total.replayed_steps > 0 {
        let _ = writeln!(md);
        let _ = writeln!(md, "## Replay savings");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "{} of {} Γ steps served from the warm-restart log instead of \
             evaluated live ({} replay{} diverged).",
            total.replayed_steps,
            total.gamma_steps + total.restarts,
            diverged,
            if diverged == 1 { "" } else { "s" },
        );
    }

    match out_path {
        Some(path) => {
            std::fs::write(&path, &md).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{md}"),
    }
    Ok(())
}
