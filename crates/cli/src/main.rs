//! `park` — command-line driver for the PARK active-rule engine.
//!
//! ```text
//! park run <program.park> [--db <data.facts>] [--updates <tx.updates>]
//!          [--policy <name>] [--scope all|one] [--eval naive|semi]
//!          [--threads <n>] [--cold-restarts] [--trace] [--trace-json <f>]
//!          [--stats] [--snapshot <out.json>]
//! park check <program.park>
//! park analyze <program.park> [--db <data.facts>]
//! park query '<body>' [--db <data.facts>]
//! park repl <program.park> [--db <data.facts>] [--policy <name>]
//! park baseline <naive|immediate> <program.park> [--db <data.facts>] ...
//! park workload <list|name> [--out <dir>] [generator options]
//! ```
//!
//! Policies: `inertia` (default), `anti-inertia`, `prefer-insert`,
//! `prefer-delete`, `priority`, `specificity`, `transactions-win`,
//! `random[:seed]`, and `interactive` (prompts on stdin: i/d).
//! Sample inputs live in `examples/data/`.

use park_baselines::{immediate_fire, naive_mark_eliminate, ImmediateConfig, ImmediateResult};
use park_engine::{Engine, EngineOptions, EvaluationMode, ResolutionScope};
use park_policies::{parse_answer, CallbackOracle, ConflictResolver, Interactive};
use park_storage::{FactStore, Snapshot, UpdateSet, Vocabulary};
use park_syntax::{check_program, parse_program};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

mod repl;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("park: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => cmd_run(it.collect(), false),
        Some("check") => cmd_check(it.collect()),
        Some("analyze") => cmd_analyze(it.collect()),
        Some("repl") => cmd_repl(it.collect()),
        Some("query") => cmd_query(it.collect()),
        Some("baseline") => cmd_baseline(it.collect()),
        Some("workload") => cmd_workload(it.collect()),
        Some("fuzz") => cmd_fuzz(it.collect()),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `park help`)")),
    }
}

const HELP: &str = "\
park - the PARK semantics for active rules (EDBT 1996)

USAGE:
  park run <program.park> [OPTIONS]      evaluate PARK(D, P, U)
  park check <program.park>              parse + safety-check a program
  park analyze <program.park>            dependency/recursion/conflict report
  park repl <program.park> [--db <f>]    interactive transactional session
  park query '<body>' --db <data.facts>  conjunctive query over a database
  park baseline <naive|immediate> <program.park> [OPTIONS]
  park workload <list|name> [--out DIR]  emit a generated workload
  park fuzz [--seed N] [--cases K]       differential-test the engine against
                                         the paper-literal oracle
  park help

OPTIONS (run/baseline):
  --db <file>         facts file for the database instance D (default: empty)
  --updates <file>    transaction updates U, e.g. `+q(b). -p(a).`
  --policy <name>     inertia | anti-inertia | prefer-insert | prefer-delete |
                      priority | specificity | transactions-win |
                      random[:seed] | interactive        (default: inertia)
  --scope <all|one>   conflicts resolved per restart     (default: all)
  --eval <naive|semi> grounding enumeration strategy     (default: naive)
  --threads <n>       evaluate each step on n threads with a deterministic
                      ordered merge: identical results
                      (default: no pool, single-threaded)
  --cold-restarts     re-run every step cold after a conflict instead of
                      replaying the previous run's firing log (diagnostic;
                      results are identical either way)
  --trace             print the paper-style step listing
  --trace-json <file> write the trace as JSON events
  --stats             print run statistics
  --snapshot <file>   write the result database as JSON
";

#[derive(Default)]
struct RunArgs {
    program: Option<String>,
    db: Option<String>,
    updates: Option<String>,
    policy: String,
    scope: ResolutionScope,
    evaluation: EvaluationMode,
    threads: Option<usize>,
    cold_restarts: bool,
    trace: bool,
    trace_json: Option<String>,
    stats: bool,
    snapshot: Option<String>,
}

fn parse_run_args(args: Vec<String>) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        policy: "inertia".into(),
        ..RunArgs::default()
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--db" => out.db = Some(grab("--db")?),
            "--updates" => out.updates = Some(grab("--updates")?),
            "--policy" => out.policy = grab("--policy")?,
            "--scope" => {
                out.scope = match grab("--scope")?.as_str() {
                    "all" => ResolutionScope::All,
                    "one" => ResolutionScope::One,
                    other => return Err(format!("unknown scope `{other}`")),
                }
            }
            "--eval" => {
                out.evaluation = match grab("--eval")?.as_str() {
                    "naive" => EvaluationMode::Naive,
                    "semi" | "semi-naive" | "seminaive" => EvaluationMode::SemiNaive,
                    other => return Err(format!("unknown evaluation mode `{other}`")),
                }
            }
            "--threads" => {
                let raw = grab("--threads")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{raw}`"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                out.threads = Some(n);
            }
            "--cold-restarts" => out.cold_restarts = true,
            "--trace" => out.trace = true,
            "--trace-json" => out.trace_json = Some(grab("--trace-json")?),
            "--stats" => out.stats = true,
            "--snapshot" => out.snapshot = Some(grab("--snapshot")?),
            other if !other.starts_with("--") && out.program.is_none() => {
                out.program = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(out)
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_session(
    a: &RunArgs,
) -> Result<(Arc<Vocabulary>, park_syntax::Program, FactStore, UpdateSet), String> {
    let program_path = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let program_src = read_file(program_path)?;
    let program = parse_program(&program_src)
        .map_err(|e| format!("in {program_path}:{}\n{}", e.span, e.render(&program_src)))?;
    check_program(&program).map_err(|errs| {
        errs.iter()
            .map(|e| e.render(&program_src))
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    let vocab = Vocabulary::new();
    let db = match &a.db {
        Some(path) => FactStore::from_source(Arc::clone(&vocab), &read_file(path)?)
            .map_err(|e| e.to_string())?,
        None => FactStore::new(Arc::clone(&vocab)),
    };
    let updates = match &a.updates {
        Some(path) => {
            UpdateSet::from_source(&vocab, &read_file(path)?).map_err(|e| e.to_string())?
        }
        None => UpdateSet::empty(),
    };
    Ok((vocab, program, db, updates))
}

/// The stdin-backed interactive policy.
fn interactive_policy() -> impl ConflictResolver {
    Interactive::new(CallbackOracle(|prompt: &str| {
        let stdin = std::io::stdin();
        loop {
            eprint!("conflict {prompt}\nresolve [i]nsert / [d]elete? ");
            std::io::stderr().flush().ok();
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {
                    if let Some(r) = parse_answer(&line) {
                        return Some(r);
                    }
                    eprintln!("unrecognized answer {line:?}");
                }
            }
        }
    }))
}

fn make_policy(name: &str) -> Result<Box<dyn ConflictResolver>, String> {
    if name == "interactive" {
        return Ok(Box::new(interactive_policy()));
    }
    park_policies::by_name(name).ok_or_else(|| format!("unknown policy `{name}`"))
}

fn cmd_run(args: Vec<String>, _baseline: bool) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let (vocab, program, db, updates) = load_session(&a)?;
    let options = EngineOptions {
        trace: a.trace || a.trace_json.is_some(),
        scope: a.scope,
        evaluation: a.evaluation,
        parallelism: a.threads,
        warm_restarts: !a.cold_restarts,
        ..EngineOptions::default()
    };
    let engine = Engine::with_options(vocab, &program, options).map_err(|e| e.to_string())?;
    let mut policy = make_policy(&a.policy)?;
    let out = engine
        .run(&db, &updates, policy.as_mut())
        .map_err(|e| e.to_string())?;
    if a.trace {
        println!("{}", out.trace.render());
    }
    if let Some(path) = &a.trace_json {
        std::fs::write(path, out.trace.to_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!("{}", out.database.to_source().trim_end());
    if a.stats {
        eprintln!("{}", out.stats.summary());
        // Report the *effective* configuration: no --threads means no
        // thread pool, which behaves like one thread.
        match a.threads {
            None | Some(1) => eprintln!("threads=1 (no pool)"),
            Some(n) => eprintln!("threads={n}"),
        }
        let blocked = out.blocked_display();
        if !blocked.is_empty() {
            eprintln!("blocked: {}", blocked.join(", "));
        }
    }
    if let Some(path) = &a.snapshot {
        let json = Snapshot::of(&out.database)
            .to_json()
            .map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

fn cmd_check(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let path = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let src = read_file(path)?;
    let program =
        parse_program(&src).map_err(|e| format!("in {path}:{}\n{}", e.span, e.render(&src)))?;
    check_program(&program).map_err(|errs| {
        errs.iter()
            .map(|e| e.render(&src))
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    println!("{path}: {} rules, safe", program.len());
    Ok(())
}

fn cmd_analyze(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let path = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let src = read_file(path)?;
    let program = parse_program(&src).map_err(|e| e.to_string())?;
    let compiled = park_engine::CompiledProgram::compile(Vocabulary::new(), &program)
        .map_err(|e| e.to_string())?;
    let report = park_engine::analysis::report(&compiled);
    println!("{path}:");
    println!("  rules          : {}", report.rules);
    println!("  predicates     : {}", report.preds);
    println!(
        "  recursive      : {}",
        if report.recursive.is_empty() {
            "-".into()
        } else {
            report.recursive.join(", ")
        }
    );
    println!(
        "  stratified     : {}",
        if report.stratified { "yes" } else { "no" }
    );
    if report.conflicts.is_empty() {
        println!("  conflict pairs : none (statically conflict-free)");
    } else {
        println!("  conflict pairs :");
        for (ins, del, pred) in &report.conflicts {
            println!("    {ins} (+{pred}) vs {del} (-{pred})");
        }
    }
    // With a database, probe whether the result is policy-sensitive.
    if let Some(db_path) = &a.db {
        let vocab = Arc::clone(compiled.vocab());
        let db = FactStore::from_source(vocab, &read_file(db_path)?).map_err(|e| e.to_string())?;
        let engine =
            Engine::new(Arc::clone(compiled.vocab()), &program).map_err(|e| e.to_string())?;
        match park_engine::confluence_probe(&engine, &db).map_err(|e| e.to_string())? {
            park_engine::Confluence::StaticallyConfluent => {
                println!("  confluence     : statically confluent (policy-independent)")
            }
            park_engine::Confluence::ProbablyConfluent { conflicts } => println!(
                "  confluence     : extreme policies agree on this database \
                 ({conflicts} conflicts probed)"
            ),
            park_engine::Confluence::PolicySensitive {
                only_with_insert,
                only_with_delete,
            } => {
                println!("  confluence     : POLICY-SENSITIVE on this database");
                if !only_with_insert.is_empty() {
                    println!("    only under insert: {}", only_with_insert.join(", "));
                }
                if !only_with_delete.is_empty() {
                    println!("    only under delete: {}", only_with_delete.join(", "));
                }
            }
        }
    }
    Ok(())
}

fn cmd_query(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let query_src = a.program.as_deref().ok_or("missing \"<body>\" argument")?;
    let vocab = Vocabulary::new();
    let db = match &a.db {
        Some(path) => FactStore::from_source(Arc::clone(&vocab), &read_file(path)?)
            .map_err(|e| e.to_string())?,
        None => FactStore::new(Arc::clone(&vocab)),
    };
    let q = park_engine::Query::parse(&vocab, query_src).map_err(|e| e.to_string())?;
    let rows = q.run_on_database(&db);
    if rows.is_empty() {
        println!("(no answers)");
    } else {
        for r in q.render_rows(&rows) {
            println!("{r}");
        }
    }
    Ok(())
}

fn cmd_repl(args: Vec<String>) -> Result<(), String> {
    let a = parse_run_args(args)?;
    let program = a
        .program
        .as_deref()
        .ok_or("missing <program.park> argument")?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    repl::run_repl(
        program,
        a.db.as_deref(),
        &a.policy,
        &mut stdin.lock(),
        &mut stdout.lock(),
    )
}

fn cmd_baseline(mut args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        return Err("usage: park baseline <naive|immediate> <program.park> ...".into());
    }
    let which = args.remove(0);
    let a = parse_run_args(args)?;
    let (vocab, program, db, updates) = load_session(&a)?;
    match which.as_str() {
        "naive" => {
            let compiled = park_engine::CompiledProgram::compile(vocab, &program)
                .map_err(|e| e.to_string())?;
            let out = naive_mark_eliminate(&compiled, &db, &updates, 1 << 22)
                .map_err(|e| e.to_string())?;
            println!("{}", out.database.to_source().trim_end());
            if a.stats {
                eprintln!(
                    "steps={} eliminated={}",
                    out.steps,
                    out.eliminated.join(",")
                );
            }
        }
        "immediate" => {
            if !updates.is_empty() {
                return Err("the immediate baseline does not support --updates".into());
            }
            let compiled = park_engine::CompiledProgram::compile(vocab, &program)
                .map_err(|e| e.to_string())?;
            let out = immediate_fire(&compiled, &db, ImmediateConfig::default());
            match &out {
                ImmediateResult::Converged { database, fires } => {
                    println!("{}", database.to_source().trim_end());
                    if a.stats {
                        eprintln!("converged after {fires} firings");
                    }
                }
                ImmediateResult::Diverged { fires, .. } => {
                    return Err(format!(
                        "immediate execution diverged after {fires} firings"
                    ));
                }
            }
        }
        other => return Err(format!("unknown baseline `{other}`")),
    }
    Ok(())
}

fn cmd_workload(args: Vec<String>) -> Result<(), String> {
    let mut name = None;
    let mut out_dir = ".".to_string();
    let mut n: usize = 50;
    let mut seed: u64 = 42;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = it.next().ok_or("--out requires a value")?,
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --n: {e}"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other if !other.starts_with("--") && name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let name = name.ok_or("usage: park workload <list|name> [--out DIR] [--n N] [--seed S]")?;
    let write = |stem: &str, ext: &str, contents: &str| -> Result<(), String> {
        let path = format!("{out_dir}/{stem}.{ext}");
        std::fs::write(&path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    match name.as_str() {
        "list" => {
            println!("irreflexive-graph  closure  chains  payroll  inventory  inventory-guards");
        }
        "irreflexive-graph" => {
            write(
                "irreflexive_graph",
                "park",
                &park_workloads::irreflexive_graph_program(),
            )?;
            write(
                "irreflexive_graph",
                "facts",
                &park_workloads::nodes_database(n),
            )?;
        }
        "closure" => {
            write(
                "closure",
                "park",
                &park_workloads::transitive_closure_program(),
            )?;
            write(
                "closure",
                "facts",
                &park_workloads::erdos_renyi_edges(n, 0.1, seed),
            )?;
        }
        "chains" => {
            let (p, f) = park_workloads::staggered_conflicts(n.min(64));
            write("chains", "park", &p)?;
            write("chains", "facts", &f)?;
        }
        "payroll" => {
            let cfg = park_workloads::PayrollConfig {
                employees: n,
                seed,
                ..Default::default()
            };
            let (facts, updates) = park_workloads::payroll_database(&cfg);
            write("payroll", "park", &park_workloads::payroll_program())?;
            write("payroll", "facts", &facts)?;
            write("payroll", "updates", &updates)?;
        }
        "inventory" => {
            let cfg = park_workloads::InventoryConfig {
                items: n,
                seed,
                ..Default::default()
            };
            write("inventory", "park", &park_workloads::inventory_program())?;
            write(
                "inventory",
                "facts",
                &park_workloads::inventory_database(&cfg),
            )?;
        }
        "inventory-guards" => {
            let cfg = park_workloads::InventoryConfig {
                items: n,
                seed,
                ..Default::default()
            };
            write(
                "inventory_guards",
                "park",
                &park_workloads::inventory_guard_program(),
            )?;
            write(
                "inventory_guards",
                "facts",
                &park_workloads::inventory_guard_database(&cfg),
            )?;
        }
        other => {
            return Err(format!(
                "unknown workload `{other}` (try `park workload list`)"
            ))
        }
    }
    Ok(())
}

fn cmd_fuzz(args: Vec<String>) -> Result<(), String> {
    let mut seed: u64 = 0;
    let mut cases: u64 = 100;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--cases" => {
                cases = it
                    .next()
                    .ok_or("--cases requires a value")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let progress_every = (cases / 10).max(1);
    let report = park_testkit::run_fuzz(
        seed,
        cases,
        park_testkit::OracleVariant::Faithful,
        |done, _| {
            if done % progress_every == 0 || done == cases {
                eprintln!("fuzz: {done}/{cases} cases checked");
            }
        },
    )
    .map_err(|f| {
        format!(
            "divergence on case seed {} ({}):\n  {}\nminimized reproducer \
             (rerun with `park fuzz --seed {} --cases 1`):\n{}",
            f.divergence.seed,
            f.divergence.config,
            f.divergence,
            f.divergence.seed,
            f.minimized.to_text()
        )
    })?;
    println!(
        "fuzz: {} cases, 0 divergences (seed {}, {} ground, {} with conflicts, \
         {} stratified cross-checks; 16 engine configs x {} policies per case)",
        report.cases,
        seed,
        report.ground_cases,
        report.conflict_cases,
        report.stratified_checks,
        park_testkit::POLICIES.len(),
    );
    Ok(())
}
