//! `park repl` — an interactive session over an [`ActiveDatabase`].
//!
//! ```text
//! park repl program.park [--db data.facts] [--policy inertia]
//! ```
//!
//! Each input line is either a transaction (signed ground atoms,
//! `+q(b). -p(a).`), a query (`?pred`), or a `:command`:
//!
//! ```text
//! :state            dump the current database
//! :settle           run the rules with no external updates
//! :policy <name>    switch the SELECT policy
//! :analyze          dependency/conflict report for the installed rules
//! :snapshot <file>  save the state as JSON
//! :restore <file>   load a JSON snapshot
//! :help             this text
//! :quit             exit
//! ```

use park::db::ActiveDatabase;
use park::policies::{self, ConflictResolver};
use park_storage::{FactStore, Snapshot, Vocabulary};
use park_syntax::parse_program;
use std::io::{BufRead, Write};

const REPL_HELP: &str = "\
transactions    +q(b). -p(a).        signed ground atoms, applied via PARK
queries         ?pred                all facts of a predicate
                ?- p(X), !q(X).      conjunctive query with bindings
:state          dump the current database
:settle         run the rules with no external updates
:policy <name>  switch SELECT policy (inertia, priority, ...)
:analyze        dependency/conflict report for the installed rules
:snapshot <f>   save state as JSON    :restore <f>   load JSON snapshot
:help           this text             :quit          exit
";

/// Run the REPL. Reads `input`, writes to `output` — injectable for tests;
/// the binary passes locked stdin/stdout.
pub fn run_repl(
    program_path: &str,
    db_path: Option<&str>,
    policy_name: &str,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> Result<(), String> {
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read `{program_path}`: {e}"))?;
    let program = parse_program(&src).map_err(|e| e.to_string())?;
    let vocab = Vocabulary::new();
    let initial = match db_path {
        Some(p) => {
            let facts =
                std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"))?;
            FactStore::from_source(vocab, &facts).map_err(|e| e.to_string())?
        }
        None => FactStore::new(vocab),
    };
    let mut db = ActiveDatabase::open(&program, initial).map_err(|e| e.to_string())?;
    let mut policy: Box<dyn ConflictResolver> =
        policies::by_name(policy_name).ok_or_else(|| format!("unknown policy `{policy_name}`"))?;

    let say = |s: &str, output: &mut dyn Write| writeln!(output, "{s}").map_err(|e| e.to_string());
    say(
        &format!(
            "park repl — {} rules installed, {} facts. :help for commands.",
            program.len(),
            db.state().len()
        ),
        output,
    )?;

    let mut line = String::new();
    loop {
        write!(output, "park> ").map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('?') {
            // `?pred` lists a predicate; `?- body` runs a conjunctive query.
            let rows = if let Some(body) = rest.strip_prefix('-') {
                match db.query_rows(body) {
                    Ok(rows) => rows,
                    Err(e) => {
                        say(&format!("error: {e}"), output)?;
                        continue;
                    }
                }
            } else {
                db.query(rest.trim())
            };
            if rows.is_empty() {
                say("(no answers)", output)?;
            } else {
                for r in rows {
                    say(&r, output)?;
                }
            }
            continue;
        }
        if let Some(cmd) = trimmed.strip_prefix(':') {
            let mut parts = cmd.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") | Some("exit") => return Ok(()),
                Some("help") => say(REPL_HELP, output)?,
                Some("state") => say(db.state().to_source().trim_end(), output)?,
                Some("settle") => match db.settle(policy.as_mut()) {
                    Ok(report) => say(&render_report(&report), output)?,
                    Err(e) => say(&format!("error: {e} (state unchanged)"), output)?,
                },
                Some("policy") => match parts.next().and_then(policies::by_name) {
                    Some(p) => {
                        policy = p;
                        say(&format!("policy: {}", policy.name()), output)?;
                    }
                    None => say("usage: :policy <name>", output)?,
                },
                Some("analyze") => {
                    let report = park_engine::analysis::report(db.engine().program());
                    say(
                        &format!(
                            "rules: {}  preds: {}  recursive: [{}]  stratified: {}  conflict pairs: {}",
                            report.rules,
                            report.preds,
                            report.recursive.join(", "),
                            report.stratified,
                            report.conflicts.len()
                        ),
                        output,
                    )?;
                }
                Some("snapshot") => match parts.next() {
                    Some(path) => {
                        let json = db.snapshot().to_json().map_err(|e| e.to_string())?;
                        match std::fs::write(path, json) {
                            Ok(()) => say(&format!("saved {path}"), output)?,
                            Err(e) => say(&format!("error: {e}"), output)?,
                        }
                    }
                    None => say("usage: :snapshot <file>", output)?,
                },
                Some("restore") => match parts.next() {
                    Some(path) => match std::fs::read_to_string(path)
                        .map_err(|e| e.to_string())
                        .and_then(|s| Snapshot::from_json(&s).map_err(|e| e.to_string()))
                        .and_then(|snap| db.restore(&snap).map_err(|e| e.to_string()))
                    {
                        Ok(()) => say(&format!("restored {path}"), output)?,
                        Err(e) => say(&format!("error: {e}"), output)?,
                    },
                    None => say("usage: :restore <file>", output)?,
                },
                other => say(
                    &format!("unknown command `:{}` (:help)", other.unwrap_or("")),
                    output,
                )?,
            }
            continue;
        }
        // Anything else is a transaction.
        match db.transact_source(trimmed, policy.as_mut()) {
            Ok(report) => say(&render_report(&report), output)?,
            Err(e) => say(&format!("error: {e} (state unchanged)"), output)?,
        }
    }
}

fn render_report(report: &park::db::TransactionReport) -> String {
    if report.is_noop() {
        return format!("tx{}: no changes", report.number);
    }
    let mut s = format!("tx{}:", report.number);
    for a in &report.added {
        s.push_str(&format!(" +{a}"));
    }
    for r in &report.removed {
        s.push_str(&format!(" -{r}"));
    }
    if !report.blocked.is_empty() {
        s.push_str(&format!("   [blocked: {}]", report.blocked.join(", ")));
    }
    s
}
