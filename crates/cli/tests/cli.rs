//! End-to-end tests of the `park` binary.

use std::path::PathBuf;
use std::process::Command;

fn park() -> Command {
    Command::new(env!("CARGO_BIN_EXE_park"))
}

fn write(dir: &std::path::Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("park-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn run_p1_prints_result() {
    let dir = tempdir("p1");
    let program = write(&dir, "p1.park", "p -> +q. p -> -a. q -> +a.");
    let facts = write(&dir, "d.facts", "p.");
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "p.\nq.");
}

#[test]
fn run_with_trace_and_stats() {
    let dir = tempdir("trace");
    let program = write(&dir, "p.park", "r1: p -> +q. r2: p -> -q.");
    let facts = write(&dir, "d.facts", "p.");
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--trace",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("inconsistent: q"), "{stdout}");
    assert!(stderr.contains("restarts=1"), "{stderr}");
}

#[test]
fn run_with_updates_and_policy() {
    let dir = tempdir("eca");
    let program = write(&dir, "p.park", "r1: p(X) -> -s(X).");
    let facts = write(&dir, "d.facts", "p(b).");
    let updates = write(&dir, "u.updates", "+s(b).");
    // transactions-win keeps the inserted s(b); inertia drops it.
    for (policy, expect_s) in [("transactions-win", true), ("inertia", false)] {
        let out = park()
            .args([
                "run",
                program.to_str().unwrap(),
                "--db",
                facts.to_str().unwrap(),
                "--updates",
                updates.to_str().unwrap(),
                "--policy",
                policy,
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout.contains("s(b)."),
            expect_s,
            "policy {policy}: {stdout}"
        );
    }
}

#[test]
fn check_reports_unsafe_rules() {
    let dir = tempdir("check");
    let bad = write(&dir, "bad.park", "p(X) -> +q(X, Y).");
    let out = park()
        .args(["check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("safety condition 1"));

    let good = write(&dir, "good.park", "p(X) -> +q(X).");
    let out = park()
        .args(["check", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 rules, safe"));
}

#[test]
fn snapshot_is_written() {
    let dir = tempdir("snap");
    let program = write(&dir, "p.park", "p -> +q.");
    let facts = write(&dir, "d.facts", "p.");
    let snap = dir.join("out.json");
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&snap).unwrap();
    assert!(json.contains("\"q\""), "{json}");
}

#[test]
fn baseline_naive_differs_from_run_on_p2() {
    let dir = tempdir("naive");
    let program = write(
        &dir,
        "p2.park",
        "p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.",
    );
    let facts = write(&dir, "d.facts", "p.");
    let park_out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let naive_out = park()
        .args([
            "baseline",
            "naive",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(park_out.status.success() && naive_out.status.success());
    let park_txt = String::from_utf8_lossy(&park_out.stdout);
    let naive_txt = String::from_utf8_lossy(&naive_out.stdout);
    assert!(!park_txt.contains("s."), "{park_txt}");
    assert!(naive_txt.contains("s."), "{naive_txt}");
}

#[test]
fn baseline_immediate_divergence_is_an_error() {
    let dir = tempdir("imm");
    let program = write(&dir, "p.park", "p, a -> -a. p, !a -> +a.");
    let facts = write(&dir, "d.facts", "p.");
    let out = park()
        .args([
            "baseline",
            "immediate",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverged"));
}

#[test]
fn workload_generation() {
    let dir = tempdir("wl");
    let out = park()
        .args([
            "workload",
            "payroll",
            "--n",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["payroll.park", "payroll.facts", "payroll.updates"] {
        assert!(dir.join(f).exists(), "missing {f}");
    }
    // The generated workload runs.
    let run = park()
        .args([
            "run",
            dir.join("payroll.park").to_str().unwrap(),
            "--db",
            dir.join("payroll.facts").to_str().unwrap(),
            "--updates",
            dir.join("payroll.updates").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
}

#[test]
fn repl_session_end_to_end() {
    use std::io::Write as _;
    use std::process::Stdio;
    let dir = tempdir("repl");
    let program = write(
        &dir,
        "p.park",
        "onleave: -active(X) -> +offboard(X).
         offb: offboard(X), payroll(X, S) -> -payroll(X, S).",
    );
    let facts = write(
        &dir,
        "d.facts",
        "active(a). payroll(a, 10). payroll(b, 20).",
    );
    let mut child = park()
        .args([
            "repl",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"?payroll\n-active(a).\n?payroll\n:analyze\n:state\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("payroll(a, 10)"), "{stdout}");
    assert!(
        stdout.contains("tx1: +offboard(a) -active(a) -payroll(a, 10)"),
        "{stdout}"
    );
    assert!(stdout.contains("rules: 2"), "{stdout}");
    assert!(stdout.contains("payroll(b, 20)."), "{stdout}");
}

#[test]
fn repl_rejects_bad_transactions_without_committing() {
    use std::io::Write as _;
    use std::process::Stdio;
    let dir = tempdir("repl2");
    let program = write(&dir, "p.park", "p(X) -> +q(X).");
    let mut child = park()
        .args(["repl", program.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"not an update\n+p(a).\n?q\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("q(a)"), "{stdout}");
}

#[test]
fn analyze_reports_structure() {
    let dir = tempdir("analyze");
    let program = write(
        &dir,
        "p.park",
        "base: edge(X, Y) -> +tc(X, Y). step: tc(X, Y), edge(Y, Z) -> +tc(X, Z).
         grow: p(X) -> +q(X). cut: p(X) -> -q(X).",
    );
    let out = park()
        .args(["analyze", program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recursive      : tc"), "{stdout}");
    assert!(stdout.contains("stratified     : yes"), "{stdout}");
    assert!(stdout.contains("grow (+q) vs cut (-q)"), "{stdout}");
}

#[test]
fn trace_json_is_written() {
    let dir = tempdir("tracejson");
    let program = write(&dir, "p.park", "r1: p -> +q. r2: p -> -q.");
    let facts = write(&dir, "d.facts", "p.");
    let json_path = dir.join("trace.json");
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--trace-json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"event\": \"conflict_resolved\""), "{json}");
    assert!(json.contains("\"policy\": \"inertia\""), "{json}");
}

#[test]
fn query_command_answers_conjunctive_queries() {
    let dir = tempdir("query");
    let facts = write(
        &dir,
        "d.facts",
        "emp(a). emp(b). active(a). payroll(a, 10). payroll(b, 200).",
    );
    let out = park()
        .args([
            "query",
            "?- emp(X), payroll(X, S), S > 100.",
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "X = b, S = 200"
    );
    // Unsafe query fails cleanly.
    let out = park()
        .args(["query", "!emp(X)", "--db", facts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn repl_conjunctive_query() {
    use std::io::Write as _;
    use std::process::Stdio;
    let dir = tempdir("replq");
    let program = write(&dir, "p.park", "p(X) -> +q(X).");
    let facts = write(&dir, "d.facts", "p(a). p(b). r(a).");
    let mut child = park()
        .args([
            "repl",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"?- p(X), !r(X).\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X = b"), "{stdout}");
}

#[test]
fn analyze_with_database_probes_confluence() {
    let dir = tempdir("confluence");
    let program = write(&dir, "p.park", "grow: p -> +q. cut: p -> -q.");
    let facts = write(&dir, "d.facts", "p.");
    let out = park()
        .args([
            "analyze",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("POLICY-SENSITIVE"), "{stdout}");
    assert!(stdout.contains("only under insert: q"), "{stdout}");
}

#[test]
fn analyze_with_database_reports_shard_stats() {
    let dir = tempdir("shard-stats");
    let program = write(&dir, "p.park", "e(X, Y) -> +r(X, Y).");
    let facts = write(&dir, "d.facts", "e(a, b). e(b, c). p.");
    let out = park()
        .args([
            "analyze",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Two nonempty relations; e/2 holds 2 facts × 2 columns × 4 bytes.
    assert!(
        stdout.contains("shards         : 2 relations, 3 facts, 16 encoded bytes"),
        "{stdout}"
    );
    assert!(
        stdout.contains("e/2: 2 facts, 16 bytes, 0 indexes"),
        "{stdout}"
    );
    assert!(
        stdout.contains("p/0: 1 facts, 0 bytes, 0 indexes"),
        "{stdout}"
    );
}

#[test]
fn threads_argument_is_validated() {
    let dir = tempdir("threads");
    let program = write(&dir, "p.park", "p -> +q.");
    let facts = write(&dir, "d.facts", "p.");
    for bad in ["0", "abc", "-1"] {
        let out = park()
            .args([
                "run",
                program.to_str().unwrap(),
                "--db",
                facts.to_str().unwrap(),
                "--threads",
                bad,
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "--threads {bad} must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("positive integer"),
            "--threads {bad}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // The stats report states the effective default: no pool, one thread.
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("threads=1 (no pool)"), "{stderr}");
    // And the help text no longer claims a numeric default of 1.
    let help = park().args(["help"]).output().unwrap();
    let help_text = String::from_utf8_lossy(&help.stdout);
    assert!(!help_text.contains("(default: 1)"), "{help_text}");
    assert!(
        help_text.contains("no pool, single-threaded"),
        "{help_text}"
    );
}

#[test]
fn cold_restarts_flag_matches_default_output() {
    let dir = tempdir("cold");
    let program = write(
        &dir,
        "p.park",
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
    );
    let facts = write(&dir, "d.facts", "p.");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--trace",
            "--stats",
        ];
        args.extend_from_slice(extra);
        park().args(&args).output().unwrap()
    };
    let warm = run(&[]);
    let cold = run(&["--cold-restarts"]);
    assert!(warm.status.success() && cold.status.success());
    // Database and trace are byte-identical; only the replay counter moves.
    park_testkit::compare::assert_identical_bytes(
        "warm vs cold restarts",
        "warm stdout",
        &warm.stdout,
        "cold stdout",
        &cold.stdout,
    );
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(warm_err.contains("replayed=4"), "{warm_err}");
    assert!(cold_err.contains("replayed=0"), "{cold_err}");
}

#[test]
fn fuzz_subcommand_reports_zero_divergences() {
    let out = park()
        .args(["fuzz", "--seed", "0", "--cases", "25"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("25 cases, 0 divergences"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("25/25 cases checked"), "{stderr}");
}

#[test]
fn fuzz_subcommand_rejects_bad_flags() {
    let out = park().args(["fuzz", "--seed"]).output().unwrap();
    assert!(!out.status.success());
    let out = park().args(["fuzz", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_arguments_are_rejected() {
    let out = park().args(["run", "x.park", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
    let out = park().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = park().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn run_metrics_writes_a_versioned_document() {
    let dir = tempdir("metrics");
    let program = write(
        &dir,
        "p.park",
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
    );
    let facts = write(&dir, "d.facts", "p.");
    let metrics = dir.join("m.json");
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&metrics).unwrap();
    assert!(doc.contains("\"schema\": \"park-metrics/v1\""), "{doc}");
    // §5 example under inertia: 2 restarts, divergence at step 3.
    assert!(doc.contains("\"restarts\": 2"), "{doc}");
    assert!(doc.contains("\"replay_divergence_step\": 3"), "{doc}");
    assert!(doc.contains("\"rule\": \"r4\""), "{doc}");
}

#[test]
fn report_aggregates_metrics_documents() {
    let dir = tempdir("report");
    let program = write(&dir, "p.park", "r1: p -> +q. r2: p -> -q.");
    let facts = write(&dir, "d.facts", "p.");
    let m1 = dir.join("m1.json");
    let m2 = dir.join("m2.json");
    for (policy, path) in [("inertia", &m1), ("prefer-insert", &m2)] {
        let out = park()
            .args([
                "run",
                program.to_str().unwrap(),
                "--db",
                facts.to_str().unwrap(),
                "--policy",
                policy,
                "--metrics",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let out = park()
        .args(["report", m1.to_str().unwrap(), m2.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# PARK run-metrics report"), "{stdout}");
    assert!(
        stdout.contains("from 2 park-metrics/v1 documents"),
        "{stdout}"
    );
    assert!(stdout.contains("| **all** |"), "{stdout}");
    assert!(stdout.contains("## Restart causes"), "{stdout}");
    assert!(stdout.contains("| `q` |"), "{stdout}");
}

#[test]
fn report_rejects_invalid_documents() {
    let dir = tempdir("badreport");
    let bad_schema = write(&dir, "bad1.json", "{\"schema\": \"something-else\"}");
    let out = park()
        .args(["report", bad_schema.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported schema"));

    let no_totals = write(&dir, "bad2.json", "{\"schema\": \"park-metrics/v1\"}");
    let out = park()
        .args(["report", no_totals.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("totals"));

    let not_json = write(&dir, "bad3.json", "not json at all");
    let out = park()
        .args(["report", not_json.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn fuzz_metrics_aggregate_is_reportable() {
    let dir = tempdir("fuzzmetrics");
    let metrics = dir.join("fuzz.json");
    let out = park()
        .args([
            "fuzz",
            "--seed",
            "0",
            "--cases",
            "5",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&metrics).unwrap();
    assert!(doc.contains("\"source\": \"fuzz\""), "{doc}");
    let out = park()
        .args(["report", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| fuzz |"), "{stdout}");
}

#[test]
fn oversubscribed_thread_requests_are_reported_clamped() {
    let dir = tempdir("clamp");
    let program = write(&dir, "p.park", "p -> +q.");
    let facts = write(&dir, "d.facts", "p.");
    let run = |threads: &str| {
        park()
            .args([
                "run",
                program.to_str().unwrap(),
                "--db",
                facts.to_str().unwrap(),
                "--threads",
                threads,
                "--stats",
            ])
            .output()
            .unwrap()
    };
    // A request no host can satisfy: the pool is clamped, the result and
    // the task decomposition (and hence the stats line) are unchanged.
    let big = run("4096");
    assert!(big.status.success());
    let stderr = String::from_utf8_lossy(&big.stderr);
    assert!(
        stderr.contains("threads=4096 (oversubscribed; pool clamped to host parallelism"),
        "{stderr}"
    );
    let sane = run("1");
    assert_eq!(big.stdout, sane.stdout);
}

#[test]
fn check_reports_all_errors_across_files() {
    let dir = tempdir("check-multi");
    let bad1 = write(&dir, "bad1.park", "p(X) -> +q(X, Y).");
    let bad2 = write(&dir, "bad2.park", "a(X), !b(Y) -> +c(X).");
    let good = write(&dir, "good.park", "p(X) -> +q(X).");
    let out = park()
        .args([
            "check",
            bad1.to_str().unwrap(),
            good.to_str().unwrap(),
            bad2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Both broken files are reported; the first does not mask the second.
    assert!(stderr.contains("bad1.park"), "{stderr}");
    assert!(stderr.contains("safety condition 1"), "{stderr}");
    assert!(stderr.contains("bad2.park"), "{stderr}");
    assert!(stderr.contains("safety condition 2"), "{stderr}");
    // The good file in the middle is still checked and reported safe.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("good.park: 1 rules, safe"), "{stdout}");
}

#[test]
fn lint_exit_codes_distinguish_clean_warnings_errors() {
    let dir = tempdir("lint-exit");
    let clean = write(&dir, "clean.park", "p(X), X < 5 -> +q(X).");
    let warny = write(&dir, "warny.park", "g: p(X) -> +q(X). c: p(X) -> -q(X).");
    let broken = write(&dir, "broken.park", "p(X) -> ");
    let code = |path: &std::path::Path| {
        park()
            .args(["lint", path.to_str().unwrap()])
            .output()
            .unwrap()
            .status
            .code()
    };
    assert_eq!(code(&clean), Some(0));
    assert_eq!(code(&warny), Some(1));
    assert_eq!(code(&broken), Some(2));
    // An unreadable file must not read as clean.
    let missing = dir.join("nope.park");
    assert_eq!(code(&missing), Some(2));
}

#[test]
fn lint_pragmas_suppress_down_to_clean() {
    let dir = tempdir("lint-allow");
    let program = write(
        &dir,
        "allowed.park",
        "%# allow(PARK001, PARK002)\n\
         g: p(X) -> +q(X).\n\
         %# allow(PARK002)\n\
         c: p(X) -> -q(X).\n",
    );
    let out = park()
        .args(["lint", program.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "suppressed lint should be clean"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 suppressed"), "{stdout}");
}

#[test]
fn lint_json_matches_golden() {
    // The fixture is linted from the tests directory so the `file` field in
    // the JSON stays a stable relative path.
    let tests_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests");
    let out = park()
        .current_dir(tests_dir)
        .args(["lint", "golden/lint.park", "--format", "json"])
        .output()
        .unwrap();
    let got = String::from_utf8_lossy(&out.stdout).to_string();
    let golden = std::path::Path::new(tests_dir).join("golden/lint.json");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_default();
    assert_eq!(
        got, want,
        "park-lint/v1 JSON output drifted from tests/golden/lint.json; \
         if the change is intentional, bless it with \
         `UPDATE_GOLDENS=1 cargo test -p park-cli lint_json_matches_golden`"
    );
}

#[test]
fn analyze_includes_lint_verdicts() {
    let dir = tempdir("analyze-lint");
    let program = write(
        &dir,
        "p.park",
        "grow: p(X), X < 5 -> +q(X). cut: p(X), X >= 5 -> -q(X).",
    );
    let out = park()
        .args(["analyze", program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The syntactic pair is reported, but the guards partition the space:
    // refinement certifies the program conflict-free.
    assert!(stdout.contains("grow (+q) vs cut (-q)"), "{stdout}");
    assert!(
        stdout.contains("certificate    : conflict-free"),
        "{stdout}"
    );
    // The deleting head keeps `cut` off the warm incremental path — the
    // shared lint pass surfaces that as a PARK009 info line.
    assert!(stdout.contains("info[PARK009]"), "{stdout}");
    assert!(stdout.contains("blocks incremental reuse"), "{stdout}");
}

#[test]
fn analyze_graph_dumps_condensation_and_strata() {
    let dir = tempdir("analyze-graph");
    let program = write(
        &dir,
        "g.park",
        "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). \
         flag(X), !mute(X) -> +alert(X).",
    );
    let graph = |extra: &[&str]| {
        let mut args = vec!["analyze", program.to_str().unwrap(), "--graph"];
        args.extend_from_slice(extra);
        let out = park().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let text = graph(&[]);
    let doc = park_json::parse(&text).expect("park-graph/v1 output must be valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("park-graph/v1"),
        "{text}"
    );
    assert_eq!(doc.get("stratified").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("max_stratum").unwrap().as_i64(), Some(1));
    // `alert` sits above the negated `mute`; the recursive `r` component
    // stays in stratum 0 with its positive self-edge.
    let preds = doc.get("predicates").unwrap().as_array().unwrap();
    let stratum_of = |name: &str| {
        preds
            .iter()
            .find(|p| p.get("name").unwrap().as_str() == Some(name))
            .and_then(|p| p.get("stratum").unwrap().as_i64())
            .unwrap()
    };
    assert_eq!(stratum_of("alert"), 1);
    assert_eq!(stratum_of("r"), 0);
    assert!(doc.get("offending").unwrap().as_array().unwrap().is_empty());
    // The dump is deterministic: a second run is byte-identical.
    assert_eq!(text, graph(&[]));
    // And the DOT rendering is a digraph with stratum clusters.
    let dot = graph(&["--dot"]);
    assert!(dot.starts_with("digraph park {"), "{dot}");
    assert!(dot.contains("cluster_stratum_1"), "{dot}");
    assert!(dot.contains("\"alert\" -> \"mute\" [style=dashed"), "{dot}");

    // An unstratified program localizes the offending cycle with rule spans.
    let bad = write(&dir, "bad.park", "step: move(X, Y), !win(Y) -> +win(X).");
    let out = park()
        .args(["analyze", bad.to_str().unwrap(), "--graph"])
        .output()
        .unwrap();
    let doc = park_json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("stratified").unwrap().as_bool(), Some(false));
    let off = doc.get("offending").unwrap().as_array().unwrap();
    assert_eq!(off.len(), 1);
    assert_eq!(off[0].get("from").unwrap().as_str(), Some("win"));
    assert_eq!(off[0].get("kind").unwrap().as_str(), Some("negative"));
    let rules = off[0].get("rules").unwrap().as_array().unwrap();
    assert_eq!(rules[0].get("rule").unwrap().as_str(), Some("step"));
    assert_eq!(rules[0].get("line").unwrap().as_i64(), Some(1));
}

#[test]
fn eval_compiled_matches_semi_and_analyze_dumps_the_plan() {
    let dir = tempdir("compiled");
    let program = write(
        &dir,
        "tc.park",
        "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
    );
    let facts = write(&dir, "d.facts", "edge(a, b). edge(b, c). edge(c, a).");
    let run = |eval: &str| {
        let out = park()
            .args([
                "run",
                program.to_str().unwrap(),
                "--db",
                facts.to_str().unwrap(),
                "--eval",
                eval,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--eval {eval}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let semi = run("semi");
    let compiled = run("compiled");
    assert_eq!(semi, compiled, "committed results must be byte-identical");
    assert!(compiled.contains("tc(a, c)."), "{compiled}");

    let out = park()
        .args([
            "analyze",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--plan",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lowered program: 2 rules"), "{stdout}");
    // Three edges sit below the cost model's index threshold: every
    // base access is a scan, none a probe.
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("0 cost-model index picks"), "{stdout}");
}
