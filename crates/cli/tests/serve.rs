//! End-to-end tests of `park serve` — the park-serve/v1 protocol.
//!
//! The heart of the suite is the differential battery: a stream of
//! transactions through one live serve session must produce deltas
//! byte-identical to the same transactions applied as chained one-shot
//! `park run` processes, and to the paper-literal testkit oracle —
//! across pinned cases, regression-corpus cases, and generated fuzz
//! cases, under two policies and both evaluation modes.

use park_json::Json;
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

fn park() -> Command {
    Command::new(env!("CARGO_BIN_EXE_park"))
}

fn write(dir: &Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("park-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run one full `park serve` session over stdin/stdout.
fn serve_session(extra_args: &[&str], input: &str) -> String {
    let mut child = park()
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Feed stdin from a thread: a long session's output would otherwise
    // fill the pipe while we are still writing requests.
    let mut stdin = child.stdin.take().unwrap();
    let input = input.to_string();
    let feeder = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
    });
    let out = child.wait_with_output().unwrap();
    feeder.join().unwrap();
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// One transaction's observable effect, rendered and sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Delta {
    added: Vec<String>,
    removed: Vec<String>,
    blocked: Vec<String>,
}

fn str_list(doc: &Json, key: &str) -> Vec<String> {
    doc.get(key)
        .and_then(|j| j.as_array())
        .unwrap_or(&[])
        .iter()
        .map(|j| j.as_str().unwrap().to_string())
        .collect()
}

/// Parse a serve transcript's `delta` frames, in order.
fn serve_deltas(transcript: &str) -> Vec<Delta> {
    transcript
        .lines()
        .map(|l| park_json::parse(l).unwrap_or_else(|e| panic!("bad frame `{l}`: {e}")))
        .filter(|doc| doc.get("frame").and_then(|j| j.as_str()) == Some("delta"))
        .map(|doc| Delta {
            added: str_list(&doc, "added"),
            removed: str_list(&doc, "removed"),
            blocked: str_list(&doc, "blocked"),
        })
        .collect()
}

/// A fact set parsed from `.facts` source (initial facts or `park run`
/// stdout), rendered the way serve deltas render facts.
fn fact_set(source: &str) -> std::collections::BTreeSet<String> {
    use park::storage::{FactStore, Vocabulary};
    let vocab = Vocabulary::new();
    let db = FactStore::from_source(Arc::clone(&vocab), source).unwrap();
    let (all, _) = FactStore::new(Arc::clone(&vocab)).diff(&db);
    all.iter().map(|(p, t)| vocab.display_fact(*p, t)).collect()
}

/// Apply `updates` to the facts in `db_src` via a one-shot `park run`
/// process; returns the result database source.
fn one_shot_run(
    dir: &Path,
    program: &Path,
    db_src: &str,
    updates: &str,
    policy: &str,
    eval: &str,
) -> String {
    let db = write(dir, "chain.facts", db_src);
    let mut cmd = park();
    cmd.args([
        "run",
        program.to_str().unwrap(),
        "--db",
        db.to_str().unwrap(),
    ]);
    if !updates.is_empty() {
        let u = write(dir, "chain.updates", updates);
        cmd.args(["--updates", u.to_str().unwrap()]);
    }
    cmd.args(["--policy", policy, "--eval", eval]);
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// A differential scenario: initial facts, then a transaction stream.
struct Scenario {
    name: String,
    program: String,
    facts: String,
    updates: Vec<String>,
}

fn pinned_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "payroll".into(),
            program: "onleave: -active(X) -> +offboard(X).
                      offb: offboard(X), payroll(X, S) -> -payroll(X, S)."
                .into(),
            facts: "active(a). active(b). payroll(a, 10). payroll(b, 20).".into(),
            updates: vec![
                "-active(a).".into(),
                "+active(c). +payroll(c, 30).".into(),
                "-active(b). -active(c).".into(),
                String::new(), // settle
            ],
        },
        Scenario {
            name: "conflict".into(),
            program: "r1: p(X) -> +q(X). r2: p(X) -> -q(X). r3: +q(X) -> +r(X).".into(),
            facts: "p(a).".into(),
            updates: vec![
                "+p(b).".into(),
                "+q(a).".into(),
                "-p(a).".into(),
                String::new(),
            ],
        },
        Scenario {
            name: "recursive".into(),
            program: "t: edge(X, Y), path(Y) -> +path(X).".into(),
            facts: "edge(a, b). edge(b, c). edge(c, d).".into(),
            updates: vec![
                "+path(d).".into(),
                "-edge(a, b). +edge(d, a).".into(),
                String::new(),
            ],
        },
    ]
}

/// Corpus and fuzz cases become scenarios: half the facts seed the
/// database, the rest arrive one per transaction, then a final settle.
fn case_scenario(name: String, case: &park_testkit::Case) -> Scenario {
    let split = case.facts.len() / 2;
    let facts = case.facts[..split].join(" ");
    let mut updates: Vec<String> = case.facts[split..]
        .iter()
        .map(|f| format!("+{f}"))
        .collect();
    updates.push(String::new());
    Scenario {
        name,
        program: case.rules.join("\n"),
        facts,
        updates,
    }
}

fn corpus_scenarios() -> Vec<Scenario> {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("../testkit/tests/corpus");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|path| {
            let case = park_testkit::Case::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
            case_scenario(
                path.file_stem().unwrap().to_string_lossy().into_owned(),
                &case,
            )
        })
        .collect()
}

fn fuzz_scenarios() -> Vec<Scenario> {
    (1..=6)
        .map(|seed| case_scenario(format!("fuzz-{seed}"), &park_testkit::generate(seed)))
        .collect()
}

/// The oracle's view of the same transaction stream, computed in-process
/// with the paper-literal evaluator.
fn oracle_deltas(scenario: &Scenario, policy: &str) -> Vec<Delta> {
    use park::engine::{CompiledProgram, ResolutionScope};
    use park::storage::{FactStore, UpdateSet, Vocabulary};
    let vocab = Vocabulary::new();
    let program = park::syntax::parse_program(&scenario.program).unwrap();
    let compiled = CompiledProgram::compile(Arc::clone(&vocab), &program).unwrap();
    let mut db = FactStore::from_source(Arc::clone(&vocab), &scenario.facts).unwrap();
    let mut deltas = Vec::new();
    for u in &scenario.updates {
        let updates = UpdateSet::from_source(&vocab, u).unwrap();
        let p_u = compiled.with_updates(&updates);
        let mut pol = park::policies::by_name(policy).unwrap();
        let run = park_testkit::oracle_evaluate(
            &p_u,
            &db,
            ResolutionScope::All,
            pol.as_mut(),
            park_testkit::OracleVariant::Faithful,
        )
        .unwrap();
        let render = |xs: &[(park::storage::PredId, park::storage::Tuple)]| -> Vec<String> {
            let mut rows: Vec<String> = xs.iter().map(|(p, t)| vocab.display_fact(*p, t)).collect();
            rows.sort();
            rows
        };
        let (added, removed) = db.diff(&run.outcome.database);
        deltas.push(Delta {
            added: render(&added),
            removed: render(&removed),
            blocked: run.outcome.blocked_display(),
        });
        db = run.outcome.database;
    }
    deltas
}

/// The chained one-shot view: each transaction is its own `park run`
/// process whose output database feeds the next.
fn chained_deltas(dir: &Path, scenario: &Scenario, policy: &str, eval: &str) -> Vec<Delta> {
    let program = write(dir, "chain.park", &scenario.program);
    let mut db_src = scenario.facts.clone();
    let mut deltas = Vec::new();
    for u in &scenario.updates {
        let next = one_shot_run(dir, &program, &db_src, u, policy, eval);
        let before = fact_set(&db_src);
        let after = fact_set(&next);
        let mut added: Vec<String> = after.difference(&before).cloned().collect();
        let mut removed: Vec<String> = before.difference(&after).cloned().collect();
        added.sort();
        removed.sort();
        deltas.push(Delta {
            added,
            removed,
            // One-shot runs print blocked instances only under --stats;
            // the comparison against the oracle covers that column.
            blocked: Vec::new(),
        });
        db_src = next;
    }
    deltas
}

fn serve_scenario_deltas(scenario: &Scenario, policy: &str, eval: &str) -> Vec<Delta> {
    let mut lines = vec![Json::object([
        ("op", Json::str("create")),
        ("db", Json::str("d")),
        ("program", Json::str(&scenario.program)),
        ("facts", Json::str(&scenario.facts)),
        ("policy", Json::str(policy)),
        ("eval", Json::str(eval)),
    ])
    .to_compact()];
    for u in &scenario.updates {
        lines.push(
            Json::object([
                ("op", Json::str("transact")),
                ("db", Json::str("d")),
                ("updates", Json::str(u)),
            ])
            .to_compact(),
        );
    }
    lines.push(r#"{"op":"shutdown"}"#.into());
    lines.push(String::new());
    let transcript = serve_session(&[], &lines.join("\n"));
    serve_deltas(&transcript)
}

#[test]
fn served_streams_match_chained_one_shots_and_the_oracle() {
    let dir = tempdir("differential");
    let mut scenarios = pinned_scenarios();
    scenarios.extend(corpus_scenarios());
    scenarios.extend(fuzz_scenarios());
    assert!(scenarios.len() >= 12, "want a real battery");
    for scenario in &scenarios {
        for policy in ["inertia", "prefer-insert"] {
            let oracle = oracle_deltas(scenario, policy);
            for eval in ["naive", "semi"] {
                let served = serve_scenario_deltas(scenario, policy, eval);
                let chained = chained_deltas(&dir, scenario, policy, eval);
                assert_eq!(
                    served.len(),
                    scenario.updates.len(),
                    "{}/{policy}/{eval}: every transaction must answer with a delta",
                    scenario.name
                );
                for (k, ((s, c), o)) in served.iter().zip(&chained).zip(&oracle).enumerate() {
                    assert_eq!(
                        (&s.added, &s.removed),
                        (&c.added, &c.removed),
                        "{}/{policy}/{eval}: serve vs chained one-shots diverge at U{}",
                        scenario.name,
                        k + 1
                    );
                    assert_eq!(
                        (&s.added, &s.removed, &s.blocked),
                        (&o.added, &o.removed, &o.blocked),
                        "{}/{policy}/{eval}: serve vs oracle diverge at U{}",
                        scenario.name,
                        k + 1
                    );
                }
            }
        }
    }
}

#[test]
fn golden_session_transcript_is_byte_stable_across_thread_counts() {
    let input = include_str!("golden/serve_session.ndjson");
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_session.golden");
    let one = serve_session(&["--threads", "1"], input);
    let four = serve_session(&["--threads", "4"], input);
    assert_eq!(
        one, four,
        "the transcript must not depend on the thread count"
    );
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::write(&golden_path, &one).unwrap();
    }
    let golden =
        std::fs::read_to_string(&golden_path).expect("missing golden; bless with UPDATE_GOLDENS=1");
    assert_eq!(
        one,
        golden,
        "transcript drifted from {} (bless with UPDATE_GOLDENS=1)",
        golden_path.display()
    );
}

/// The acceptance scenario from the issue: two databases, 50+
/// transactions each through one resident session with a mid-stream
/// program reload, byte-identical to chained one-shot runs, with
/// vocabulary accounting that shrinks at the reload.
#[test]
fn multi_tenant_session_matches_chained_runs_through_a_reload() {
    let dir = tempdir("tenant");
    let program_v1 = "onx: -item(X) -> +seen(X).";
    let program_v2 = "onx: -item(X) -> +seen(X).\nlog: seen(X) -> +logged(X).";
    let program_b = "r: -job(X) -> +done(X).";

    // Interleaved serve session: a and b alternate; a reloads at its
    // midpoint. Transactions intern a throwaway tag constant each time
    // so the reload visibly compacts the vocabulary.
    let mut lines = vec![
        Json::object([
            ("op", Json::str("create")),
            ("db", Json::str("a")),
            ("program", Json::str(program_v1)),
        ])
        .to_compact(),
        Json::object([
            ("op", Json::str("create")),
            ("db", Json::str("b")),
            ("program", Json::str(program_b)),
        ])
        .to_compact(),
    ];
    let tx_a: Vec<String> = (0..25)
        .flat_map(|i| {
            [
                format!("+item(x{i}). +tag(tmp{i})."),
                format!("-item(x{i}). -tag(tmp{i})."),
            ]
        })
        .collect();
    let tx_b: Vec<String> = (0..25)
        .flat_map(|i| [format!("+job(j{i})."), format!("-job(j{i}).")])
        .collect();
    for k in 0..50 {
        if k == 25 {
            lines.push(
                Json::object([
                    ("op", Json::str("reload")),
                    ("db", Json::str("a")),
                    ("program", Json::str(program_v2)),
                ])
                .to_compact(),
            );
        }
        for (db, tx) in [("a", &tx_a[k]), ("b", &tx_b[k])] {
            lines.push(
                Json::object([
                    ("op", Json::str("transact")),
                    ("db", Json::str(db)),
                    ("updates", Json::str(tx)),
                ])
                .to_compact(),
            );
        }
    }
    lines.push(r#"{"op":"shutdown"}"#.into());
    lines.push(String::new());
    let transcript = serve_session(&[], &lines.join("\n"));

    // Split frames per database, keeping order.
    let frames: Vec<Json> = transcript
        .lines()
        .map(|l| park_json::parse(l).unwrap())
        .collect();
    let deltas_for = |db: &str| -> Vec<Delta> {
        frames
            .iter()
            .filter(|f| {
                f.get("frame").and_then(|j| j.as_str()) == Some("delta")
                    && f.get("db").and_then(|j| j.as_str()) == Some(db)
            })
            .map(|doc| Delta {
                added: str_list(doc, "added"),
                removed: str_list(doc, "removed"),
                blocked: str_list(doc, "blocked"),
            })
            .collect()
    };
    let served_a = deltas_for("a");
    let served_b = deltas_for("b");
    assert_eq!(served_a.len(), 50);
    assert_eq!(served_b.len(), 50);

    // Chained one-shot equivalents, one stream per database; database
    // a switches program files at the reload point.
    let p1 = write(&dir, "a1.park", program_v1);
    let p2 = write(&dir, "a2.park", program_v2);
    let pb = write(&dir, "b.park", program_b);
    let mut db_src = String::new();
    for (k, u) in tx_a.iter().enumerate() {
        let program = if k < 25 { &p1 } else { &p2 };
        let next = one_shot_run(&dir, program, &db_src, u, "inertia", "naive");
        let (before, after) = (fact_set(&db_src), fact_set(&next));
        let mut added: Vec<String> = after.difference(&before).cloned().collect();
        let mut removed: Vec<String> = before.difference(&after).cloned().collect();
        added.sort();
        removed.sort();
        assert_eq!(
            (&served_a[k].added, &served_a[k].removed),
            (&added, &removed),
            "db a diverges from chained runs at tx {}",
            k + 1
        );
        db_src = next;
    }
    let mut db_src = String::new();
    for (k, u) in tx_b.iter().enumerate() {
        let next = one_shot_run(&dir, &pb, &db_src, u, "inertia", "naive");
        let (before, after) = (fact_set(&db_src), fact_set(&next));
        let mut added: Vec<String> = after.difference(&before).cloned().collect();
        let mut removed: Vec<String> = before.difference(&after).cloned().collect();
        added.sort();
        removed.sort();
        assert_eq!(
            (&served_b[k].added, &served_b[k].removed),
            (&added, &removed),
            "db b diverges from chained runs at tx {}",
            k + 1
        );
        db_src = next;
    }

    // Memory accounting: every delta carries the storage section, and
    // the reload drops the 25 dead tag constants from a's vocabulary.
    let a_deltas: Vec<&Json> = frames
        .iter()
        .filter(|f| {
            f.get("frame").and_then(|j| j.as_str()) == Some("delta")
                && f.get("db").and_then(|j| j.as_str()) == Some("a")
        })
        .collect();
    let symbols = |f: &Json| {
        f.get("storage")
            .and_then(|s| s.get("vocab_symbols"))
            .and_then(|j| j.as_i64())
            .unwrap()
    };
    for f in &a_deltas {
        assert!(f.get("storage").is_some(), "every delta accounts storage");
    }
    let before_reload = symbols(a_deltas[24]);
    let after_reload = symbols(a_deltas[25]);
    assert!(
        after_reload < before_reload,
        "reload must compact: {before_reload} -> {after_reload}"
    );
    let reloaded = frames
        .iter()
        .find(|f| f.get("frame").and_then(|j| j.as_str()) == Some("reloaded"))
        .expect("reloaded frame");
    let rb = reloaded
        .get("vocab_before")
        .unwrap()
        .get("symbols")
        .unwrap();
    let ra = reloaded.get("vocab_after").unwrap().get("symbols").unwrap();
    assert!(ra.as_i64() < rb.as_i64(), "{reloaded:?}");
}

#[test]
fn interactive_policy_needs_a_terminal_or_the_protocol() {
    let dir = tempdir("interactive");
    let program = write(&dir, "c.park", "r1: p -> +q. r2: p -> -q.");
    let facts = write(&dir, "d.facts", "p.");

    // Satellite: a piped `park run --policy interactive` is rejected up
    // front instead of misreading its stdin as conflict answers.
    let out = park()
        .args([
            "run",
            program.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--policy",
            "interactive",
        ])
        .stdin(Stdio::piped())
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs a terminal"), "{stderr}");
    assert!(stderr.contains("park serve"), "{stderr}");

    // `park serve --policy interactive` is rejected the same way.
    let out = park()
        .args(["serve", "--policy", "interactive"])
        .stdin(Stdio::piped())
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("answers"), "{stderr}");

    // In a session, `create` with the interactive policy is an error
    // frame; conflict answers travel per transaction instead.
    let transcript = serve_session(
        &[],
        concat!(
            r#"{"op":"create","db":"c","program":"r1: p -> +q. r2: p -> -q.","facts":"p.","policy":"interactive"}"#,
            "\n",
            r#"{"op":"create","db":"d","program":"r1: p -> +q. r2: p -> -q.","facts":"p."}"#,
            "\n",
            r#"{"op":"settle","db":"d","answers":["d"]}"#,
            "\n",
            r#"{"op":"settle","db":"d","answers":[]}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
        ),
    );
    let frames: Vec<Json> = transcript
        .lines()
        .map(|l| park_json::parse(l).unwrap())
        .collect();
    let kind = |i: usize| frames[i].get("frame").and_then(|j| j.as_str()).unwrap();
    assert_eq!(kind(1), "error");
    assert!(frames[1]
        .get("message")
        .and_then(|j| j.as_str())
        .unwrap()
        .contains("answers"));
    assert_eq!(kind(2), "created");
    // "d" answer: the delete side wins, q is blocked from appearing.
    assert_eq!(kind(3), "delta");
    assert_eq!(str_list(&frames[3], "added"), Vec::<String>::new());
    assert_eq!(str_list(&frames[3], "blocked").len(), 1);
    // Exhausted answers: the error frame carries the conflict prompt.
    assert_eq!(kind(4), "error");
    let msg = frames[4].get("message").and_then(|j| j.as_str()).unwrap();
    assert!(msg.contains("no interactive answer"), "{msg}");
    assert!(msg.contains('q'), "prompt names the conflict atom: {msg}");
}

#[test]
fn tcp_listener_announces_its_port_and_serves_a_session() {
    let mut child = park()
        .args(["serve", "--listen", "127.0.0.1:0", "--once"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut status = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut status)
        .unwrap();
    let addr = status
        .trim()
        .strip_prefix("park-serve listening on ")
        .unwrap_or_else(|| panic!("bad status line {status:?}"))
        .to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    writeln!(
        stream,
        r#"{{"op":"create","db":"hr","program":"p -> +q.","facts":"p."}}"#
    )
    .unwrap();
    writeln!(stream, r#"{{"op":"settle","db":"hr"}}"#).unwrap();
    writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 4, "hello/created/delta/bye: {lines:?}");
    assert!(lines[0].contains("park-serve/v1"));
    assert!(lines[2].contains(r#""added":["q"]"#), "{}", lines[2]);
    assert!(lines[3].contains(r#""frame":"bye""#));
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "--once exits after the session");
}

#[test]
fn serve_journals_are_replayable_update_sources() {
    let dir = tempdir("journal");
    let journal = dir.join("hr.journal");
    let _ = std::fs::remove_file(&journal);
    let input = format!(
        concat!(
            r#"{{"op":"create","db":"hr","program":"onleave: -active(X) -> +offboard(X).","facts":"active(ann). active(bob).","journal":{journal}}}"#,
            "\n",
            r#"{{"op":"transact","db":"hr","updates":"-active(ann)."}}"#,
            "\n",
            r#"{{"op":"settle","db":"hr"}}"#,
            "\n",
            r#"{{"op":"transact","db":"hr","updates":"-active(bob). +active(cyd)."}}"#,
            "\n",
            r#"{{"op":"shutdown"}}"#,
            "\n",
        ),
        journal = Json::str(journal.to_str().unwrap()).to_compact()
    );
    serve_session(&[], &input);
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(lines[0], "-active(ann).");
    assert_eq!(lines[1].trim(), "", "settle journals a blank line");
    assert_eq!(lines[2], "-active(bob). +active(cyd).");
    let _ = std::fs::remove_file(&journal);
}

/// Satellite: a snapshot written by one session restores into a *fresh*
/// session whose vocabulary interned the constants in a different
/// order — and queries render identically.
#[test]
fn snapshots_restore_across_sessions_with_different_intern_orders() {
    let dir = tempdir("xsession");
    let snap = dir.join("x.snapshot.json");
    let _ = std::fs::remove_file(&snap);
    let snap_json = Json::str(snap.to_str().unwrap()).to_compact();

    // Session 1 interns zeta before alpha.
    let input = format!(
        concat!(
            r#"{{"op":"create","db":"s1","program":"r: p(X) -> +q(X).","facts":"p(zeta). p(alpha)."}}"#,
            "\n",
            r#"{{"op":"settle","db":"s1"}}"#,
            "\n",
            r#"{{"op":"snapshot","db":"s1","path":{snap}}}"#,
            "\n",
            r#"{{"op":"query","db":"s1","query":"?- q(X)."}}"#,
            "\n",
            r#"{{"op":"shutdown"}}"#,
            "\n",
        ),
        snap = snap_json
    );
    let t1 = serve_session(&[], &input);
    let rows1 = t1
        .lines()
        .map(|l| park_json::parse(l).unwrap())
        .find(|f| f.get("frame").and_then(|j| j.as_str()) == Some("rows"))
        .map(|f| str_list(&f, "rows"))
        .unwrap();
    assert_eq!(
        rows1,
        ["X = alpha", "X = zeta"],
        "sorted by name, not SymId"
    );

    // Session 2 (a separate process) interns other constants first, so
    // every restored constant gets a different SymId.
    let input = format!(
        concat!(
            r#"{{"op":"create","db":"s2","program":"r: p(X) -> +q(X).","facts":"p(middle). q(omega)."}}"#,
            "\n",
            r#"{{"op":"restore","db":"s2","path":{snap}}}"#,
            "\n",
            r#"{{"op":"query","db":"s2","query":"?- q(X)."}}"#,
            "\n",
            r#"{{"op":"state","db":"s2"}}"#,
            "\n",
            r#"{{"op":"shutdown"}}"#,
            "\n",
        ),
        snap = snap_json
    );
    let t2 = serve_session(&[], &input);
    let frames: Vec<Json> = t2.lines().map(|l| park_json::parse(l).unwrap()).collect();
    let rows2 = frames
        .iter()
        .find(|f| f.get("frame").and_then(|j| j.as_str()) == Some("rows"))
        .map(|f| str_list(f, "rows"))
        .unwrap();
    assert_eq!(rows1, rows2, "restored rows render identically");
    let state = frames
        .iter()
        .find(|f| f.get("frame").and_then(|j| j.as_str()) == Some("state"))
        .map(|f| str_list(f, "facts"))
        .unwrap();
    assert_eq!(state, ["p(alpha)", "p(zeta)", "q(alpha)", "q(zeta)"]);
    let _ = std::fs::remove_file(&snap);
}

/// Satellite: the same audit end-to-end through the REPL's
/// `:snapshot`/`:restore`, with reversed intern order in session two.
#[test]
fn repl_snapshot_restores_into_a_fresh_session() {
    let dir = tempdir("repl-x");
    let snap = dir.join("repl.snapshot.json");
    let _ = std::fs::remove_file(&snap);
    let program = write(&dir, "p.park", "r: p(X) -> +q(X).");
    let facts1 = write(&dir, "d1.facts", "p(zeta). p(alpha).");
    let facts2 = write(&dir, "d2.facts", "p(middle).");

    let run_repl = |db: &Path, script: String| -> String {
        let mut child = park()
            .args([
                "repl",
                program.to_str().unwrap(),
                "--db",
                db.to_str().unwrap(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(script.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let out1 = run_repl(
        &facts1,
        format!(":settle\n:snapshot {}\n?- q(X).\n:quit\n", snap.display()),
    );
    let out2 = run_repl(
        &facts2,
        format!(":restore {}\n?- q(X).\n:quit\n", snap.display()),
    );
    let rows = |out: &str| -> Vec<String> {
        out.lines()
            .map(|l| l.trim_start_matches("park> "))
            .filter(|l| l.starts_with("X = "))
            .map(|l| l.to_string())
            .collect()
    };
    assert_eq!(rows(&out1), ["X = alpha", "X = zeta"], "{out1}");
    assert_eq!(rows(&out1), rows(&out2), "\n1: {out1}\n2: {out2}");
    let _ = std::fs::remove_file(&snap);
}

// ---------------------------------------------------------------------------
// Warm-state invalidation properties (cross-transaction incremental mode)
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Certified reachability program (the incrementality-safe fragment).
const INC_V1: &str = "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).";
/// A certified extension reloads can swap in.
const INC_V2: &str = "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). r(X, Y) -> +seen(X).";
/// An *uncertified* variant (recursion through negation — stratified
/// negation would certify): reloading to it must force every following
/// transaction cold.
const INC_V3: &str = "e(X, Y), !r(Y, X) -> +r(X, Y).";

/// Render one abstract draw into a park-serve/v1 request line. The op mix
/// deliberately interleaves warm-friendly insert transactions with every
/// operation that must invalidate or bypass the warm state: deletions,
/// settles, `policy`, `reload` (certified and uncertified), `compact`,
/// and `restore`.
fn render_op(draw: (u8, u8, u8), snap: &str) -> String {
    let (kind, a, b) = draw;
    let c = |i: u8| format!("c{}", i % 5);
    let tx = |updates: String| {
        Json::object([
            ("op", Json::str("transact")),
            ("db", Json::str("x")),
            ("updates", Json::str(&updates)),
        ])
        .to_compact()
    };
    match kind % 8 {
        0..=2 => tx(format!("+e({}, {}).", c(a), c(b))),
        3 => tx(format!("-e({}, {}).", c(a), c(b))),
        4 => Json::object([("op", Json::str("settle")), ("db", Json::str("x"))]).to_compact(),
        5 => Json::object([
            ("op", Json::str("policy")),
            ("db", Json::str("x")),
            (
                "policy",
                Json::str(["inertia", "prefer-insert", "prefer-delete"][(a % 3) as usize]),
            ),
        ])
        .to_compact(),
        6 => Json::object([
            ("op", Json::str("reload")),
            ("db", Json::str("x")),
            (
                "program",
                Json::str([INC_V1, INC_V2, INC_V3][(a % 3) as usize]),
            ),
        ])
        .to_compact(),
        _ => {
            if b % 2 == 0 {
                Json::object([("op", Json::str("compact")), ("db", Json::str("x"))]).to_compact()
            } else {
                Json::object([
                    ("op", Json::str("restore")),
                    ("db", Json::str("x")),
                    ("path", Json::str(snap)),
                ])
                .to_compact()
            }
        }
    }
}

/// Drop `stats` frames — the only frames allowed to differ between the
/// incremental and plain sessions (they carry the incremental counters).
fn strip_stats(transcript: &str) -> String {
    transcript
        .lines()
        .filter(|l| {
            park_json::parse(l)
                .ok()
                .and_then(|f| f.get("frame").and_then(|j| j.as_str().map(String::from)))
                .as_deref()
                != Some("stats")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn stats_section(transcript: &str, key: &str) -> Option<Json> {
    transcript
        .lines()
        .map(|l| park_json::parse(l).unwrap())
        .find(|f| f.get("frame").and_then(|j| j.as_str()) == Some("stats"))
        .and_then(|f| f.get(key).cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for ANY interleaving of transactions with the warm-state
    /// hazards (`reload`, `compact`, `policy`, `restore`), a session run
    /// with `--incremental` produces a transcript byte-identical to the
    /// plain session outside the opt-in `stats` frame — i.e. no operation
    /// ever leaks stale warm state into an observable answer.
    #[test]
    fn incremental_sessions_are_unobservable_across_op_interleavings(
        draws in prop::collection::vec((0u8..8, 0u8..16, 0u8..16), 1..12)
    ) {
        let dir = tempdir("prop-inc");
        let snap = dir.join("prop-inc.snapshot.json");
        let snap_str = snap.to_str().unwrap().to_string();
        let mut lines = vec![
            Json::object([
                ("op", Json::str("create")),
                ("db", Json::str("x")),
                ("program", Json::str(INC_V1)),
                ("facts", Json::str("e(c0, c1). e(c1, c2).")),
            ])
            .to_compact(),
            Json::object([
                ("op", Json::str("snapshot")),
                ("db", Json::str("x")),
                ("path", Json::str(&snap_str)),
            ])
            .to_compact(),
        ];
        let mut tx_ops = 0u64;
        let mut deletion_txs = 0u64;
        for &d in &draws {
            if matches!(d.0 % 8, 0..=4) {
                tx_ops += 1;
            }
            if d.0 % 8 == 3 {
                deletion_txs += 1;
            }
            lines.push(render_op(d, &snap_str));
        }
        // A trailing settle proves the committed states agree, not just
        // the per-transaction deltas.
        lines.push(Json::object([("op", Json::str("settle")), ("db", Json::str("x"))]).to_compact());
        tx_ops += 1;
        lines.push(Json::object([("op", Json::str("stats")), ("db", Json::str("x"))]).to_compact());
        lines.push(r#"{"op":"shutdown"}"#.into());
        lines.push(String::new());
        let input = lines.join("\n");

        let plain = serve_session(&[], &input);
        let inc = serve_session(&["--incremental"], &input);
        prop_assert_eq!(strip_stats(&plain), strip_stats(&inc));

        // Bookkeeping invariants: the plain session reports no incremental
        // section; the incremental one accounts every transaction as
        // exactly one of warm (insert-only or partial-stratum) or cold.
        prop_assert!(stats_section(&plain, "incremental").is_none());
        let section = stats_section(&inc, "incremental").expect("incremental counters");
        let count = |k: &str| section.get(k).and_then(|j| j.as_i64()).unwrap();
        prop_assert_eq!(
            count("incremental_txs") + count("partial_stratum_txs") + count("cold_txs"),
            tx_ops as i64
        );
        // The deletion-bearing and attributed-cold buckets never overcount
        // the transactions that exist: each transaction lands in at most
        // one of partial/deletion/uncertified, and each cold transaction
        // is blamed on at most one reason.
        prop_assert!(
            count("partial_stratum_txs") + count("cold_txs_deletion") + count("cold_txs_uncertified")
                <= tx_ops as i64
        );
        prop_assert!(
            count("cold_txs_deletion") + count("cold_txs_uncertified") <= count("cold_txs")
        );
        // Deletion-flavoured outcomes require an actual deletion draw.
        prop_assert!(count("cold_txs_deletion") <= deletion_txs as i64);
        prop_assert!(count("partial_stratum_txs") <= deletion_txs as i64);
        let _ = std::fs::remove_file(&snap);
    }
}

/// A designed interleaving pinning the invalidation semantics: warm hits
/// happen at all, and each hazard op drops the warm state (observable as
/// an invalidation count or a cold transaction immediately after).
#[test]
fn warm_state_survives_only_until_the_next_hazard_op() {
    let dir = tempdir("inc-hazard");
    let snap = dir.join("hazard.snapshot.json");
    let snap_str = snap.to_str().unwrap().to_string();
    let tx = |u: &str| {
        Json::object([
            ("op", Json::str("transact")),
            ("db", Json::str("x")),
            ("updates", Json::str(u)),
        ])
        .to_compact()
    };
    let op = |o: &str, extra: Vec<(&str, Json)>| {
        let mut fields = vec![("op", Json::str(o)), ("db", Json::str("x"))];
        fields.extend(extra);
        Json::object(fields).to_compact()
    };
    let lines = vec![
        Json::object([
            ("op", Json::str("create")),
            ("db", Json::str("x")),
            ("program", Json::str(INC_V1)),
            ("facts", Json::str("e(c0, c1).")),
            ("incremental", Json::Bool(true)),
        ])
        .to_compact(),
        op("snapshot", vec![("path", Json::str(&snap_str))]),
        tx("+e(c1, c2)."), // cold: seeds the warm state
        tx("+e(c2, c3)."), // warm
        tx("-e(c2, c3)."), // warm: a base-fact deletion replays partially
        op("policy", vec![("policy", Json::str("prefer-insert"))]), // invalidates
        tx("+e(c3, c4)."), // cold reseed
        tx("+e(c4, c0)."), // warm
        op("restore", vec![("path", Json::str(&snap_str))]), // invalidates
        tx("+e(c1, c2)."), // cold reseed
        tx("+e(c2, c3)."), // warm
        op("compact", vec![]), // invalidates
        tx("+e(c3, c4)."), // cold reseed
        op("reload", vec![("program", Json::str(INC_V3))]), // uncertified now
        tx("+e(c4, c0)."), // cold: uncertified programs never warm
        op("stats", vec![]),
        r#"{"op":"shutdown"}"#.into(),
        String::new(),
    ];
    let transcript = serve_session(&[], &lines.join("\n"));
    let section = stats_section(&transcript, "incremental").expect("incremental counters");
    let count = |k: &str| section.get(k).and_then(|j| j.as_i64()).unwrap();
    assert_eq!(count("incremental_txs"), 3, "{section:?}");
    assert_eq!(count("partial_stratum_txs"), 1, "{section:?}");
    assert_eq!(count("cold_txs"), 5, "{section:?}");
    // The base-fact deletion stayed warm (the partial-stratum path), so no
    // cold transaction is blamed on a deletion; exactly one is blamed on
    // the uncertified program, and seeding/reseeding runs on neither.
    assert_eq!(count("cold_txs_deletion"), 0, "{section:?}");
    assert_eq!(count("cold_txs_uncertified"), 1, "{section:?}");
    assert!(count("invalidations") >= 4, "{section:?}");
    assert_eq!(
        section.get("certified").and_then(|j| j.as_bool()),
        Some(false),
        "after the reload to the negated program: {section:?}"
    );
    let _ = std::fs::remove_file(&snap);
}
