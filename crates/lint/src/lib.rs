//! # park-lint
//!
//! A diagnostics-grade static analyzer for PARK programs.
//!
//! The engine's `analysis` / `refine` modules compute program properties;
//! this crate packages them as **diagnostics**: stable lint codes with
//! severities, source spans, a text renderer with caret context, a
//! versioned machine-readable document (`park-lint/v1`), and inline
//! suppression via `%# allow(CODE)` pragmas (see `park_syntax::pragma`).
//!
//! | code | severity | meaning |
//! |---------|---------|----------------------------------------------|
//! | PARK000 | error   | syntax error                                 |
//! | PARK001 | warning | possible runtime conflict pair (refined)     |
//! | PARK002 | warning | rule always blocked under a constant policy  |
//! | PARK003 | warning | unreachable rule (unproducible event literal)|
//! | PARK004 | warning | rule can never fire (unsatisfiable body)     |
//! | PARK005 | info    | conflict on a recursive predicate (restart churn) |
//! | PARK006 | info    | program not stratifiable                     |
//! | PARK007 | error   | safety-condition violation                   |
//! | PARK008 | warning | rule closes a recursion-through-negation cycle (spanned) |
//! | PARK009 | info    | rule blocks incremental reuse (names the construct + stratum) |
//!
//! Every non-syntactic verdict here is differentially tested: the testkit
//! cross-checks lint verdicts against observed runtime behaviour over the
//! fuzzer corpus (see `park_testkit::harness`), so an unsound analysis
//! change shows up as a fuzz divergence, not a silent wrong answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use park_engine::refine;
use park_engine::{analysis, CompiledProgram, EdgeKind, RuleId, Strata};

pub use park_engine::refine::{AnalysisVariant, ConstPolicy};
use park_json::Json;
use park_storage::Vocabulary;
use park_syntax::{Span, SuppressionIndex};

/// How bad a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Heads-up about program structure; never fails a build.
    Info,
    /// Probably unintended; exit code 1.
    Warning,
    /// The program is rejected or meaningless; exit code 2.
    Error,
}

impl Severity {
    /// The lowercase name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The stable lint codes. Codes are append-only: a released code never
/// changes meaning or number (CI configurations depend on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// PARK000: the file does not parse.
    SyntaxError,
    /// PARK001: two rules with unifiable opposite-polarity heads whose
    /// conditions overlap — the refined possible-conflict pairs.
    PossibleConflict,
    /// PARK002: a rule whose effect can never survive under a constant
    /// policy (e.g. a delete head always beaten under `prefer-insert`).
    AlwaysBlocked,
    /// PARK003: a rule whose event literal names a `(sign, predicate)` no
    /// rule head (or supplied update) can produce.
    UnreachableRule,
    /// PARK004: a rule whose body is unsatisfiable — it can never fire.
    NeverFires,
    /// PARK005: a surviving conflict pair on a recursive predicate —
    /// restarts can re-expose the conflict (restart churn).
    RestartChurn,
    /// PARK006: the program is not stratifiable. Legal under PARK, but
    /// results may defy stratified-datalog intuition.
    Unstratified,
    /// PARK007: a safety-condition violation (paper §2).
    SafetyViolation,
    /// PARK008: a rule whose negated (or event) body literal closes a
    /// cycle inside a recursive component — the localized, rule-spanned
    /// witness behind the program-level PARK006. One diagnostic per
    /// contributing rule, naming the edge and the full component.
    UnstratifiedCycle,
    /// PARK009: a rule construct that keeps the program off the warm
    /// cross-transaction path (`park serve --incremental`): a deleting
    /// head, a negation closing a recursive cycle, or an event literal —
    /// with the rule's stratum. The program still runs; every transaction
    /// just takes the cold from-`D` path.
    IncrementalityBlocker,
}

impl LintCode {
    /// Every code, in numeric order.
    pub const ALL: [LintCode; 10] = [
        LintCode::SyntaxError,
        LintCode::PossibleConflict,
        LintCode::AlwaysBlocked,
        LintCode::UnreachableRule,
        LintCode::NeverFires,
        LintCode::RestartChurn,
        LintCode::Unstratified,
        LintCode::SafetyViolation,
        LintCode::UnstratifiedCycle,
        LintCode::IncrementalityBlocker,
    ];

    /// The stable `PARKnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SyntaxError => "PARK000",
            LintCode::PossibleConflict => "PARK001",
            LintCode::AlwaysBlocked => "PARK002",
            LintCode::UnreachableRule => "PARK003",
            LintCode::NeverFires => "PARK004",
            LintCode::RestartChurn => "PARK005",
            LintCode::Unstratified => "PARK006",
            LintCode::SafetyViolation => "PARK007",
            LintCode::UnstratifiedCycle => "PARK008",
            LintCode::IncrementalityBlocker => "PARK009",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::SyntaxError | LintCode::SafetyViolation => Severity::Error,
            LintCode::PossibleConflict
            | LintCode::AlwaysBlocked
            | LintCode::UnreachableRule
            | LintCode::NeverFires
            | LintCode::UnstratifiedCycle => Severity::Warning,
            LintCode::RestartChurn | LintCode::Unstratified | LintCode::IncrementalityBlocker => {
                Severity::Info
            }
        }
    }
}

/// One diagnostic: a coded finding anchored to a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// Severity (always `code.severity()`; stored for convenience).
    pub severity: Severity,
    /// Source anchor (synthetic for whole-program findings).
    pub span: Span,
    /// The rule the finding is about, if any.
    pub rule: Option<String>,
    /// Human-readable message.
    pub message: String,
}

/// The lint result for one source file.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// The file name or label the diagnostics refer to.
    pub file: String,
    /// Diagnostics that survived suppression, sorted by position then code.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics dropped by `%# allow(...)` pragmas.
    pub suppressed: usize,
    /// Number of rules in the program (0 if it failed to parse).
    pub rules: usize,
    /// Whether the refinement certified the program conflict-free — the
    /// property the engine's fast path consumes.
    pub certified_conflict_free: bool,
    /// Whether the program sits in the incrementality-safe fragment
    /// (inserting heads, stratified negation, no event literals): the
    /// property the cross-transaction warm path (`park serve
    /// --incremental`) consumes. Programs outside the fragment still run —
    /// every transaction just takes the cold from-`D` path (PARK009 names
    /// the blockers).
    pub certified_incremental: bool,
}

impl FileReport {
    /// The highest severity present, if any diagnostics remain.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

/// The semantic verdicts the testkit cross-checks against runtime
/// behaviour, extracted from a compiled program without any rendering.
#[derive(Debug, Clone)]
pub struct Verdicts {
    /// Program certified conflict-free: no run may resolve a conflict.
    pub certified_conflict_free: bool,
    /// Program certified incrementality-safe: warm cross-transaction
    /// evaluation must be byte-identical to cold runs on insert- and
    /// deletion-bearing update chains.
    pub certified_incremental: bool,
    /// Rules flagged unreachable: they must never fire.
    pub unreachable: Vec<RuleId>,
    /// Rules flagged as unable to fire: they must never fire.
    pub never_fires: Vec<RuleId>,
    /// Rules whose effect can never stick under the paired constant
    /// policy: deleting such a rule must leave final databases unchanged
    /// under that policy.
    pub always_blocked: Vec<(RuleId, ConstPolicy)>,
    /// The refined surviving conflict pairs, for completeness checks.
    pub pairs: Vec<analysis::ConflictPair>,
}

/// Compute the runtime-checkable verdicts of a compiled program.
pub fn verdicts(program: &CompiledProgram, variant: AnalysisVariant) -> Verdicts {
    let refined = refine::refine_conflicts(program, variant);
    Verdicts {
        certified_conflict_free: refine::certify_conflict_free(program, variant).is_some(),
        certified_incremental: park_engine::certify_incremental(program),
        unreachable: refine::unreachable_event_rules(program),
        never_fires: refine::never_fire_rules(program),
        always_blocked: refine::always_blocked_rules(program),
        pairs: refined.pairs,
    }
}

fn diag(code: LintCode, span: Span, rule: Option<String>, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: code.severity(),
        span,
        rule,
        message,
    }
}

/// Lint one source file (program text, optionally with trailing facts).
///
/// `file` is a display label only — no I/O happens here. The analyses run
/// on the program alone; external updates are modeled as extra producers
/// only when the caller compiles them in (the CLI lints program files as
/// they are on disk).
pub fn lint_source(file: &str, src: &str, variant: AnalysisVariant) -> FileReport {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut rules = 0usize;
    let mut certified = false;
    let mut certified_incremental = false;

    match park_syntax::parse_source(src) {
        Err(e) => {
            diagnostics.push(diag(
                LintCode::SyntaxError,
                e.span,
                None,
                e.kind.to_string(),
            ));
        }
        Ok(source) => {
            let program = source.program;
            rules = program.len();
            if let Err(errors) = park_syntax::check_program(&program) {
                for e in errors {
                    diagnostics.push(diag(
                        LintCode::SafetyViolation,
                        e.span,
                        Some(e.rule.clone()),
                        e.kind.to_string(),
                    ));
                }
            } else {
                match CompiledProgram::compile(Vocabulary::new(), &program) {
                    Err(e) => diagnostics.push(diag(
                        LintCode::SafetyViolation,
                        Span::synthetic(),
                        None,
                        e.to_string(),
                    )),
                    Ok(compiled) => {
                        certified = analyze(&compiled, variant, &mut diagnostics);
                        certified_incremental = park_engine::certify_incremental(&compiled);
                    }
                }
            }
        }
    }

    // Suppression pass: drop diagnostics a pragma covers.
    let index = SuppressionIndex::of(src);
    let before = diagnostics.len();
    diagnostics.retain(|d| !index.allows(d.span.line, d.code.code()));
    let suppressed = before - diagnostics.len();

    diagnostics.sort_by_key(|d| (d.span.line, d.span.col, d.code));
    FileReport {
        file: file.to_string(),
        diagnostics,
        suppressed,
        rules,
        certified_conflict_free: certified,
        certified_incremental,
    }
}

/// The semantic analyses over a compiled program. Returns whether the
/// program was certified conflict-free.
fn analyze(
    program: &CompiledProgram,
    variant: AnalysisVariant,
    diagnostics: &mut Vec<Diagnostic>,
) -> bool {
    let vocab = program.vocab();
    let name = |id: RuleId| program.rule(id).display_name();
    let span = |id: RuleId| program.rule(id).source.span;

    let refined = refine::refine_conflicts(program, variant);
    let graph = analysis::DependencyGraph::of(program);
    let recursive = graph.recursive_preds();
    let strata = Strata::over(graph, program);

    for pair in &refined.pairs {
        let pred = vocab.pred_name(pair.pred);
        diagnostics.push(diag(
            LintCode::PossibleConflict,
            span(pair.inserting),
            Some(name(pair.inserting)),
            format!(
                "rules `{}` (+{pred}) and `{}` (-{pred}) have unifiable heads and \
                 overlapping conditions: runtime conflicts on `{pred}` are possible",
                name(pair.inserting),
                name(pair.deleting),
            ),
        ));
        if recursive.contains(&pair.pred) {
            diagnostics.push(diag(
                LintCode::RestartChurn,
                span(pair.inserting),
                Some(name(pair.inserting)),
                format!(
                    "the `{}` / `{}` conflict sits on recursive predicate `{pred}`: \
                     each restart can re-derive the contested atoms and re-expose \
                     the conflict (restart churn)",
                    name(pair.inserting),
                    name(pair.deleting),
                ),
            ));
        }
    }

    for id in refine::never_fire_rules(program) {
        diagnostics.push(diag(
            LintCode::NeverFires,
            span(id),
            Some(name(id)),
            format!(
                "rule `{}` can never fire: its body is unsatisfiable \
                 (contradictory guards or opposite event polarities on one tuple)",
                name(id)
            ),
        ));
    }

    for id in refine::unreachable_event_rules(program) {
        let witness = program.rule(id).body.iter().find_map(|lit| match lit {
            park_engine::CompiledLiteral::Atom {
                kind: park_engine::LitKind::Event(s),
                atom,
            } => Some(format!("{}{}", s.prefix(), vocab.pred_name(atom.pred))),
            _ => None,
        });
        diagnostics.push(diag(
            LintCode::UnreachableRule,
            span(id),
            Some(name(id)),
            format!(
                "rule `{}` is unreachable: no rule head or external update produces \
                 the event{} its body waits for",
                name(id),
                witness.map_or(String::new(), |w| format!(" `{w}`")),
            ),
        ));
    }

    for (id, policy) in refine::always_blocked_rules(program) {
        let side = match program.rule(id).head_sign {
            park_syntax::Sign::Insert => "insertions",
            park_syntax::Sign::Delete => "deletions",
        };
        diagnostics.push(diag(
            LintCode::AlwaysBlocked,
            span(id),
            Some(name(id)),
            format!(
                "rule `{}` can never win under a constant `{}` policy: a subsuming \
                 opposite-polarity rule fires the same atoms in the same step, so \
                 its {side} are always blocked",
                name(id),
                policy.policy_name(),
            ),
        ));
    }

    if !strata.is_stratified() {
        // Render each offending recursive component once, sorted for
        // stable output: `{r}` or `{move, win}`.
        let component = |preds: &[park_storage::PredId]| {
            let mut names: Vec<String> = preds
                .iter()
                .map(|&p| vocab.pred_name(p).to_string())
                .collect();
            names.sort_unstable();
            format!("{{{}}}", names.join(", "))
        };
        let mut cycles: Vec<String> = strata
            .offending_edges()
            .iter()
            .map(|e| component(&e.component))
            .collect();
        cycles.sort_unstable();
        cycles.dedup();
        diagnostics.push(diag(
            LintCode::Unstratified,
            Span::synthetic(),
            None,
            format!(
                "program is not stratifiable: recursion through negation or events \
                 inside {} {}; PARK's inflationary semantics is well-defined \
                 regardless, but results may defy stratified-datalog intuition \
                 (PARK008 spans the offending rules)",
                if cycles.len() == 1 {
                    "component"
                } else {
                    "components"
                },
                cycles.join(", "),
            ),
        ));
        for edge in strata.offending_edges() {
            let from = vocab.pred_name(edge.from);
            let to = vocab.pred_name(edge.to);
            let comp = component(&edge.component);
            let (through, via) = match edge.kind {
                EdgeKind::Negative => ("negation", format!("`!{to}`")),
                EdgeKind::Event => ("events", format!("an event literal on `{to}`")),
                // Positive edges never offend; keep the renderer total.
                EdgeKind::Positive => continue,
            };
            for &(id, span) in &edge.rules {
                diagnostics.push(diag(
                    LintCode::UnstratifiedCycle,
                    span,
                    Some(name(id)),
                    format!(
                        "rule `{}` closes a recursion-through-{through} cycle: \
                         `{from}` depends on {via} inside recursive component \
                         {comp}, so `{to}` marks depend on the Γ-step they were \
                         derived at",
                        name(id),
                    ),
                ));
            }
        }
    }

    for e in park_engine::exclusions_with(program, &strata) {
        let stratum = strata
            .rule_stratum(program, e.rule)
            .map_or("?".to_string(), |s| s.to_string());
        diagnostics.push(diag(
            LintCode::IncrementalityBlocker,
            span(e.rule),
            Some(name(e.rule)),
            format!(
                "rule `{}` blocks incremental reuse: {:?} ({}) in stratum \
                 {stratum} — transactions on this program replay cold from `D` \
                 instead of warm (see docs/incremental.md)",
                name(e.rule),
                e.reason,
                e.reason.describe(),
            ),
        ));
    }

    refine::certify_conflict_free(program, variant).is_some()
}

/// Render one file's diagnostics as human-readable text with caret
/// context, in the style of the parser's own error rendering.
pub fn render_text(report: &FileReport, src: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}[{}]: {}\n",
            d.severity.as_str(),
            d.code.code(),
            d.message
        ));
        if !d.span.is_synthetic() {
            out.push_str(&format!("  --> {}:{}\n", report.file, d.span));
            // Reuse the parser's caret rendering, minus its `error:` line.
            let rendered = park_syntax::error::render_diagnostic("", d.span, src);
            for line in rendered.lines().skip(1) {
                out.push_str(&format!("  {line}\n"));
            }
        } else {
            out.push_str(&format!("  --> {}\n", report.file));
        }
    }
    let (e, w, i) = tally(std::slice::from_ref(report));
    let mut badges = String::new();
    if report.certified_conflict_free {
        badges.push_str(" [certified conflict-free]");
    }
    if report.certified_incremental {
        badges.push_str(" [incremental-safe]");
    }
    out.push_str(&format!(
        "{}: {} error(s), {} warning(s), {} info(s), {} suppressed{}\n",
        report.file, e, w, i, report.suppressed, badges
    ));
    out
}

fn tally(reports: &[FileReport]) -> (usize, usize, usize) {
    let count = |s: Severity| {
        reports
            .iter()
            .flat_map(|r| &r.diagnostics)
            .filter(|d| d.severity == s)
            .count()
    };
    (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
    )
}

/// The highest severity across a set of reports (drives the exit code:
/// none → 0, warnings/infos → 1 unless only infos, errors → 2).
pub fn max_severity(reports: &[FileReport]) -> Option<Severity> {
    reports.iter().filter_map(FileReport::max_severity).max()
}

/// Render a set of file reports as a versioned `park-lint/v1` document.
///
/// The schema is append-only: fields may be added in later versions but
/// never removed or renamed (a golden-file test pins the current shape).
pub fn reports_to_json(reports: &[FileReport]) -> Json {
    let files: Vec<Json> = reports
        .iter()
        .map(|r| {
            let diags: Vec<Json> = r
                .diagnostics
                .iter()
                .map(|d| {
                    Json::object([
                        ("code", Json::str(d.code.code())),
                        ("severity", Json::str(d.severity.as_str())),
                        ("line", Json::from(d.span.line as i64)),
                        ("col", Json::from(d.span.col as i64)),
                        ("rule", d.rule.as_deref().map_or(Json::Null, Json::str)),
                        ("message", Json::str(d.message.clone())),
                    ])
                })
                .collect();
            Json::object([
                ("file", Json::str(r.file.clone())),
                ("rules", Json::from(r.rules)),
                (
                    "certified_conflict_free",
                    Json::from(r.certified_conflict_free),
                ),
                ("certified_incremental", Json::from(r.certified_incremental)),
                ("suppressed", Json::from(r.suppressed)),
                ("diagnostics", Json::from(diags)),
            ])
        })
        .collect();
    let (errors, warnings, infos) = tally(reports);
    let suppressed: usize = reports.iter().map(|r| r.suppressed).sum();
    Json::object([
        ("schema", Json::str("park-lint/v1")),
        ("files", Json::from(files)),
        (
            "summary",
            Json::object([
                ("files", Json::from(reports.len())),
                ("errors", Json::from(errors)),
                ("warnings", Json::from(warnings)),
                ("infos", Json::from(infos)),
                ("suppressed", Json::from(suppressed)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("test.park", src, AnalysisVariant::Faithful)
    }

    fn codes(r: &FileReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let r = lint("p(X) -> +q(X). q(X) -> +r(X).");
        assert!(r.diagnostics.is_empty());
        assert!(r.certified_conflict_free);
        assert!(r.certified_incremental);
        assert_eq!(r.rules, 2);
        assert_eq!(r.max_severity(), None);
    }

    #[test]
    fn incremental_certificate_tracks_the_fragment() {
        // Guards and stratified negation are fine; deleting heads,
        // recursion through negation, and events are not.
        assert!(lint("p(X), X < 5 -> +q(X).").certified_incremental);
        assert!(lint("!q(X), p(X) -> +r(X).").certified_incremental);
        for src in [
            "p(X) -> -q(X).",
            "move(X, Y), !win(Y) -> +win(X).",
            "+p(X) -> +r(X).",
        ] {
            assert!(!lint(src).certified_incremental, "{src}");
        }
        // Failing to parse means no certificate.
        assert!(!lint("p(X) -> ").certified_incremental);
    }

    #[test]
    fn syntax_error_is_park000() {
        let r = lint("p(X) -> ");
        assert_eq!(codes(&r), vec!["PARK000"]);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(r.rules, 0);
    }

    #[test]
    fn safety_violations_are_all_reported() {
        // Two independent violations in two rules: both must surface.
        let r = lint("p(X) -> +q(X, Y). z(A), !w(B) -> +v(A).");
        assert_eq!(codes(&r), vec!["PARK007", "PARK007"]);
    }

    #[test]
    fn conflict_pair_is_park001_with_span() {
        let r = lint("grow: p(X) -> +q(X). cut: z(X) -> -q(X).");
        assert!(codes(&r).contains(&"PARK001"));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::PossibleConflict)
            .unwrap();
        assert_eq!(d.span.line, 1);
        assert_eq!(d.rule.as_deref(), Some("grow"));
        assert!(d.message.contains("cut"), "{}", d.message);
        assert!(!r.certified_conflict_free);
    }

    #[test]
    fn guard_partitioned_program_is_certified() {
        let r = lint("p(X), X < 5 -> +q(X). p(X), X >= 5 -> -q(X).");
        assert!(!codes(&r).contains(&"PARK001"));
        assert!(r.certified_conflict_free);
    }

    #[test]
    fn always_blocked_is_park002() {
        let r = lint("grow: p(X) -> +q(X). cut: p(X) -> -q(X).");
        assert!(codes(&r).contains(&"PARK002"));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::AlwaysBlocked && d.rule.as_deref() == Some("cut"))
            .unwrap();
        assert!(d.message.contains("prefer-insert"), "{}", d.message);
    }

    #[test]
    fn unreachable_event_rule_is_park003() {
        // The event literal also keeps `dead` off the warm path (PARK009).
        let r = lint("dead: +z(X) -> +q(X). live: p(X) -> +r(X).");
        assert_eq!(codes(&r), vec!["PARK003", "PARK009"]);
        let d = &r.diagnostics[0];
        assert_eq!(d.rule.as_deref(), Some("dead"));
        assert!(d.message.contains("`+z`"), "{}", d.message);
    }

    #[test]
    fn never_fires_is_park004() {
        let r = lint("p(X), X < 3, X > 5 -> +q(X).");
        assert_eq!(codes(&r), vec!["PARK004"]);
    }

    #[test]
    fn restart_churn_is_park005_info() {
        // The contested predicate q is recursive (q feeds q) and the pair
        // survives refinement.
        let r = lint("q(X), e(X, Y) -> +q(Y). p(X) -> -q(X).");
        assert!(codes(&r).contains(&"PARK005"));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::RestartChurn)
            .unwrap();
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn unstratified_is_park006_info() {
        let r = lint("move(X, Y), !win(Y) -> +win(X).");
        assert_eq!(codes(&r), vec!["PARK006", "PARK008", "PARK009"]);
        let d = &r.diagnostics[0];
        assert_eq!(d.severity, Severity::Info);
        assert!(d.span.is_synthetic());
        // The program-level verdict names the concrete offending cycle.
        assert!(d.message.contains("{win}"), "{}", d.message);
    }

    #[test]
    fn unstratified_cycle_is_park008_with_span() {
        let r = lint("step: move(X, Y), !win(Y) -> +win(X).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::UnstratifiedCycle)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.rule.as_deref(), Some("step"));
        assert!(!d.span.is_synthetic());
        assert_eq!(d.span.line, 1);
        assert!(
            d.message.contains("`win` depends on `!win`"),
            "{}",
            d.message
        );
        assert!(d.message.contains("{win}"), "{}", d.message);

        // Event cycles name the component and every contributing rule.
        let r = lint("a: +p(X) -> +q(X). b: +q(X) -> +p(X).");
        let cyc: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnstratifiedCycle)
            .collect();
        assert_eq!(cyc.len(), 2, "{:?}", codes(&r));
        assert!(
            cyc[0].message.contains("recursion-through-events"),
            "{}",
            cyc[0].message
        );
        assert!(cyc[0].message.contains("{p, q}"), "{}", cyc[0].message);
    }

    #[test]
    fn incrementality_blockers_are_park009_info() {
        let r = lint("del: p(X) -> -q(X).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::IncrementalityBlocker)
            .unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.rule.as_deref(), Some("del"));
        assert!(d.message.contains("DeleteHead"), "{}", d.message);
        assert!(d.message.contains("stratum 0"), "{}", d.message);
        // Stratified negation is inside the fragment: no blocker report.
        assert!(!codes(&lint("!q(X), p(X) -> +r(X).")).contains(&"PARK009"));
    }

    #[test]
    fn pragma_suppresses_by_line_and_code() {
        let src = "%# allow(PARK001)\ngrow: p(X) -> +q(X).\ncut: z(X) -> -q(X).\n";
        let r = lint(src);
        assert!(!codes(&r).contains(&"PARK001"), "{:?}", codes(&r));
        assert_eq!(r.suppressed, 1);
        // The wrong code suppresses nothing.
        let src = "%# allow(PARK004)\ngrow: p(X) -> +q(X).\ncut: z(X) -> -q(X).\n";
        let r = lint(src);
        assert!(codes(&r).contains(&"PARK001"));
        assert_eq!(r.suppressed, 0);
    }

    #[test]
    fn text_rendering_has_carets_and_summary() {
        let src = "grow: p(X) -> +q(X). cut: z(X) -> -q(X).";
        let r = lint(src);
        let text = render_text(&r, src);
        assert!(text.contains("warning[PARK001]"), "{text}");
        assert!(text.contains("--> test.park:1:"), "{text}");
        assert!(text.contains("| grow:"), "{text}");
        assert!(text.contains("^"), "{text}");
        assert!(text.contains("warning(s)"), "{text}");
    }

    #[test]
    fn json_document_is_versioned_and_complete() {
        let r = lint("grow: p(X) -> +q(X). cut: z(X) -> -q(X).");
        let doc = reports_to_json(std::slice::from_ref(&r));
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("park-lint/v1"));
        let files = doc.get("files").unwrap().as_array().unwrap();
        assert_eq!(files.len(), 1);
        let d = files[0].get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(d[0].get("code").unwrap().as_str(), Some("PARK001"));
        assert_eq!(d[0].get("line").unwrap().as_i64(), Some(1));
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("warnings").unwrap().as_i64(), Some(1));
        assert_eq!(summary.get("errors").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn verdicts_expose_the_runtime_checkable_surface() {
        let src = "dead: +z(X) -> +q(X). grow: p(X) -> +q(X). cut: p(X) -> -q(X).";
        let program = park_syntax::parse_program(src).unwrap();
        let compiled = CompiledProgram::compile(Vocabulary::new(), &program).unwrap();
        let v = verdicts(&compiled, AnalysisVariant::Faithful);
        assert!(!v.certified_conflict_free);
        assert!(!v.certified_incremental, "deleting head and an event rule");
        assert_eq!(v.unreachable, vec![RuleId(0)]);
        assert!(v.never_fires.is_empty());
        assert!(!v.always_blocked.is_empty());
        assert!(!v.pairs.is_empty());
    }

    #[test]
    fn lint_codes_are_stable() {
        // Append-only contract: these exact strings are public API.
        let all: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            all,
            vec![
                "PARK000", "PARK001", "PARK002", "PARK003", "PARK004", "PARK005", "PARK006",
                "PARK007", "PARK008", "PARK009"
            ]
        );
    }
}
