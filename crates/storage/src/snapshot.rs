//! Portable snapshots of fact stores.
//!
//! A [`Snapshot`] is a vocabulary-independent, serde-serializable image of a
//! [`FactStore`]: predicate names and arities plus constant-level tuples.
//! Snapshots are the persistence format of the CLI and of tests that save
//! and reload database states.

use crate::error::StorageError;
use crate::store::FactStore;
use crate::vocab::Vocabulary;
use park_syntax::Const;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One predicate's extension in portable form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSnapshot {
    /// The predicate's arity.
    pub arity: usize,
    /// The tuples, as vectors of constants.
    pub tuples: Vec<Vec<Const>>,
}

/// A portable image of a fact store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Predicate name → extension. `BTreeMap` keeps output deterministic.
    pub relations: BTreeMap<String, RelationSnapshot>,
}

impl Snapshot {
    /// Capture a store.
    pub fn of(store: &FactStore) -> Self {
        let vocab = store.vocab();
        let mut relations: BTreeMap<String, RelationSnapshot> = BTreeMap::new();
        for (pred, tuple) in store.iter() {
            let entry = relations
                .entry(vocab.pred_name(pred).to_string())
                .or_insert_with(|| RelationSnapshot {
                    arity: vocab.pred_arity(pred),
                    tuples: Vec::new(),
                });
            entry
                .tuples
                .push(tuple.values().iter().map(|&v| vocab.constant(v)).collect());
        }
        for rel in relations.values_mut() {
            rel.tuples.sort();
        }
        Snapshot { relations }
    }

    /// Restore into a store over `vocab`.
    pub fn restore(&self, vocab: Arc<Vocabulary>) -> Result<FactStore, StorageError> {
        let mut store = FactStore::new(Arc::clone(&vocab));
        for (name, rel) in &self.relations {
            let pred = vocab.pred(name, rel.arity)?;
            for tuple in &rel.tuples {
                if tuple.len() != rel.arity {
                    return Err(StorageError::Snapshot(format!(
                        "tuple of arity {} in relation `{name}` of arity {}",
                        tuple.len(),
                        rel.arity
                    )));
                }
                store.insert(pred, tuple.iter().map(|c| vocab.value(c)).collect())?;
            }
        }
        Ok(store)
    }

    /// Encode as pretty JSON.
    pub fn to_json(&self) -> Result<String, StorageError> {
        serde_json::to_string_pretty(self).map_err(|e| StorageError::Snapshot(e.to_string()))
    }

    /// Decode from JSON.
    pub fn from_json(s: &str) -> Result<Self, StorageError> {
        serde_json::from_str(s).map_err(|e| StorageError::Snapshot(e.to_string()))
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// True if the snapshot holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_through_json() {
        let s = FactStore::from_source(Vocabulary::new(), "p(a). p(b). q(a, 1). r.").unwrap();
        let snap = Snapshot::of(&s);
        assert_eq!(snap.len(), 4);
        let json = snap.to_json().unwrap();
        let snap2 = Snapshot::from_json(&json).unwrap();
        assert_eq!(snap, snap2);
        let restored = snap2.restore(Vocabulary::new()).unwrap();
        assert_eq!(restored.sorted_display(), s.sorted_display());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let v = Vocabulary::new();
        let a = FactStore::from_source(Arc::clone(&v), "p(b). p(a).").unwrap();
        let b = FactStore::from_source(Arc::clone(&v), "p(a). p(b).").unwrap();
        assert_eq!(
            Snapshot::of(&a).to_json().unwrap(),
            Snapshot::of(&b).to_json().unwrap()
        );
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        assert!(Snapshot::from_json("{not json").is_err());
        let mut snap = Snapshot::default();
        snap.relations.insert(
            "p".into(),
            RelationSnapshot {
                arity: 2,
                tuples: vec![vec![Const::sym("a")]],
            },
        );
        assert!(snap.restore(Vocabulary::new()).is_err());
    }

    #[test]
    fn empty_snapshot() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        let restored = snap.restore(Vocabulary::new()).unwrap();
        assert!(restored.is_empty());
    }
}
