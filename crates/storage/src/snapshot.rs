//! Snapshots of fact stores: portable images and in-memory checkpoints.
//!
//! A [`Snapshot`] is a vocabulary-independent, JSON-serializable image of a
//! [`FactStore`]: predicate names and arities plus constant-level tuples.
//! Snapshots are the persistence format of the CLI and of tests that save
//! and reload database states.
//!
//! A [`Checkpoint`] is the cheap in-memory sibling: it captures the store's
//! `Arc`-shared relation shards, so taking one is O(#shards) — zero
//! per-fact work — and restoring one shares every unchanged shard with the
//! live store (copy-on-write kicks in only when either side mutates).

use crate::error::StorageError;
use crate::relation::Relation;
use crate::store::FactStore;
use crate::vocab::Vocabulary;
use park_json::Json;
use park_syntax::Const;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of [`Checkpoint::capture`] calls.
static CAPTURES: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of shards shared (not copied) across capture/restore.
static SHARD_REUSES: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide checkpoint capture counter.
pub fn snapshot_captures() -> u64 {
    CAPTURES.load(Ordering::Relaxed)
}

/// Read the process-wide checkpoint shard-reuse counter: how many relation
/// shards were shared by reference instead of deep-copied.
pub fn snapshot_shard_reuses() -> u64 {
    SHARD_REUSES.load(Ordering::Relaxed)
}

/// An O(#shards) in-memory checkpoint of a [`FactStore`].
///
/// The checkpoint holds `Arc` references to the store's relation shards at
/// capture time. Neither capturing nor restoring copies tuple data; a shard
/// is deep-copied only when the live store (or a restored store) mutates it
/// afterwards — observable through [`crate::store::cow_shard_clones`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    vocab: Arc<Vocabulary>,
    rels: Vec<Arc<Relation>>,
}

impl Checkpoint {
    /// Capture the store's current state by sharing its shards.
    pub fn capture(store: &FactStore) -> Self {
        let rels: Vec<Arc<Relation>> = store.shards().iter().map(Arc::clone).collect();
        CAPTURES.fetch_add(1, Ordering::Relaxed);
        SHARD_REUSES.fetch_add(rels.len() as u64, Ordering::Relaxed);
        Checkpoint {
            vocab: Arc::clone(store.vocab()),
            rels,
        }
    }

    /// Materialize a store at the captured state, sharing every shard.
    pub fn restore(&self) -> FactStore {
        SHARD_REUSES.fetch_add(self.rels.len() as u64, Ordering::Relaxed);
        FactStore::from_shards(Arc::clone(&self.vocab), self.rels.clone())
    }

    /// Total number of facts at capture time.
    pub fn len(&self) -> usize {
        self.rels.iter().map(|r| r.len()).sum()
    }

    /// True if the checkpoint holds no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.iter().all(|r| r.is_empty())
    }
}

/// One predicate's extension in portable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSnapshot {
    /// The predicate's arity.
    pub arity: usize,
    /// The tuples, as vectors of constants.
    pub tuples: Vec<Vec<Const>>,
}

/// A portable image of a fact store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Predicate name → extension. `BTreeMap` keeps output deterministic.
    pub relations: BTreeMap<String, RelationSnapshot>,
}

impl Snapshot {
    /// Capture a store.
    pub fn of(store: &FactStore) -> Self {
        let vocab = store.vocab();
        let mut relations: BTreeMap<String, RelationSnapshot> = BTreeMap::new();
        for (pred, tuple) in store.iter() {
            let entry = relations
                .entry(vocab.pred_name(pred).to_string())
                .or_insert_with(|| RelationSnapshot {
                    arity: vocab.pred_arity(pred),
                    tuples: Vec::new(),
                });
            entry
                .tuples
                .push(tuple.values().iter().map(|&v| vocab.constant(v)).collect());
        }
        for rel in relations.values_mut() {
            rel.tuples.sort();
        }
        Snapshot { relations }
    }

    /// Restore into a store over `vocab`.
    pub fn restore(&self, vocab: Arc<Vocabulary>) -> Result<FactStore, StorageError> {
        let mut store = FactStore::new(Arc::clone(&vocab));
        for (name, rel) in &self.relations {
            let pred = vocab.pred(name, rel.arity)?;
            for tuple in &rel.tuples {
                if tuple.len() != rel.arity {
                    return Err(StorageError::Snapshot(format!(
                        "tuple of arity {} in relation `{name}` of arity {}",
                        tuple.len(),
                        rel.arity
                    )));
                }
                store.insert(pred, tuple.iter().map(|c| vocab.value(c)).collect())?;
            }
        }
        Ok(store)
    }

    /// Encode as pretty JSON. Constants are externally tagged:
    /// `{"Sym": "a"}` / `{"Int": 42}`.
    pub fn to_json(&self) -> Result<String, StorageError> {
        let relations = self
            .relations
            .iter()
            .map(|(name, rel)| {
                let tuples = rel
                    .tuples
                    .iter()
                    .map(|tuple| Json::Array(tuple.iter().map(const_to_json).collect()))
                    .collect();
                let body = Json::object([
                    ("arity", Json::from(rel.arity)),
                    ("tuples", Json::Array(tuples)),
                ]);
                (name.clone(), body)
            })
            .collect::<Vec<_>>();
        Ok(Json::object([("relations", Json::Object(relations))]).to_pretty())
    }

    /// Decode from JSON.
    pub fn from_json(s: &str) -> Result<Self, StorageError> {
        let bad = |msg: &str| StorageError::Snapshot(msg.to_string());
        let doc = park_json::parse(s).map_err(|e| StorageError::Snapshot(e.to_string()))?;
        let members = doc
            .get("relations")
            .and_then(Json::as_object)
            .ok_or_else(|| bad("missing `relations` object"))?;
        let mut relations = BTreeMap::new();
        for (name, body) in members {
            let arity = body
                .get("arity")
                .and_then(Json::as_i64)
                .ok_or_else(|| bad("missing numeric `arity`"))? as usize;
            let tuples = body
                .get("tuples")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("missing `tuples` array"))?
                .iter()
                .map(|tuple| {
                    tuple
                        .as_array()
                        .ok_or_else(|| bad("tuple must be an array"))?
                        .iter()
                        .map(const_from_json)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            relations.insert(name.clone(), RelationSnapshot { arity, tuples });
        }
        Ok(Snapshot { relations })
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// True if the snapshot holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn const_to_json(c: &Const) -> Json {
    match c {
        Const::Sym(s) => Json::object([("Sym", Json::str(s.as_str()))]),
        Const::Int(n) => Json::object([("Int", Json::Int(*n))]),
    }
}

fn const_from_json(value: &Json) -> Result<Const, StorageError> {
    if let Some(s) = value.get("Sym").and_then(Json::as_str) {
        return Ok(Const::Sym(s.to_string()));
    }
    if let Some(n) = value.get("Int").and_then(Json::as_i64) {
        return Ok(Const::Int(n));
    }
    Err(StorageError::Snapshot(format!(
        "expected `{{\"Sym\": ..}}` or `{{\"Int\": ..}}`, got `{value}`"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_through_json() {
        let s = FactStore::from_source(Vocabulary::new(), "p(a). p(b). q(a, 1). r.").unwrap();
        let snap = Snapshot::of(&s);
        assert_eq!(snap.len(), 4);
        let json = snap.to_json().unwrap();
        let snap2 = Snapshot::from_json(&json).unwrap();
        assert_eq!(snap, snap2);
        let restored = snap2.restore(Vocabulary::new()).unwrap();
        assert_eq!(restored.sorted_display(), s.sorted_display());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let v = Vocabulary::new();
        let a = FactStore::from_source(Arc::clone(&v), "p(b). p(a).").unwrap();
        let b = FactStore::from_source(Arc::clone(&v), "p(a). p(b).").unwrap();
        assert_eq!(
            Snapshot::of(&a).to_json().unwrap(),
            Snapshot::of(&b).to_json().unwrap()
        );
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        assert!(Snapshot::from_json("{not json").is_err());
        let mut snap = Snapshot::default();
        snap.relations.insert(
            "p".into(),
            RelationSnapshot {
                arity: 2,
                tuples: vec![vec![Const::sym("a")]],
            },
        );
        assert!(snap.restore(Vocabulary::new()).is_err());
    }

    #[test]
    fn empty_snapshot() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        let restored = snap.restore(Vocabulary::new()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn checkpoint_shares_shards_and_isolates_mutation() {
        let mut s = FactStore::from_source(Vocabulary::new(), "p(a). q(b).").unwrap();
        let cp = Checkpoint::capture(&s);
        assert_eq!(cp.len(), 2);
        assert!(!cp.is_empty());
        // Mutate the live store after the capture.
        let p = s.vocab().lookup_pred("p").unwrap();
        let c = s
            .vocab()
            .encode(crate::value::Value::Sym(s.vocab().sym("c")));
        s.insert_row(p, &[c]);
        assert_eq!(s.len(), 3);
        // The checkpoint still sees the captured state.
        let restored = cp.restore();
        assert_eq!(restored.sorted_display(), vec!["p(a)", "q(b)"]);
        // Restoring twice is fine; the live store is unaffected.
        assert_eq!(cp.restore().len(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn checkpoint_counters_advance() {
        let s = FactStore::from_source(Vocabulary::new(), "p(a).").unwrap();
        let captures_before = snapshot_captures();
        let reuses_before = snapshot_shard_reuses();
        let cp = Checkpoint::capture(&s);
        let _ = cp.restore();
        assert_eq!(snapshot_captures(), captures_before + 1);
        assert!(snapshot_shard_reuses() >= reuses_before + 2);
    }
}
