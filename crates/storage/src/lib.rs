//! # park-storage
//!
//! The relational storage substrate of the PARK active-rule system.
//!
//! The paper assumes its semantics is "easily implementable on top of a
//! commercial DBMS" (Section 3); this crate plays the DBMS role: database
//! instances are [`FactStore`]s — sets of ground atoms organized into
//! per-predicate [`Relation`]s with hash indexes — over a shared, interned
//! [`Vocabulary`]. Transaction updates (`U` in Section 4.3) are
//! [`UpdateSet`]s, and [`Snapshot`] provides a portable, JSON-serializable
//! image for persistence.
//!
//! ```
//! use park_storage::{FactStore, Vocabulary};
//!
//! let vocab = Vocabulary::new();
//! let db = FactStore::from_source(vocab, "emp(alice). payroll(alice, 50000).").unwrap();
//! assert_eq!(db.len(), 2);
//! assert_eq!(db.to_string(), "{emp(alice), payroll(alice, 50000)}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod relation;
pub mod snapshot;
pub mod store;
pub mod updates;
pub mod value;
pub mod vocab;

pub use error::StorageError;
pub use relation::{ColumnMask, Relation};
pub use snapshot::{RelationSnapshot, Snapshot};
pub use store::FactStore;
pub use updates::{Update, UpdateSet};
pub use value::{SymId, Tuple, Value};
pub use vocab::{PredId, Vocabulary};
