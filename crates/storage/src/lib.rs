//! # park-storage
//!
//! The relational storage substrate of the PARK active-rule system.
//!
//! The paper assumes its semantics is "easily implementable on top of a
//! commercial DBMS" (Section 3); this crate plays the DBMS role: database
//! instances are [`FactStore`]s — sets of ground atoms organized into
//! per-predicate [`Relation`] shards over a shared, interned
//! [`Vocabulary`]. Constants are interned to 4-byte [`Code`]s and each
//! shard is a contiguous columnar arena with hash indexes; shards sit
//! behind `Arc`, so store clones and [`snapshot::Checkpoint`]s are
//! copy-on-write — O(changed shards), never O(facts). Transaction updates
//! (`U` in Section 4.3) are [`UpdateSet`]s, and [`Snapshot`] provides a
//! portable, JSON-serializable image for persistence. See
//! `docs/storage.md` for the full design.
//!
//! ```
//! use park_storage::{FactStore, Vocabulary};
//!
//! let vocab = Vocabulary::new();
//! let db = FactStore::from_source(vocab, "emp(alice). payroll(alice, 50000).").unwrap();
//! assert_eq!(db.len(), 2);
//! assert_eq!(db.to_string(), "{emp(alice), payroll(alice, 50000)}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod relation;
pub mod snapshot;
pub mod store;
pub mod updates;
pub mod value;
pub mod vocab;

pub use error::StorageError;
pub use hash::{FxHashMap, FxHashSet};
pub use relation::{ColumnMask, Relation};
pub use snapshot::{
    snapshot_captures, snapshot_shard_reuses, Checkpoint, RelationSnapshot, Snapshot,
};
pub use store::{cow_shard_clones, FactStore};
pub use updates::{Update, UpdateSet};
pub use value::{Code, SymId, Tuple, Value};
pub use vocab::{PredId, Vocabulary};
