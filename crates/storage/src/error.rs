//! Storage-layer errors.

use std::fmt;

/// An error raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// The arity it was registered with.
        expected: usize,
        /// The conflicting arity.
        got: usize,
    },
    /// A tuple of the wrong arity was offered to a relation.
    TupleArity {
        /// The predicate name.
        pred: String,
        /// The relation's arity.
        expected: usize,
        /// The tuple's arity.
        got: usize,
    },
    /// An atom expected to be ground contained a variable.
    NonGround {
        /// The offending variable.
        var: String,
    },
    /// A snapshot could not be decoded.
    Snapshot(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate `{pred}` has arity {expected} but was used with arity {got}"
            ),
            StorageError::TupleArity {
                pred,
                expected,
                got,
            } => write!(
                f,
                "relation `{pred}` stores {expected}-tuples but was offered a {got}-tuple"
            ),
            StorageError::NonGround { var } => {
                write!(f, "expected a ground atom but variable `{var}` occurs")
            }
            StorageError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::ArityMismatch {
            pred: "p".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("`p`"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
    }
}
