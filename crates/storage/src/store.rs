//! The fact store: a database instance `D` as a set of ground atoms.
//!
//! A [`FactStore`] owns one [`Relation`] shard per predicate and shares a
//! [`Vocabulary`] with everything else in a PARK session. It is the concrete
//! representation of the paper's database instances, of the three zones of
//! an i-interpretation, and of PARK's result states.
//!
//! Shards are held behind `Arc`, so `FactStore::clone` is O(#shards): the
//! clones share every relation arena until one side mutates it
//! (copy-on-write via `Arc::make_mut`). Restart states, replay checkpoints
//! and the testkit oracle's cold copies all ride on this — a restart that
//! only ever grows two predicates deep-copies exactly those two shards.
//! The process-wide [`cow_shard_clones`] counter observes the deep copies
//! that do happen.
//!
//! The `Tuple`/`Value` API encodes into interned [`Code`] rows at this
//! boundary; the engine's hot paths use the `_row` variants directly and
//! never decode.

use crate::error::StorageError;
use crate::relation::{ColumnMask, Relation};
use crate::value::{Code, Tuple};
use crate::vocab::{PredId, Vocabulary};
use park_syntax::{parse_facts, Atom, Fact};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A list of facts as `(predicate, tuple)` pairs.
pub type FactList = Vec<(PredId, Tuple)>;

/// Process-wide count of relation shards deep-copied by copy-on-write
/// (a shared shard was mutated). Snapshots and clones that only share
/// never increment this.
static COW_SHARD_CLONES: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide copy-on-write shard-copy counter.
pub fn cow_shard_clones() -> u64 {
    COW_SHARD_CLONES.load(Ordering::Relaxed)
}

/// A set of ground atoms, organized per predicate into `Arc`-shared shards.
#[derive(Debug, Clone)]
pub struct FactStore {
    vocab: Arc<Vocabulary>,
    rels: Vec<Arc<Relation>>,
}

impl FactStore {
    /// An empty store over the given vocabulary.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        FactStore {
            vocab,
            rels: Vec::new(),
        }
    }

    /// Build a store from parsed facts, registering predicates as needed.
    pub fn from_facts(vocab: Arc<Vocabulary>, facts: &[Fact]) -> Result<Self, StorageError> {
        let mut store = FactStore::new(vocab);
        for f in facts {
            store.insert_atom(&f.atom)?;
        }
        Ok(store)
    }

    /// Parse a `.facts` source and build a store from it.
    pub fn from_source(vocab: Arc<Vocabulary>, src: &str) -> Result<Self, StorageError> {
        let facts = parse_facts(src).map_err(|e| StorageError::Snapshot(e.to_string()))?;
        FactStore::from_facts(vocab, &facts)
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The shard `Arc`s themselves — `snapshot::Checkpoint` captures these.
    pub(crate) fn shards(&self) -> &[Arc<Relation>] {
        &self.rels
    }

    /// Rebuild a store from captured shards.
    pub(crate) fn from_shards(vocab: Arc<Vocabulary>, rels: Vec<Arc<Relation>>) -> Self {
        FactStore { vocab, rels }
    }

    /// Mutable access to the shard for `pred`, extending the shard vector
    /// and copy-on-writing a shared arena as needed.
    fn rel_mut(&mut self, pred: PredId) -> &mut Relation {
        let idx = pred.0 as usize;
        if idx >= self.rels.len() {
            // Newly-registered predicates get empty relations of the right
            // arity lazily.
            let vocab = Arc::clone(&self.vocab);
            self.rels.extend((self.rels.len()..=idx).map(|i| {
                let arity = if i < vocab.pred_count() {
                    vocab.pred_arity(PredId(i as u32))
                } else {
                    0
                };
                Arc::new(Relation::new(arity))
            }));
        }
        let arc = &mut self.rels[idx];
        if Arc::strong_count(arc) > 1 {
            COW_SHARD_CLONES.fetch_add(1, Ordering::Relaxed);
        }
        Arc::make_mut(arc)
    }

    /// The relation for `pred`, if any tuples or indexes were created for it.
    pub fn relation(&self, pred: PredId) -> Option<&Relation> {
        self.rels.get(pred.0 as usize).map(Arc::as_ref)
    }

    /// Insert a tuple; returns `true` if new. Checks arity.
    pub fn insert(&mut self, pred: PredId, tuple: Tuple) -> Result<bool, StorageError> {
        let expected = self.vocab.pred_arity(pred);
        if tuple.arity() != expected {
            return Err(StorageError::TupleArity {
                pred: self.vocab.pred_name(pred).to_string(),
                expected,
                got: tuple.arity(),
            });
        }
        let row = self.vocab.encode_tuple(&tuple);
        Ok(self.rel_mut(pred).insert(&row))
    }

    /// Insert an encoded row; returns `true` if new. The caller guarantees
    /// the arity (rule heads are arity-checked at compile time).
    pub fn insert_row(&mut self, pred: PredId, row: &[Code]) -> bool {
        debug_assert_eq!(row.len(), self.vocab.pred_arity(pred));
        self.rel_mut(pred).insert(row)
    }

    /// Insert a ground AST atom.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, StorageError> {
        let (pred, tuple) = self.vocab.ground_atom(atom)?;
        self.insert(pred, tuple)
    }

    /// Membership test.
    pub fn contains(&self, pred: PredId, tuple: &Tuple) -> bool {
        let Some(rel) = self.relation(pred) else {
            return false;
        };
        if tuple.arity() != rel.arity() {
            return false;
        }
        rel.contains(&self.vocab.encode_tuple(tuple))
    }

    /// Membership test for an encoded row.
    pub fn contains_row(&self, pred: PredId, row: &[Code]) -> bool {
        self.relation(pred).is_some_and(|r| r.contains(row))
    }

    /// Membership test for an AST atom (false for unknown predicates).
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        let Some(pred) = self.vocab.lookup_pred(&atom.pred) else {
            return false;
        };
        match self.vocab.ground_atom(atom) {
            Ok((p, t)) => p == pred && self.contains(p, &t),
            Err(_) => false,
        }
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, pred: PredId, tuple: &Tuple) -> bool {
        if !self.contains(pred, tuple) {
            return false;
        }
        let row = self.vocab.encode_tuple(tuple);
        self.rel_mut(pred).remove(&row)
    }

    /// Remove an encoded row; returns `true` if it was present.
    pub fn remove_row(&mut self, pred: PredId, row: &[Code]) -> bool {
        if !self.contains_row(pred, row) {
            return false;
        }
        self.rel_mut(pred).remove(row)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.rels.iter().map(|r| r.len()).sum()
    }

    /// True if no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.rels.iter().all(|r| r.is_empty())
    }

    /// Total bytes of encoded tuple data across all shards.
    pub fn encoded_bytes(&self) -> usize {
        self.rels.iter().map(|r| r.encoded_bytes()).sum()
    }

    /// Remove every fact (predicates stay registered). Shared shards are
    /// replaced, not copied: clearing never pays a copy-on-write clone.
    pub fn clear(&mut self) {
        for r in &mut self.rels {
            if r.is_empty() {
                continue;
            }
            *r = Arc::new(Relation::new(r.arity()));
        }
    }

    /// Iterate over all facts as decoded `(pred, tuple)` pairs,
    /// predicate-major, in insertion order within each predicate.
    ///
    /// Rows live in columnar arenas, so tuples are materialized on the
    /// way out — this is a boundary/diagnostic path, not a join path; the
    /// engine iterates [`FactStore::iter_rows`] or probes relations
    /// directly.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, Tuple)> + '_ {
        self.iter_rows()
            .map(|(p, row)| (p, self.vocab.decode_row(row)))
    }

    /// Iterate over all encoded `(pred, row)` pairs, predicate-major, in
    /// insertion order within each predicate.
    pub fn iter_rows(&self) -> impl Iterator<Item = (PredId, &[Code])> {
        self.rels
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.rows().map(move |row| (PredId(i as u32), row)))
    }

    /// Predicates that currently have at least one tuple.
    pub fn nonempty_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.rels
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, _)| PredId(i as u32))
    }

    /// Insert every fact of `other` (which must share this store's
    /// vocabulary) into `self`.
    pub fn absorb(&mut self, other: &FactStore) -> Result<(), StorageError> {
        debug_assert!(
            Arc::ptr_eq(&self.vocab, &other.vocab),
            "vocabulary mismatch"
        );
        for p in other.nonempty_preds() {
            let rel = Arc::clone(&other.rels[p.0 as usize]);
            for row in rel.rows() {
                self.insert_row(p, row);
            }
        }
        Ok(())
    }

    /// Set equality of facts (ignores insertion order and indexes).
    pub fn same_facts(&self, other: &FactStore) -> bool {
        self.len() == other.len() && self.iter_rows().all(|(p, r)| other.contains_row(p, r))
    }

    /// The set difference from `self` to `other` (both over the same
    /// vocabulary): `(added, removed)` where `added = other − self` and
    /// `removed = self − other`, each sorted by rendered fact.
    pub fn diff(&self, other: &FactStore) -> (FactList, FactList) {
        debug_assert!(
            Arc::ptr_eq(&self.vocab, &other.vocab),
            "vocabulary mismatch"
        );
        let collect = |from: &FactStore, not_in: &FactStore| {
            let mut v: Vec<(PredId, Tuple)> = from
                .iter_rows()
                .filter(|(p, r)| !not_in.contains_row(*p, r))
                .map(|(p, r)| (p, self.vocab.decode_row(r)))
                .collect();
            v.sort_by_key(|(p, t)| self.vocab.display_fact(*p, t));
            v
        };
        (collect(other, self), collect(self, other))
    }

    /// Ensure an index on `pred` for the bound-column `mask`.
    ///
    /// Checked through a shared reference first: when a clone's shard
    /// already carries the index (the common case for restart states
    /// cloned from an indexed database), this is a no-op that never
    /// triggers a copy-on-write clone.
    pub fn ensure_index(&mut self, pred: PredId, mask: ColumnMask) {
        if mask.is_empty() {
            return;
        }
        if let Some(rel) = self.relation(pred) {
            if rel.has_index(mask) {
                return;
            }
        }
        self.rel_mut(pred).ensure_index(mask);
    }

    /// All facts rendered as text, sorted — the canonical form used in tests
    /// and traces.
    pub fn sorted_display(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .iter_rows()
            .map(|(p, r)| self.vocab.display_row(p, r))
            .collect();
        out.sort();
        out
    }

    /// Serialize to `.facts` source text (one fact per line, sorted).
    pub fn to_source(&self) -> String {
        let mut s = String::new();
        for fact in self.sorted_display() {
            s.push_str(&fact);
            s.push_str(".\n");
        }
        s
    }
}

impl fmt::Display for FactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.sorted_display().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn store(src: &str) -> FactStore {
        FactStore::from_source(Vocabulary::new(), src).unwrap()
    }

    #[test]
    fn build_from_source_and_display() {
        let s = store("p(b). p(a). q(a, 1).");
        assert_eq!(s.len(), 3);
        assert_eq!(s.sorted_display(), vec!["p(a)", "p(b)", "q(a, 1)"]);
        assert_eq!(s.to_string(), "{p(a), p(b), q(a, 1)}");
    }

    #[test]
    fn insert_and_contains_atoms() {
        let mut s = store("p(a).");
        assert!(s.contains_atom(&park_syntax::parse_ground_atom("p(a)").unwrap()));
        assert!(!s.contains_atom(&park_syntax::parse_ground_atom("p(b)").unwrap()));
        assert!(!s.contains_atom(&park_syntax::parse_ground_atom("zzz(b)").unwrap()));
        assert!(s
            .insert_atom(&park_syntax::parse_ground_atom("p(b)").unwrap())
            .unwrap());
        assert!(!s
            .insert_atom(&park_syntax::parse_ground_atom("p(b)").unwrap())
            .unwrap());
    }

    #[test]
    fn arity_is_enforced_on_insert() {
        let v = Vocabulary::new();
        let mut s = FactStore::new(Arc::clone(&v));
        let p = v.pred("p", 2).unwrap();
        let e = s.insert(p, Tuple::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(e, StorageError::TupleArity { .. }));
    }

    #[test]
    fn remove_and_len() {
        let mut s = store("p(a). p(b).");
        let p = s.vocab().lookup_pred("p").unwrap();
        let a = s.vocab().sym("a");
        assert!(s.remove(p, &Tuple::new(vec![Value::Sym(a)])));
        assert_eq!(s.len(), 1);
        assert!(!s.remove(p, &Tuple::new(vec![Value::Sym(a)])));
    }

    #[test]
    fn row_api_round_trips() {
        let mut s = store("p(a).");
        let p = s.vocab().lookup_pred("p").unwrap();
        let b = s.vocab().encode(Value::Sym(s.vocab().sym("b")));
        assert!(s.insert_row(p, &[b]));
        assert!(!s.insert_row(p, &[b]));
        assert!(s.contains_row(p, &[b]));
        assert!(s.contains(p, &Tuple::new(vec![Value::Sym(s.vocab().sym("b"))])));
        assert!(s.remove_row(p, &[b]));
        assert!(!s.remove_row(p, &[b]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_facts_ignores_order() {
        let v = Vocabulary::new();
        let a = FactStore::from_source(Arc::clone(&v), "p(a). p(b).").unwrap();
        let b = FactStore::from_source(Arc::clone(&v), "p(b). p(a).").unwrap();
        assert!(a.same_facts(&b));
        let c = FactStore::from_source(Arc::clone(&v), "p(a).").unwrap();
        assert!(!a.same_facts(&c));
        assert!(!c.same_facts(&a));
    }

    #[test]
    fn absorb_unions_stores() {
        let v = Vocabulary::new();
        let mut a = FactStore::from_source(Arc::clone(&v), "p(a).").unwrap();
        let b = FactStore::from_source(Arc::clone(&v), "p(b). q(1).").unwrap();
        a.absorb(&b).unwrap();
        assert_eq!(a.sorted_display(), vec!["p(a)", "p(b)", "q(1)"]);
    }

    #[test]
    fn diff_reports_added_and_removed() {
        let v = Vocabulary::new();
        let a = FactStore::from_source(Arc::clone(&v), "p(a). p(b). q(1).").unwrap();
        let b = FactStore::from_source(Arc::clone(&v), "p(b). p(c). r(x).").unwrap();
        let (added, removed) = a.diff(&b);
        let show = |xs: &[(crate::vocab::PredId, Tuple)]| {
            xs.iter()
                .map(|(p, t)| v.display_fact(*p, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(show(&added), vec!["p(c)", "r(x)"]);
        assert_eq!(show(&removed), vec!["p(a)", "q(1)"]);
        let (added, removed) = a.diff(&a);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    fn to_source_roundtrips() {
        let s = store("p(a). q(a, 1). r.");
        let v2 = Vocabulary::new();
        let s2 = FactStore::from_source(v2, &s.to_source()).unwrap();
        assert_eq!(s.sorted_display(), s2.sorted_display());
    }

    #[test]
    fn iter_covers_all_predicates() {
        let s = store("p(a). q(b). q(c).");
        assert_eq!(s.iter().count(), 3);
        assert_eq!(s.iter_rows().count(), 3);
        assert_eq!(s.nonempty_preds().count(), 2);
    }

    #[test]
    fn clear_keeps_vocabulary() {
        let mut s = store("p(a).");
        let preds_before = s.vocab().pred_count();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.vocab().pred_count(), preds_before);
    }

    #[test]
    fn propositional_facts() {
        let s = store("alarm. shutdown.");
        assert_eq!(s.sorted_display(), vec!["alarm", "shutdown"]);
        assert!(s.contains_atom(&Atom::prop("alarm")));
    }

    #[test]
    fn clone_shares_shards_until_mutation() {
        let s = store("p(a). p(b). q(1).");
        let p = s.vocab().lookup_pred("p").unwrap();
        let q = s.vocab().lookup_pred("q").unwrap();
        let mut c = s.clone();
        // All shards shared after the clone.
        assert!(Arc::ptr_eq(
            &s.shards()[p.0 as usize],
            &c.shards()[p.0 as usize]
        ));
        let before = cow_shard_clones();
        let val = s.vocab().encode(Value::Sym(s.vocab().sym("c")));
        c.insert_row(p, &[val]);
        // Only the mutated shard was copied.
        assert!(!Arc::ptr_eq(
            &s.shards()[p.0 as usize],
            &c.shards()[p.0 as usize]
        ));
        assert!(Arc::ptr_eq(
            &s.shards()[q.0 as usize],
            &c.shards()[q.0 as usize]
        ));
        assert_eq!(cow_shard_clones(), before + 1);
        // The original is untouched.
        assert_eq!(s.len(), 3);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn ensure_index_on_indexed_clone_does_not_copy() {
        let mut s = store("e(a, b). e(a, c).");
        let e = s.vocab().lookup_pred("e").unwrap();
        let mask = ColumnMask::from_cols([0]);
        s.ensure_index(e, mask);
        let mut c = s.clone();
        let before = cow_shard_clones();
        c.ensure_index(e, mask);
        assert_eq!(cow_shard_clones(), before, "no copy for a present index");
        assert!(Arc::ptr_eq(
            &s.shards()[e.0 as usize],
            &c.shards()[e.0 as usize]
        ));
    }

    #[test]
    fn encoded_bytes_accounts_arenas() {
        let s = store("e(a, b). e(a, c). p(x).");
        assert_eq!(s.encoded_bytes(), (2 * 2 + 1) * 4);
    }
}
