//! The vocabulary: interned constant symbols and the predicate catalog.
//!
//! A [`Vocabulary`] is shared (via `Arc`) between the fact stores, the
//! compiled program, and the engine, so that a [`SymId`] or [`PredId`] means
//! the same thing everywhere. Interning uses interior mutability
//! (`parking_lot::RwLock`) so read-mostly paths stay cheap.

use crate::error::StorageError;
use crate::value::{Code, SymId, Tuple, Value};
use park_syntax::{Atom, Const, Term};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The big-integer spill table: integers outside the small inline range
/// `[-2^30, 2^30)` intern here and encode as spill codes.
#[derive(Debug, Default)]
struct IntSpills {
    values: Vec<i64>,
    by_value: HashMap<i64, u32>,
}

/// An interned predicate symbol (name + fixed arity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

#[derive(Debug, Default)]
struct Symbols {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, SymId>,
}

#[derive(Debug, Clone)]
struct PredInfo {
    name: Arc<str>,
    arity: usize,
}

#[derive(Debug, Default)]
struct Catalog {
    preds: Vec<PredInfo>,
    by_name: HashMap<Arc<str>, PredId>,
}

/// Interned symbols and predicates. Cheap to share as `Arc<Vocabulary>`.
#[derive(Debug, Default)]
pub struct Vocabulary {
    symbols: RwLock<Symbols>,
    catalog: RwLock<Catalog>,
    spills: RwLock<IntSpills>,
}

impl Vocabulary {
    /// A fresh, empty vocabulary.
    pub fn new() -> Arc<Self> {
        Arc::new(Vocabulary::default())
    }

    /// Intern a constant symbol.
    pub fn sym(&self, name: &str) -> SymId {
        if let Some(&id) = self.symbols.read().by_name.get(name) {
            return id;
        }
        let mut w = self.symbols.write();
        if let Some(&id) = w.by_name.get(name) {
            return id;
        }
        let id = SymId(u32::try_from(w.names.len()).expect("symbol table overflow"));
        let name: Arc<str> = Arc::from(name);
        w.names.push(Arc::clone(&name));
        w.by_name.insert(name, id);
        id
    }

    /// The textual name of an interned symbol.
    pub fn sym_name(&self, id: SymId) -> Arc<str> {
        Arc::clone(&self.symbols.read().names[id.0 as usize])
    }

    /// Intern a predicate with the given arity.
    ///
    /// Fails with [`StorageError::ArityMismatch`] if the predicate was
    /// registered before with a different arity — the paper assumes a single
    /// Herbrand base, so a predicate has one arity.
    pub fn pred(&self, name: &str, arity: usize) -> Result<PredId, StorageError> {
        if let Some(&id) = self.catalog.read().by_name.get(name) {
            let existing = self.catalog.read().preds[id.0 as usize].arity;
            if existing != arity {
                return Err(StorageError::ArityMismatch {
                    pred: name.to_string(),
                    expected: existing,
                    got: arity,
                });
            }
            return Ok(id);
        }
        let mut w = self.catalog.write();
        if let Some(&id) = w.by_name.get(name) {
            let existing = w.preds[id.0 as usize].arity;
            if existing != arity {
                return Err(StorageError::ArityMismatch {
                    pred: name.to_string(),
                    expected: existing,
                    got: arity,
                });
            }
            return Ok(id);
        }
        let id = PredId(u32::try_from(w.preds.len()).expect("predicate table overflow"));
        let name: Arc<str> = Arc::from(name);
        w.preds.push(PredInfo {
            name: Arc::clone(&name),
            arity,
        });
        w.by_name.insert(name, id);
        Ok(id)
    }

    /// Look up a predicate without registering it.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.catalog.read().by_name.get(name).copied()
    }

    /// The name of a predicate.
    pub fn pred_name(&self, id: PredId) -> Arc<str> {
        Arc::clone(&self.catalog.read().preds[id.0 as usize].name)
    }

    /// The arity of a predicate.
    pub fn pred_arity(&self, id: PredId) -> usize {
        self.catalog.read().preds[id.0 as usize].arity
    }

    /// Number of registered predicates.
    pub fn pred_count(&self) -> usize {
        self.catalog.read().preds.len()
    }

    /// Number of interned symbols.
    pub fn sym_count(&self) -> usize {
        self.symbols.read().names.len()
    }

    /// Number of spilled big integers (|i| ≥ 2^30) interned so far.
    pub fn spill_count(&self) -> usize {
        self.spills.read().values.len()
    }

    /// Compare two values *portably*: symbols by name, integers
    /// numerically, all symbols before all integers. This is `Value`'s
    /// class order, but independent of intern-code allocation order — two
    /// vocabularies that interned the same constants in different orders
    /// agree on it, which is what observable sorts (query answers,
    /// rendered fact lists) must use.
    pub fn cmp_values(&self, a: Value, b: Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (a, b) {
            (Value::Sym(x), Value::Sym(y)) => {
                if x == y {
                    Ordering::Equal
                } else {
                    self.sym_name(x).cmp(&self.sym_name(y))
                }
            }
            (Value::Sym(_), Value::Int(_)) => Ordering::Less,
            (Value::Int(_), Value::Sym(_)) => Ordering::Greater,
            (Value::Int(x), Value::Int(y)) => x.cmp(&y),
        }
    }

    /// Lexicographic [`Vocabulary::cmp_values`] over tuples.
    pub fn cmp_tuples(&self, a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
        for (x, y) in a.values().iter().zip(b.values()) {
            match self.cmp_values(*x, *y) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        a.arity().cmp(&b.arity())
    }

    /// Encode a runtime value into its 4-byte intern [`Code`].
    ///
    /// Symbols and small integers (|i| < 2^30) encode by pure arithmetic;
    /// big integers intern into the spill table on first sight. The
    /// encoding is injective within one vocabulary.
    #[inline]
    pub fn encode(&self, v: Value) -> Code {
        match v {
            Value::Sym(s) => Code::from_sym(s),
            Value::Int(i) => match Code::from_small_int(i) {
                Some(c) => c,
                None => self.spill(i),
            },
        }
    }

    /// Decode an intern [`Code`] back to its runtime value.
    #[inline]
    pub fn decode(&self, c: Code) -> Value {
        if let Some(s) = c.as_sym() {
            Value::Sym(s)
        } else if let Some(i) = c.as_small_int() {
            Value::Int(i)
        } else {
            let idx = c.spill_index().expect("exhaustive code tags");
            Value::Int(self.spills.read().values[idx as usize])
        }
    }

    /// Intern a big integer into the spill table (slow path of
    /// [`Vocabulary::encode`]).
    fn spill(&self, i: i64) -> Code {
        if let Some(&idx) = self.spills.read().by_value.get(&i) {
            return Code::from_spill(idx);
        }
        let mut w = self.spills.write();
        if let Some(&idx) = w.by_value.get(&i) {
            return Code::from_spill(idx);
        }
        let idx = u32::try_from(w.values.len()).expect("big-integer table overflow");
        w.values.push(i);
        w.by_value.insert(i, idx);
        Code::from_spill(idx)
    }

    /// Encode every value of a tuple into a boxed code row.
    pub fn encode_tuple(&self, t: &Tuple) -> Box<[Code]> {
        t.values().iter().map(|&v| self.encode(v)).collect()
    }

    /// Decode a code row back into a tuple.
    pub fn decode_row(&self, row: &[Code]) -> Tuple {
        row.iter().map(|&c| self.decode(c)).collect()
    }

    /// Render a `(PredId, &[Code])` row as text, e.g. `p(a, 3)` — the
    /// decoding twin of [`Vocabulary::display_fact`].
    pub fn display_row(&self, pred: PredId, row: &[Code]) -> String {
        self.display_fact(pred, &self.decode_row(row))
    }

    /// Convert an AST constant to a runtime value.
    pub fn value(&self, c: &Const) -> Value {
        match c {
            Const::Sym(s) => Value::Sym(self.sym(s)),
            Const::Int(i) => Value::Int(*i),
        }
    }

    /// Convert a runtime value back to an AST constant.
    pub fn constant(&self, v: Value) -> Const {
        match v {
            Value::Sym(id) => Const::Sym(self.sym_name(id).to_string()),
            Value::Int(i) => Const::Int(i),
        }
    }

    /// Convert a ground AST atom into a `(PredId, Tuple)` pair, registering
    /// the predicate. Fails on arity mismatch or a non-ground atom.
    pub fn ground_atom(&self, atom: &Atom) -> Result<(PredId, Tuple), StorageError> {
        let pred = self.pred(&atom.pred, atom.arity())?;
        let mut vals = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(c) => vals.push(self.value(c)),
                Term::Var(v) => {
                    return Err(StorageError::NonGround { var: v.clone() });
                }
            }
        }
        Ok((pred, Tuple::new(vals)))
    }

    /// Render a `(PredId, Tuple)` pair as a ground AST atom.
    pub fn atom(&self, pred: PredId, tuple: &Tuple) -> Atom {
        Atom::new(
            self.pred_name(pred).to_string(),
            tuple
                .values()
                .iter()
                .map(|&v| Term::Const(self.constant(v)))
                .collect(),
        )
    }

    /// Render a `(PredId, Tuple)` pair as text, e.g. `p(a, 3)`.
    pub fn display_fact(&self, pred: PredId, tuple: &Tuple) -> String {
        self.atom(pred, tuple).to_string()
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vocabulary: {} predicates, {} symbols",
            self.pred_count(),
            self.sym_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_syntax::parse_ground_atom;

    #[test]
    fn symbols_intern_idempotently() {
        let v = Vocabulary::new();
        let a = v.sym("alice");
        let b = v.sym("bob");
        assert_ne!(a, b);
        assert_eq!(v.sym("alice"), a);
        assert_eq!(&*v.sym_name(a), "alice");
        assert_eq!(v.sym_count(), 2);
    }

    #[test]
    fn predicates_enforce_single_arity() {
        let v = Vocabulary::new();
        let p = v.pred("p", 2).unwrap();
        assert_eq!(v.pred("p", 2).unwrap(), p);
        let e = v.pred("p", 3).unwrap_err();
        assert!(matches!(e, StorageError::ArityMismatch { .. }));
        assert_eq!(v.pred_arity(p), 2);
        assert_eq!(&*v.pred_name(p), "p");
    }

    #[test]
    fn ground_atom_roundtrip() {
        let v = Vocabulary::new();
        let atom = parse_ground_atom(r#"p(a, 3, "x y")"#).unwrap();
        let (pred, tuple) = v.ground_atom(&atom).unwrap();
        assert_eq!(v.atom(pred, &tuple), atom);
        assert_eq!(v.display_fact(pred, &tuple), "p(a, 3, \"x y\")");
    }

    #[test]
    fn ground_atom_rejects_variables() {
        let v = Vocabulary::new();
        let atom = Atom::new("p", vec![Term::var("X")]);
        assert!(matches!(
            v.ground_atom(&atom),
            Err(StorageError::NonGround { .. })
        ));
    }

    #[test]
    fn lookup_does_not_register() {
        let v = Vocabulary::new();
        assert!(v.lookup_pred("q").is_none());
        v.pred("q", 1).unwrap();
        assert!(v.lookup_pred("q").is_some());
    }

    #[test]
    fn encode_decode_round_trips_every_value_shape() {
        let v = Vocabulary::new();
        let shapes = [
            Value::Sym(v.sym("a")),
            Value::Sym(v.sym("z")),
            Value::Int(0),
            Value::Int(-1),
            Value::Int((1 << 30) - 1),
            Value::Int(-(1 << 30)),
            Value::Int(1 << 30),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
        ];
        for val in shapes {
            assert_eq!(v.decode(v.encode(val)), val, "{val:?}");
            // Injective: re-encoding yields the same code.
            assert_eq!(v.encode(val), v.encode(val));
        }
        // Distinct values get distinct codes.
        let codes: std::collections::HashSet<_> = shapes.iter().map(|&x| v.encode(x)).collect();
        assert_eq!(codes.len(), shapes.len());
    }

    #[test]
    fn spilled_ints_intern_idempotently() {
        let v = Vocabulary::new();
        let big = 1i64 << 40;
        let c1 = v.encode(Value::Int(big));
        let c2 = v.encode(Value::Int(big));
        assert_eq!(c1, c2);
        assert!(c1.spill_index().is_some());
        assert_eq!(v.decode(c1), Value::Int(big));
    }

    #[test]
    fn tuple_row_round_trip() {
        let v = Vocabulary::new();
        let t = Tuple::new(vec![
            Value::Sym(v.sym("x")),
            Value::Int(7),
            Value::Int(1 << 35),
        ]);
        let row = v.encode_tuple(&t);
        assert_eq!(row.len(), 3);
        assert_eq!(v.decode_row(&row), t);
        let p = v.pred("p", 3).unwrap();
        assert_eq!(v.display_row(p, &row), v.display_fact(p, &t));
    }

    #[test]
    fn spill_count_tracks_big_integers() {
        let v = Vocabulary::new();
        assert_eq!(v.spill_count(), 0);
        v.encode(Value::Int(1 << 40));
        v.encode(Value::Int(1 << 40)); // idempotent
        v.encode(Value::Int(i64::MIN));
        assert_eq!(v.spill_count(), 2);
    }

    #[test]
    fn cmp_values_is_intern_order_independent() {
        use std::cmp::Ordering;
        // Two vocabularies interning the same symbols in opposite orders
        // must agree: names, not allocation-order SymIds, decide.
        let fwd = Vocabulary::new();
        let (fa, fz) = (fwd.sym("alpha"), fwd.sym("zeta"));
        let rev = Vocabulary::new();
        let (rz, ra) = (rev.sym("zeta"), rev.sym("alpha"));
        assert_eq!(
            fwd.cmp_values(Value::Sym(fa), Value::Sym(fz)),
            Ordering::Less
        );
        assert_eq!(
            rev.cmp_values(Value::Sym(ra), Value::Sym(rz)),
            Ordering::Less
        );
        // Raw Value order disagrees in the reversed vocabulary — the bug
        // this helper exists to avoid.
        assert!(Value::Sym(ra) > Value::Sym(rz));
        // Class order: symbols before integers, integers numeric.
        assert_eq!(
            fwd.cmp_values(Value::Sym(fz), Value::Int(-5)),
            Ordering::Less
        );
        assert_eq!(
            fwd.cmp_values(Value::Int(3), Value::Sym(fa)),
            Ordering::Greater
        );
        assert_eq!(
            fwd.cmp_values(Value::Int(2), Value::Int(10)),
            Ordering::Less
        );
        assert_eq!(
            fwd.cmp_values(Value::Sym(fa), Value::Sym(fa)),
            Ordering::Equal
        );
    }

    #[test]
    fn cmp_tuples_is_lexicographic_with_arity_tiebreak() {
        use std::cmp::Ordering;
        let v = Vocabulary::new();
        let (b, a) = (v.sym("b"), v.sym("a"));
        let t = |vals: &[Value]| Tuple::new(vals.to_vec());
        assert_eq!(
            v.cmp_tuples(&t(&[Value::Sym(a), Value::Int(2)]), &t(&[Value::Sym(b)])),
            Ordering::Less
        );
        assert_eq!(
            v.cmp_tuples(&t(&[Value::Sym(a)]), &t(&[Value::Sym(a), Value::Int(1)])),
            Ordering::Less
        );
        assert_eq!(v.cmp_tuples(&t(&[]), &t(&[])), Ordering::Equal);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let v = Vocabulary::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        v.sym(&format!("s{i}"));
                    }
                });
            }
        });
        assert_eq!(v.sym_count(), 100);
    }
}
