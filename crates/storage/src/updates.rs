//! Transaction update sets (the `U` of Section 4.3).
//!
//! An [`UpdateSet`] is an ordered collection of signed ground atoms `+a` /
//! `-a` that occurred during the user's transaction. The PARK engine models
//! them as body-less rules (`-> ±a.`), forming the extended program `P_U`.

use crate::error::StorageError;
use crate::value::Tuple;
use crate::vocab::{PredId, Vocabulary};
use park_syntax::{parse_updates, Atom, Sign};
use std::fmt;
use std::sync::Arc;

/// One transaction update: insert or delete one ground atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Update {
    /// Insert or delete.
    pub sign: Sign,
    /// The predicate.
    pub pred: PredId,
    /// The argument tuple.
    pub tuple: Tuple,
}

/// An ordered set of transaction updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateSet {
    items: Vec<Update>,
}

impl UpdateSet {
    /// The empty update set (plain condition–action evaluation).
    pub fn empty() -> Self {
        UpdateSet::default()
    }

    /// Parse an update source like `+q(b). -p(a).` against a vocabulary.
    pub fn from_source(vocab: &Arc<Vocabulary>, src: &str) -> Result<Self, StorageError> {
        let parsed = parse_updates(src).map_err(|e| StorageError::Snapshot(e.to_string()))?;
        let mut set = UpdateSet::empty();
        for (sign, atom) in &parsed {
            set.push_atom(vocab, *sign, atom)?;
        }
        Ok(set)
    }

    /// Append an update from an AST atom.
    pub fn push_atom(
        &mut self,
        vocab: &Arc<Vocabulary>,
        sign: Sign,
        atom: &Atom,
    ) -> Result<(), StorageError> {
        let (pred, tuple) = vocab.ground_atom(atom)?;
        self.items.push(Update { sign, pred, tuple });
        Ok(())
    }

    /// Append an insertion.
    pub fn insert(&mut self, pred: PredId, tuple: Tuple) {
        self.items.push(Update {
            sign: Sign::Insert,
            pred,
            tuple,
        });
    }

    /// Append a deletion.
    pub fn delete(&mut self, pred: PredId, tuple: Tuple) {
        self.items.push(Update {
            sign: Sign::Delete,
            pred,
            tuple,
        });
    }

    /// The updates in order.
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.items.iter()
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if there are no updates.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Render against a vocabulary, e.g. `+q(b). -p(a).`.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let mut s = String::new();
        for (i, u) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push(u.sign.prefix());
            s.push_str(&vocab.display_fact(u.pred, &u.tuple));
            s.push('.');
        }
        s
    }
}

impl fmt::Display for UpdateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} updates>", self.items.len())
    }
}

impl IntoIterator for UpdateSet {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let v = Vocabulary::new();
        let u = UpdateSet::from_source(&v, "+q(b). -p(a, 1).").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.display(&v), "+q(b). -p(a, 1).");
        let u2 = UpdateSet::from_source(&v, &u.display(&v)).unwrap();
        assert_eq!(u, u2);
    }

    #[test]
    fn programmatic_construction() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let mut u = UpdateSet::empty();
        assert!(u.is_empty());
        u.insert(q, Tuple::new(vec![crate::value::Value::Sym(v.sym("b"))]));
        u.delete(q, Tuple::new(vec![crate::value::Value::Sym(v.sym("c"))]));
        assert_eq!(u.len(), 2);
        let signs: Vec<Sign> = u.iter().map(|x| x.sign).collect();
        assert_eq!(signs, vec![Sign::Insert, Sign::Delete]);
    }

    #[test]
    fn bad_source_is_rejected() {
        let v = Vocabulary::new();
        assert!(UpdateSet::from_source(&v, "q(b).").is_err());
    }
}
