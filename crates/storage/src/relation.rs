//! Relations: deduplicated tuple sets with hash indexes.
//!
//! A [`Relation`] stores the extension of one predicate. Tuples are kept in
//! insertion order (the engine's traces rely on deterministic iteration) and
//! deduplicated through a position map. Point and prefix lookups go through
//! hash indexes keyed by a [`ColumnMask`] of bound columns; indexes are
//! created on demand ([`Relation::ensure_index`]) and maintained
//! incrementally on insertion. Removal invalidates indexes (they are rebuilt
//! lazily), which is fine for PARK evaluation: i-interpretations only grow
//! within a run.

use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// A set of bound columns, as a bitmask. Supports arities up to 32 —
/// far beyond anything a rule language for ECA systems needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnMask(u32);

impl ColumnMask {
    /// The empty mask (no columns bound).
    pub const EMPTY: ColumnMask = ColumnMask(0);

    /// Build a mask from column positions.
    pub fn from_cols(cols: impl IntoIterator<Item = usize>) -> Self {
        let mut m = 0u32;
        for c in cols {
            assert!(c < 32, "column index {c} out of range for ColumnMask");
            m |= 1 << c;
        }
        ColumnMask(m)
    }

    /// True if column `i` is in the mask.
    pub fn contains(self, i: usize) -> bool {
        i < 32 && self.0 & (1 << i) != 0
    }

    /// True if no column is bound.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of bound columns.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over bound column positions in ascending order.
    pub fn cols(self) -> impl Iterator<Item = usize> {
        (0..32).filter(move |&i| self.0 & (1 << i) != 0)
    }
}

/// Extract the index key of `tuple` under `mask` (values of bound columns,
/// ascending by position).
fn key_of(mask: ColumnMask, tuple: &Tuple) -> Box<[Value]> {
    mask.cols().map(|c| tuple[c]).collect()
}

/// The extension of one predicate.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    positions: HashMap<Tuple, u32>,
    indexes: HashMap<ColumnMask, HashMap<Box<[Value]>, Vec<u32>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.positions.contains_key(tuple)
    }

    /// All tuples, in insertion order.
    pub fn scan(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// Panics in debug builds on arity mismatch; the [`crate::store::FactStore`]
    /// validates arity before reaching this point.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.arity, "tuple arity mismatch");
        if self.positions.contains_key(&tuple) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation too large");
        for (mask, index) in &mut self.indexes {
            index.entry(key_of(*mask, &tuple)).or_default().push(pos);
        }
        self.positions.insert(tuple.clone(), pos);
        self.tuples.push(tuple);
        true
    }

    /// Remove a tuple; returns `true` if it was present.
    ///
    /// Invalidates all indexes (rebuilt lazily by [`Relation::ensure_index`]).
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let Some(pos) = self.positions.remove(tuple) else {
            return false;
        };
        let pos = pos as usize;
        self.tuples.swap_remove(pos);
        if pos < self.tuples.len() {
            // The previously-last tuple moved into `pos`.
            let moved = self.tuples[pos].clone();
            self.positions.insert(moved, pos as u32);
        }
        self.indexes.clear();
        true
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.positions.clear();
        self.indexes.clear();
    }

    /// Ensure a hash index exists for `mask`. No-op for the empty mask
    /// (a full scan serves it).
    pub fn ensure_index(&mut self, mask: ColumnMask) {
        if mask.is_empty() || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: HashMap<Box<[Value]>, Vec<u32>> = HashMap::new();
        for (pos, t) in self.tuples.iter().enumerate() {
            index.entry(key_of(mask, t)).or_default().push(pos as u32);
        }
        self.indexes.insert(mask, index);
    }

    /// True if an index for `mask` is currently built.
    pub fn has_index(&self, mask: ColumnMask) -> bool {
        self.indexes.contains_key(&mask)
    }

    /// Probe the index for `mask` with `key` (values of the bound columns in
    /// ascending position order). Returns matching tuples.
    ///
    /// Falls back to a full scan if the index does not exist; callers on hot
    /// paths should [`Relation::ensure_index`] up front.
    pub fn probe<'a>(
        &'a self,
        mask: ColumnMask,
        key: &[Value],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(mask.count(), key.len());
        if mask.is_empty() {
            return Box::new(self.tuples.iter());
        }
        if let Some(index) = self.indexes.get(&mask) {
            match index.get(key) {
                Some(poss) => Box::new(poss.iter().map(move |&p| &self.tuples[p as usize])),
                None => Box::new(std::iter::empty()),
            }
        } else {
            // Unindexed fallback: filter a scan.
            let key = key.to_vec();
            Box::new(
                self.tuples
                    .iter()
                    .filter(move |t| mask.cols().zip(key.iter()).all(|(c, &v)| t[c] == v)),
            )
        }
    }

    /// Count tuples matching `key` under `mask` (used by the join planner's
    /// selectivity estimates and by tests).
    pub fn probe_count(&self, mask: ColumnMask, key: &[Value]) -> usize {
        self.probe(mask, key).count()
    }

    /// Probe restricted to tuples whose insertion position lies in
    /// `[lo, hi)`.
    ///
    /// Insertion positions are stable while the relation only grows, which
    /// is exactly the engine's i-interpretation discipline within a run;
    /// semi-naive evaluation uses position windows as its delta sets.
    /// Like [`Relation::probe`], falls back to a scan when unindexed.
    pub fn probe_in_range<'a>(
        &'a self,
        mask: ColumnMask,
        key: &[Value],
        lo: u32,
        hi: u32,
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(mask.count(), key.len());
        let lo = lo as usize;
        let hi = (hi as usize).min(self.tuples.len());
        if lo >= hi {
            return Box::new(std::iter::empty());
        }
        if mask.is_empty() {
            return Box::new(self.tuples[lo..hi].iter());
        }
        if let Some(index) = self.indexes.get(&mask) {
            match index.get(key) {
                Some(poss) => Box::new(
                    poss.iter()
                        .copied()
                        .filter(move |&p| (p as usize) >= lo && (p as usize) < hi)
                        .map(move |p| &self.tuples[p as usize]),
                ),
                None => Box::new(std::iter::empty()),
            }
        } else {
            let key = key.to_vec();
            Box::new(
                self.tuples[lo..hi]
                    .iter()
                    .filter(move |t| mask.cols().zip(key.iter()).all(|(c, &v)| t[c] == v)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SymId;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn mask_construction_and_queries() {
        let m = ColumnMask::from_cols([0, 2]);
        assert!(m.contains(0));
        assert!(!m.contains(1));
        assert!(m.contains(2));
        assert_eq!(m.count(), 2);
        assert_eq!(m.cols().collect::<Vec<_>>(), vec![0, 2]);
        assert!(ColumnMask::EMPTY.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_rejects_wide_arities() {
        let _ = ColumnMask::from_cols([40]);
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut r = Relation::new(1);
        r.insert(t(&[3]));
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        assert_eq!(r.scan(), &[t(&[3]), t(&[1]), t(&[2])]);
    }

    #[test]
    fn remove_swaps_and_fixes_positions() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(t(&[i]));
        }
        assert!(r.remove(&t(&[1])));
        assert!(!r.remove(&t(&[1])));
        assert_eq!(r.len(), 4);
        // The remaining tuples must all still be findable.
        for i in [0, 2, 3, 4] {
            assert!(r.contains(&t(&[i])), "lost tuple {i}");
            assert!(r.remove(&t(&[i])));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn index_probe_matches_scan_filter() {
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (2, 10), (3, 30)] {
            r.insert(t(&[a, b]));
        }
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        assert!(r.has_index(m));
        let got: Vec<_> = r.probe(m, &[Value::Int(1)]).cloned().collect();
        assert_eq!(got, vec![t(&[1, 10]), t(&[1, 20])]);
        assert_eq!(r.probe_count(m, &[Value::Int(9)]), 0);
    }

    #[test]
    fn unindexed_probe_falls_back_to_scan() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[2, 20]));
        let m = ColumnMask::from_cols([1]);
        assert!(!r.has_index(m));
        let got: Vec<_> = r.probe(m, &[Value::Int(20)]).cloned().collect();
        assert_eq!(got, vec![t(&[2, 20])]);
    }

    #[test]
    fn index_is_maintained_on_insert() {
        let mut r = Relation::new(2);
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        r.insert(t(&[7, 1]));
        r.insert(t(&[7, 2]));
        assert_eq!(r.probe_count(m, &[Value::Int(7)]), 2);
    }

    #[test]
    fn remove_invalidates_indexes() {
        let mut r = Relation::new(1);
        let m = ColumnMask::from_cols([0]);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.ensure_index(m);
        r.remove(&t(&[1]));
        assert!(!r.has_index(m));
        // Fallback still answers correctly, and rebuild works.
        assert_eq!(r.probe_count(m, &[Value::Int(2)]), 1);
        r.ensure_index(m);
        assert_eq!(r.probe_count(m, &[Value::Int(1)]), 0);
    }

    #[test]
    fn empty_mask_probe_is_full_scan() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        assert_eq!(r.probe(ColumnMask::EMPTY, &[]).count(), 2);
    }

    #[test]
    fn full_mask_point_lookup() {
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![Value::Sym(SymId(0)), Value::Int(1)]));
        let m = ColumnMask::from_cols([0, 1]);
        r.ensure_index(m);
        assert_eq!(r.probe_count(m, &[Value::Sym(SymId(0)), Value::Int(1)]), 1);
        assert_eq!(r.probe_count(m, &[Value::Sym(SymId(0)), Value::Int(2)]), 0);
    }

    #[test]
    fn probe_in_range_windows_by_insertion_position() {
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (2, 10), (1, 30)] {
            r.insert(t(&[a, b]));
        }
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        // Window [2, 4): only t(2,10) and t(1,30) are visible.
        let got: Vec<_> = r
            .probe_in_range(m, &[Value::Int(1)], 2, 4)
            .cloned()
            .collect();
        assert_eq!(got, vec![t(&[1, 30])]);
        // Full window equals plain probe.
        assert_eq!(
            r.probe_in_range(m, &[Value::Int(1)], 0, 4).count(),
            r.probe_count(m, &[Value::Int(1)])
        );
        // Empty window.
        assert_eq!(r.probe_in_range(m, &[Value::Int(1)], 3, 3).count(), 0);
        // hi beyond len is clamped.
        assert_eq!(r.probe_in_range(m, &[Value::Int(1)], 0, 99).count(), 3);
        // Unindexed fallback agrees.
        let m1 = ColumnMask::from_cols([1]);
        let got: Vec<_> = r
            .probe_in_range(m1, &[Value::Int(10)], 1, 4)
            .cloned()
            .collect();
        assert_eq!(got, vec![t(&[2, 10])]);
        // Empty-mask range scan.
        assert_eq!(r.probe_in_range(ColumnMask::EMPTY, &[], 1, 3).count(), 2);
    }

    #[test]
    fn clear_empties_everything() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.ensure_index(ColumnMask::from_cols([0]));
        r.clear();
        assert!(r.is_empty());
        assert!(!r.contains(&t(&[1])));
    }
}
