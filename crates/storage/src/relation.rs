//! A single relation (the extension of one predicate), stored as a
//! contiguous arena of interned code rows.
//!
//! Tuples live in one arity-strided `Vec<Code>` — four bytes per column,
//! no per-tuple boxing — and every auxiliary structure stores *positions*
//! into that arena. Deduplication and index lookups go through 64-bit
//! [`crate::hash`] hashes of rows/keys; hash collisions are tolerated by
//! verifying every candidate position against the arena before believing
//! a hit, so probes allocate nothing and are still exact.
//!
//! Iteration order is insertion order — the engine's deterministic merge
//! and the semi-naive delta windows both depend on it. `remove` uses
//! swap-remove (the last row fills the hole) and invalidates secondary
//! indexes by bumping the relation's *generation*; stale index entries are
//! retained (their bucket allocations are reused) and rebuilt lazily by
//! the next [`Relation::ensure_index`]. Inserts keep current-generation
//! indexes maintained incrementally, so an arena that only ever grows —
//! the common case for restart states cloned from an indexed database —
//! never rebuilds an index it already has.

use crate::hash::{hash_codes, hash_row, FxHashMap};
use crate::value::Code;

/// A set of bound columns, as a bitmask. Supports arities up to 32 —
/// far beyond anything a rule language for ECA systems needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnMask(u32);

impl ColumnMask {
    /// The empty mask (no columns bound).
    pub const EMPTY: ColumnMask = ColumnMask(0);

    /// Build a mask from column positions.
    pub fn from_cols(cols: impl IntoIterator<Item = usize>) -> Self {
        let mut m = 0u32;
        for c in cols {
            assert!(c < 32, "column index {c} out of range for ColumnMask");
            m |= 1 << c;
        }
        ColumnMask(m)
    }

    /// True if column `i` is in the mask.
    pub fn contains(self, i: usize) -> bool {
        i < 32 && self.0 & (1 << i) != 0
    }

    /// True if no column is bound.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of bound columns.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over bound column positions in ascending order.
    pub fn cols(self) -> impl Iterator<Item = usize> {
        (0..32).filter(move |&i| self.0 & (1 << i) != 0)
    }
}

/// Hash the key of `row` under `mask` without materializing it.
#[inline]
fn key_hash_of(mask: ColumnMask, row: &[Code]) -> u64 {
    hash_codes(mask.cols().map(|c| row[c]))
}

/// Positions (arena row indexes) bucketed by a 64-bit hash. Buckets hold
/// candidates in ascending position order; callers verify contents.
type HashBuckets = FxHashMap<u64, Vec<u32>>;

/// One secondary index, tagged with the arena generation it was built at.
/// An entry whose `built_at` lags the relation's current generation is
/// *stale*: unusable for probes, but its bucket allocations are retained
/// and reused by the next rebuild.
#[derive(Debug, Clone, Default)]
struct IndexEntry {
    built_at: u64,
    buckets: HashBuckets,
}

/// The extension of one predicate: a columnar arena of interned rows with
/// hash-verified dedup and secondary indexes.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    /// The row arena, `arity` codes per row, insertion order.
    rows: Vec<Code>,
    /// Number of rows (tracked separately so arity-0 relations work).
    count: u32,
    /// Arena generation: bumped by every operation that invalidates
    /// position-based indexes (`remove`'s swap-remove, `clear`). Inserts
    /// never bump it — they maintain current indexes incrementally.
    generation: u64,
    /// Row-hash → candidate positions, for dedup and point containment.
    positions: HashBuckets,
    /// Secondary indexes: key-hash → candidate positions per column mask,
    /// each tagged with the generation it reflects.
    indexes: FxHashMap<ColumnMask, IndexEntry>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The row at arena position `i` (insertion order).
    #[inline]
    pub fn row(&self, i: u32) -> &[Code] {
        &self.rows[i as usize * self.arity..(i as usize + 1) * self.arity]
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[Code]> + '_ {
        (0..self.count).map(move |i| self.row(i))
    }

    /// True if `row` is present.
    pub fn contains(&self, row: &[Code]) -> bool {
        self.position_of(row).is_some()
    }

    /// The arena position of `row`, if present.
    fn position_of(&self, row: &[Code]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.arity);
        self.positions
            .get(&hash_row(row))?
            .iter()
            .copied()
            .find(|&p| self.row(p) == row)
    }

    /// Insert a row; `false` if it was already present.
    pub fn insert(&mut self, row: &[Code]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let h = hash_row(row);
        if let Some(bucket) = self.positions.get(&h) {
            if bucket.iter().any(|&p| self.row(p) == row) {
                return false;
            }
        }
        let pos = self.count;
        assert!(pos != u32::MAX, "relation too large");
        self.rows.extend_from_slice(row);
        self.count += 1;
        self.positions.entry(h).or_default().push(pos);
        for (mask, index) in &mut self.indexes {
            if index.built_at == self.generation {
                index
                    .buckets
                    .entry(key_hash_of(*mask, row))
                    .or_default()
                    .push(pos);
            }
        }
        true
    }

    /// Remove a row; `false` if absent. The last row fills the hole
    /// (swap-remove), and all secondary indexes are invalidated by a
    /// generation bump — their allocations are retained and they rebuild
    /// lazily on the next [`Relation::ensure_index`].
    pub fn remove(&mut self, row: &[Code]) -> bool {
        let Some(pos) = self.position_of(row) else {
            return false;
        };
        let h = hash_row(row);
        let last = self.count - 1;
        // Drop the removed row's position entry.
        let bucket = self.positions.get_mut(&h).expect("present row is bucketed");
        bucket.retain(|&p| p != pos);
        if bucket.is_empty() {
            self.positions.remove(&h);
        }
        if pos != last {
            // Move the last row into the hole and repoint its bucket entry.
            let moved_hash = hash_row(self.row(last));
            let (head, tail) = self.rows.split_at_mut(last as usize * self.arity);
            head[pos as usize * self.arity..(pos as usize + 1) * self.arity]
                .copy_from_slice(&tail[..self.arity]);
            let bucket = self
                .positions
                .get_mut(&moved_hash)
                .expect("moved row is bucketed");
            for p in bucket.iter_mut() {
                if *p == last {
                    *p = pos;
                }
            }
            bucket.sort_unstable();
        }
        self.rows.truncate(last as usize * self.arity);
        self.count = last;
        self.generation += 1;
        true
    }

    /// Remove everything (indexes included).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.count = 0;
        self.generation += 1;
        self.positions.clear();
        self.indexes.clear();
    }

    /// Build the index for `mask` if absent or stale. The empty mask never
    /// gets an index (a probe on it is a scan by definition). A stale
    /// entry — invalidated by [`Relation::remove`]'s generation bump — is
    /// rebuilt in place, reusing its bucket allocations.
    pub fn ensure_index(&mut self, mask: ColumnMask) {
        if mask.is_empty() {
            return;
        }
        let generation = self.generation;
        if self
            .indexes
            .get(&mask)
            .is_some_and(|e| e.built_at == generation)
        {
            return;
        }
        let mut entry = self.indexes.remove(&mask).unwrap_or_default();
        entry.built_at = generation;
        entry.buckets.clear();
        for i in 0..self.count {
            entry
                .buckets
                .entry(key_hash_of(mask, self.row(i)))
                .or_default()
                .push(i);
        }
        self.indexes.insert(mask, entry);
    }

    /// True if a current (non-stale) index for `mask` is present.
    pub fn has_index(&self, mask: ColumnMask) -> bool {
        self.indexes
            .get(&mask)
            .is_some_and(|e| e.built_at == self.generation)
    }

    /// Raw candidate positions for `key_hash` under the `mask` index, in
    /// ascending insertion order — or `None` when no current index for
    /// `mask` exists. The positions are *hash candidates, not certainties*:
    /// the caller must verify each row's masked columns itself. This is the
    /// compiled evaluator's probe entry point — its register checks subsume
    /// the verification [`Relation::probe`] would otherwise repeat per
    /// candidate.
    #[inline]
    pub fn index_bucket(&self, mask: ColumnMask, key_hash: u64) -> Option<&[u32]> {
        let entry = self.indexes.get(&mask)?;
        if entry.built_at != self.generation {
            return None;
        }
        Some(entry.buckets.get(&key_hash).map_or(&[], Vec::as_slice))
    }

    /// Rows whose `mask` columns equal `key`, in insertion order.
    /// Allocation-free: index buckets are verified in place, the unindexed
    /// fallback is a filtered scan.
    pub fn probe<'a>(&'a self, mask: ColumnMask, key: &'a [Code]) -> ProbeIter<'a> {
        self.probe_in_range(mask, key, 0, self.count)
    }

    /// [`Relation::probe`] restricted to insertion positions `lo..hi`
    /// (`hi` is clamped to the current length) — the semi-naive delta
    /// windows probe through this.
    pub fn probe_in_range<'a>(
        &'a self,
        mask: ColumnMask,
        key: &'a [Code],
        lo: u32,
        hi: u32,
    ) -> ProbeIter<'a> {
        let hi = hi.min(self.count);
        let lo = lo.min(hi);
        debug_assert_eq!(key.len(), mask.count());
        let source = if mask.is_empty() {
            ProbeSource::Scan(lo)
        } else if let Some(bucket) = self.index_bucket(mask, hash_codes(key.iter().copied())) {
            // Candidates are ascending; narrow to the window.
            let start = bucket.partition_point(|&p| p < lo);
            ProbeSource::Bucket(&bucket[start..])
        } else {
            ProbeSource::Scan(lo)
        };
        ProbeIter {
            rel: self,
            mask,
            key,
            hi,
            source,
        }
    }

    /// Number of rows matching `key` under `mask`.
    pub fn probe_count(&self, mask: ColumnMask, key: &[Code]) -> usize {
        self.probe(mask, key).count()
    }

    /// Bytes of encoded tuple data in the arena.
    pub fn encoded_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<Code>()
    }

    /// Number of secondary indexes currently materialized (stale retained
    /// entries awaiting rebuild are not counted).
    pub fn index_count(&self) -> usize {
        self.indexes
            .values()
            .filter(|e| e.built_at == self.generation)
            .count()
    }
}

enum ProbeSource<'a> {
    /// Candidates from an index bucket (ascending positions, unverified).
    Bucket(&'a [u32]),
    /// Sequential scan cursor (next position to visit).
    Scan(u32),
}

/// Iterator over matching rows, yielded in insertion order. See
/// [`Relation::probe`].
pub struct ProbeIter<'a> {
    rel: &'a Relation,
    mask: ColumnMask,
    key: &'a [Code],
    hi: u32,
    source: ProbeSource<'a>,
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = &'a [Code];

    fn next(&mut self) -> Option<&'a [Code]> {
        let (rel, mask, key, hi) = (self.rel, self.mask, self.key, self.hi);
        // Verify the row at `pos` against the probe key on the masked
        // columns (index buckets are hash candidates, not certainties).
        let matches = move |pos: u32| {
            let row = rel.row(pos);
            mask.cols().zip(key).all(|(c, &k)| row[c] == k)
        };
        match &mut self.source {
            ProbeSource::Bucket(bucket) => loop {
                let (&pos, rest) = bucket.split_first()?;
                *bucket = rest;
                if pos >= hi {
                    // Ascending candidates: past the window means done.
                    *bucket = &[];
                    return None;
                }
                if matches(pos) {
                    return Some(rel.row(pos));
                }
            },
            ProbeSource::Scan(next) => loop {
                let pos = *next;
                if pos >= hi {
                    return None;
                }
                *next = pos + 1;
                if matches(pos) {
                    return Some(rel.row(pos));
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> Code {
        Code(n)
    }

    fn rel_with(rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(rows.first().map_or(0, |t| t.len()));
        for row in rows {
            let codes: Vec<Code> = row.iter().map(|&n| c(n)).collect();
            r.insert(&codes);
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(&[c(1), c(2)]));
        assert!(!r.insert(&[c(1), c(2)]));
        assert!(r.insert(&[c(2), c(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c(1), c(2)]));
        assert!(!r.contains(&[c(3), c(3)]));
    }

    #[test]
    fn rows_iterate_in_insertion_order() {
        let r = rel_with(&[&[3, 0], &[1, 1], &[2, 2]]);
        let got: Vec<Vec<Code>> = r.rows().map(|t| t.to_vec()).collect();
        assert_eq!(
            got,
            vec![vec![c(3), c(0)], vec![c(1), c(1)], vec![c(2), c(2)]]
        );
    }

    #[test]
    fn remove_swaps_last_into_hole() {
        let mut r = rel_with(&[&[1], &[2], &[3]]);
        assert!(r.remove(&[c(1)]));
        assert!(!r.remove(&[c(1)]));
        let got: Vec<Code> = r.rows().map(|t| t[0]).collect();
        assert_eq!(got, vec![c(3), c(2)]);
        assert!(r.contains(&[c(3)]));
        assert!(r.contains(&[c(2)]));
        assert_eq!(r.len(), 2);
        // Removing the (current) last row needs no swap.
        assert!(r.remove(&[c(2)]));
        let got: Vec<Code> = r.rows().map(|t| t[0]).collect();
        assert_eq!(got, vec![c(3)]);
    }

    #[test]
    fn indexes_are_maintained_on_insert() {
        let mut r = Relation::new(2);
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        r.insert(&[c(1), c(10)]);
        r.insert(&[c(1), c(11)]);
        r.insert(&[c(2), c(20)]);
        let hits: Vec<Code> = r.probe(m, &[c(1)]).map(|t| t[1]).collect();
        assert_eq!(hits, vec![c(10), c(11)]);
        assert_eq!(r.probe_count(m, &[c(2)]), 1);
        assert_eq!(r.probe_count(m, &[c(9)]), 0);
    }

    #[test]
    fn remove_invalidates_indexes_and_ensure_rebuilds() {
        let mut r = rel_with(&[&[1, 10], &[2, 20], &[1, 11]]);
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        assert!(r.has_index(m));
        r.remove(&[c(1), c(10)]);
        assert!(!r.has_index(m));
        // Unindexed probes fall back to a verified scan.
        let hits: Vec<Code> = r.probe(m, &[c(1)]).map(|t| t[1]).collect();
        assert_eq!(hits, vec![c(11)]);
        r.ensure_index(m);
        assert!(r.has_index(m));
        let hits: Vec<Code> = r.probe(m, &[c(1)]).map(|t| t[1]).collect();
        assert_eq!(hits, vec![c(11)]);
    }

    #[test]
    fn inserts_after_invalidation_do_not_resurrect_stale_indexes() {
        let mut r = rel_with(&[&[1, 10], &[2, 20]]);
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        r.remove(&[c(2), c(20)]);
        // The stale entry must be skipped by incremental maintenance …
        r.insert(&[c(1), c(11)]);
        assert!(!r.has_index(m));
        let hits: Vec<Code> = r.probe(m, &[c(1)]).map(|t| t[1]).collect();
        assert_eq!(hits, vec![c(10), c(11)]);
        // … and the rebuild reflects the post-removal arena exactly.
        r.ensure_index(m);
        assert!(r.has_index(m));
        let hits: Vec<Code> = r.probe(m, &[c(1)]).map(|t| t[1]).collect();
        assert_eq!(hits, vec![c(10), c(11)]);
        assert_eq!(r.probe_count(m, &[c(2)]), 0);
    }

    #[test]
    fn index_bucket_exposes_raw_candidates() {
        let mut r = rel_with(&[&[1, 10], &[2, 20], &[1, 11]]);
        let m = ColumnMask::from_cols([0]);
        assert!(r.index_bucket(m, 0).is_none(), "no index yet");
        r.ensure_index(m);
        let h = hash_codes([c(1)]);
        let bucket = r.index_bucket(m, h).expect("index present");
        // Candidates are ascending positions; all verify here (no collision).
        assert_eq!(bucket, &[0, 2]);
        let miss = r.index_bucket(m, hash_codes([c(9)])).unwrap();
        assert!(miss.is_empty());
        // Invalidation makes the bucket unavailable until rebuilt.
        r.remove(&[c(2), c(20)]);
        assert!(r.index_bucket(m, h).is_none());
        r.ensure_index(m);
        assert_eq!(r.index_bucket(m, h).unwrap(), &[0, 1]);
    }

    #[test]
    fn empty_mask_probe_scans_everything() {
        let r = rel_with(&[&[1], &[2]]);
        assert_eq!(r.probe(ColumnMask::EMPTY, &[]).count(), 2);
        let mut r2 = rel_with(&[&[1]]);
        r2.ensure_index(ColumnMask::EMPTY);
        assert!(!r2.has_index(ColumnMask::EMPTY), "empty mask never indexes");
    }

    #[test]
    fn full_mask_is_point_lookup() {
        let mut r = rel_with(&[&[1, 2], &[3, 4]]);
        let m = ColumnMask::from_cols([0, 1]);
        r.ensure_index(m);
        assert_eq!(r.probe_count(m, &[c(1), c(2)]), 1);
        assert_eq!(r.probe_count(m, &[c(1), c(4)]), 0);
    }

    #[test]
    fn range_probe_windows_by_insertion_position() {
        // Key 1 sits at insertion positions 0, 2 and 4.
        let mut r = rel_with(&[&[1, 10], &[2, 20], &[1, 11], &[3, 30], &[1, 12]]);
        let m = ColumnMask::from_cols([0]);
        // Unindexed window.
        assert_eq!(r.probe_in_range(m, &[c(1)], 2, 4).count(), 1);
        assert_eq!(r.probe_in_range(m, &[c(1)], 0, 5).count(), 3);
        // hi beyond len clamps.
        assert_eq!(r.probe_in_range(m, &[c(1)], 0, 100).count(), 3);
        assert_eq!(r.probe_in_range(m, &[c(1)], 4, 2).count(), 0);
        // Indexed window agrees.
        r.ensure_index(m);
        assert_eq!(r.probe_in_range(m, &[c(1)], 2, 4).count(), 1);
        assert_eq!(r.probe_in_range(m, &[c(1)], 3, 5).count(), 1);
        // Empty mask windows the raw scan.
        assert_eq!(r.probe_in_range(ColumnMask::EMPTY, &[], 1, 3).count(), 2);
    }

    #[test]
    fn arity_zero_relations_work() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.rows().count(), 1);
        assert_eq!(r.row(0), &[] as &[Code]);
        assert!(r.remove(&[]));
        assert!(r.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = rel_with(&[&[1], &[2]]);
        let m = ColumnMask::from_cols([0]);
        r.ensure_index(m);
        r.clear();
        assert!(r.is_empty());
        assert!(!r.has_index(m));
        assert!(!r.contains(&[c(1)]));
        assert_eq!(r.encoded_bytes(), 0);
    }

    #[test]
    fn stats_report_arena_size() {
        let mut r = rel_with(&[&[1, 2], &[3, 4]]);
        assert_eq!(r.encoded_bytes(), 2 * 2 * 4);
        r.ensure_index(ColumnMask::from_cols([0]));
        assert_eq!(r.index_count(), 1);
    }

    #[test]
    fn mask_columns_are_ascending() {
        let m = ColumnMask::from_cols([2, 0]);
        assert_eq!(m.cols().collect::<Vec<_>>(), vec![0, 2]);
        assert!(m.contains(0));
        assert!(!m.contains(1));
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_rejects_wide_columns() {
        ColumnMask::from_cols([32]);
    }
}
