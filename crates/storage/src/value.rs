//! Compact runtime values and tuples.
//!
//! The engine never manipulates strings on its hot paths: constant symbols
//! are interned to [`SymId`]s by the [`crate::vocab::Vocabulary`], so a
//! [`Value`] is a 16-byte `Copy` type and a [`Tuple`] is a boxed slice of
//! them.

use std::fmt;

/// An interned constant symbol. Only meaningful relative to the
/// [`crate::vocab::Vocabulary`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// A runtime constant: an interned symbol or an integer.
///
/// Ordering sorts all symbols before all integers, and within each class by
/// id / numeric value; the [`crate::store::FactStore`] uses vocabulary-aware
/// ordering for display instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An interned symbol.
    Sym(SymId),
    /// A 64-bit integer.
    Int(i64),
}

impl Value {
    /// The symbol id, if this is a symbol.
    pub fn as_sym(self) -> Option<SymId> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Sym(_) => None,
            Value::Int(i) => Some(i),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<SymId> for Value {
    fn from(s: SymId) -> Self {
        Value::Sym(s)
    }
}

/// A ground tuple: the argument vector of a ground atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty tuple (for propositional atoms).
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    /// Debug-ish rendering without a vocabulary: symbols print as `#id`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Value::Sym(SymId(id)) => write!(f, "#{id}")?,
                Value::Int(n) => write!(f, "{n}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small_and_copy() {
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::Int(3);
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn tuple_basics() {
        let t = Tuple::new(vec![Value::Int(1), Value::Sym(SymId(0))]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(1), Value::Sym(SymId(0)));
        assert_eq!(Tuple::empty().arity(), 0);
    }

    #[test]
    fn tuple_equality_and_hash() {
        use std::collections::HashSet;
        let a = Tuple::new(vec![Value::Int(1)]);
        let b: Tuple = [Value::Int(1)].into_iter().collect();
        let mut s = HashSet::new();
        s.insert(a.clone());
        assert!(s.contains(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_sym(), None);
        assert_eq!(Value::Sym(SymId(2)).as_sym(), Some(SymId(2)));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(SymId(1)), Value::Sym(SymId(1)));
    }

    #[test]
    fn display_without_vocab() {
        let t = Tuple::new(vec![Value::Sym(SymId(3)), Value::Int(-2)]);
        assert_eq!(t.to_string(), "(#3, -2)");
    }
}
