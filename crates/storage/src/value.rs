//! Compact runtime values and tuples.
//!
//! The engine never manipulates strings on its hot paths: constant symbols
//! are interned to [`SymId`]s by the [`crate::vocab::Vocabulary`], so a
//! [`Value`] is a 16-byte `Copy` type and a [`Tuple`] is a boxed slice of
//! them.

use std::fmt;

/// An interned constant symbol. Only meaningful relative to the
/// [`crate::vocab::Vocabulary`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// A runtime constant: an interned symbol or an integer.
///
/// Ordering sorts all symbols before all integers, and within each class by
/// id / numeric value; the [`crate::store::FactStore`] uses vocabulary-aware
/// ordering for display instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An interned symbol.
    Sym(SymId),
    /// A 64-bit integer.
    Int(i64),
}

impl Value {
    /// The symbol id, if this is a symbol.
    pub fn as_sym(self) -> Option<SymId> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Sym(_) => None,
            Value::Int(i) => Some(i),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// An interned value code — the 4-byte currency of relation arenas and the
/// engine's join paths.
///
/// The 32-bit space is split into three tagged ranges:
///
/// ```text
/// 0x0000_0000 .. 0x4000_0000   symbol        (code == SymId)
/// 0x4000_0000 .. 0x8000_0000   spilled int   (index into the vocabulary's
///                                             big-integer table)
/// 0x8000_0000 .. 0xFFFF_FFFF   small int     (i + 2^30 + 0x8000_0000,
///                                             i ∈ [-2^30, 2^30))
/// ```
///
/// The encoding is injective, so equality of codes is equality of values.
/// For symbols and small integers it is also *order-preserving* with
/// respect to [`Value`]'s ordering (all symbols sort before all integers);
/// only spilled big integers (|i| ≥ 2^30) break code order, which is why
/// observable sorts decode first (see `crate::vocab::Vocabulary::decode`).
/// Encoding and decoding are pure arithmetic except for spills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code(pub u32);

/// First code outside the symbol range (2^30 symbols max).
const SYM_LIMIT: u32 = 0x4000_0000;
/// Tag bit for spilled big-integer codes.
const SPILL_TAG: u32 = 0x4000_0000;
/// Offset of the small-integer range.
const INT_BASE: u32 = 0x8000_0000;
/// Bias added to a small integer before offsetting into the code space.
const SMALL_BIAS: i64 = 1 << 30;

impl Code {
    /// Encode a symbol. Symbol ids are dense and bounded by the number of
    /// distinct constants in a program, far below the 2^30 ceiling.
    #[inline]
    pub fn from_sym(sym: SymId) -> Code {
        debug_assert!(sym.0 < SYM_LIMIT, "symbol table exceeds 2^30 entries");
        Code(sym.0)
    }

    /// Encode an integer in the small range `[-2^30, 2^30)`; `None` when it
    /// must spill to the vocabulary's big-integer table.
    #[inline]
    pub fn from_small_int(i: i64) -> Option<Code> {
        if (-SMALL_BIAS..SMALL_BIAS).contains(&i) {
            Some(Code(INT_BASE + (i + SMALL_BIAS) as u32))
        } else {
            None
        }
    }

    /// Build a spilled big-integer code from its table index.
    #[inline]
    pub fn from_spill(index: u32) -> Code {
        debug_assert!(index < SYM_LIMIT, "big-integer table exceeds 2^30 entries");
        Code(SPILL_TAG | index)
    }

    /// The symbol id, if this code encodes a symbol.
    #[inline]
    pub fn as_sym(self) -> Option<SymId> {
        (self.0 < SYM_LIMIT).then_some(SymId(self.0))
    }

    /// The integer, if this code encodes a small (unspilled) integer.
    #[inline]
    pub fn as_small_int(self) -> Option<i64> {
        (self.0 >= INT_BASE).then(|| (self.0 - INT_BASE) as i64 - SMALL_BIAS)
    }

    /// The big-integer table index, if this code is a spill.
    #[inline]
    pub fn spill_index(self) -> Option<u32> {
        (SYM_LIMIT..INT_BASE)
            .contains(&self.0)
            .then_some(self.0 & !SPILL_TAG)
    }
}

impl From<SymId> for Value {
    fn from(s: SymId) -> Self {
        Value::Sym(s)
    }
}

/// A ground tuple: the argument vector of a ground atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty tuple (for propositional atoms).
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    /// Debug-ish rendering without a vocabulary: symbols print as `#id`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Value::Sym(SymId(id)) => write!(f, "#{id}")?,
                Value::Int(n) => write!(f, "{n}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small_and_copy() {
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::Int(3);
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn tuple_basics() {
        let t = Tuple::new(vec![Value::Int(1), Value::Sym(SymId(0))]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(1), Value::Sym(SymId(0)));
        assert_eq!(Tuple::empty().arity(), 0);
    }

    #[test]
    fn tuple_equality_and_hash() {
        use std::collections::HashSet;
        let a = Tuple::new(vec![Value::Int(1)]);
        let b: Tuple = [Value::Int(1)].into_iter().collect();
        let mut s = HashSet::new();
        s.insert(a.clone());
        assert!(s.contains(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_sym(), None);
        assert_eq!(Value::Sym(SymId(2)).as_sym(), Some(SymId(2)));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(SymId(1)), Value::Sym(SymId(1)));
    }

    #[test]
    fn display_without_vocab() {
        let t = Tuple::new(vec![Value::Sym(SymId(3)), Value::Int(-2)]);
        assert_eq!(t.to_string(), "(#3, -2)");
    }

    #[test]
    fn code_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Code>(), 4);
    }

    #[test]
    fn code_tags_are_disjoint() {
        let sym = Code::from_sym(SymId(7));
        let int = Code::from_small_int(7).unwrap();
        let spill = Code::from_spill(7);
        assert_eq!(sym.as_sym(), Some(SymId(7)));
        assert_eq!(sym.as_small_int(), None);
        assert_eq!(sym.spill_index(), None);
        assert_eq!(int.as_small_int(), Some(7));
        assert_eq!(int.as_sym(), None);
        assert_eq!(int.spill_index(), None);
        assert_eq!(spill.spill_index(), Some(7));
        assert_eq!(spill.as_sym(), None);
        assert_eq!(spill.as_small_int(), None);
    }

    #[test]
    fn small_int_round_trip_covers_the_whole_range() {
        for i in [-(1i64 << 30), -1, 0, 1, 42, (1i64 << 30) - 1] {
            assert_eq!(Code::from_small_int(i).unwrap().as_small_int(), Some(i));
        }
        assert_eq!(Code::from_small_int(1 << 30), None);
        assert_eq!(Code::from_small_int(-(1i64 << 30) - 1), None);
        assert_eq!(Code::from_small_int(i64::MAX), None);
        assert_eq!(Code::from_small_int(i64::MIN), None);
    }

    #[test]
    fn code_order_matches_value_order_without_spills() {
        // All symbols sort before all small integers, each class in its
        // natural order — exactly `Value`'s derived ordering.
        let codes = [
            Code::from_sym(SymId(0)),
            Code::from_sym(SymId(5)),
            Code::from_small_int(-(1 << 30)).unwrap(),
            Code::from_small_int(-3).unwrap(),
            Code::from_small_int(0).unwrap(),
            Code::from_small_int((1 << 30) - 1).unwrap(),
        ];
        let mut sorted = codes;
        sorted.sort();
        assert_eq!(sorted, codes);
    }
}
