//! A fast, non-cryptographic hasher for interned-code keys.
//!
//! The relation arenas key their position and index maps by 64-bit hashes
//! of [`Code`] rows. The standard library's SipHash is DoS-resistant but
//! costs tens of nanoseconds per tuple; intern codes are dense small
//! integers produced by our own vocabulary, so a multiply-and-rotate
//! hash in the Firefox/rustc style ("FxHash") is both sufficient and
//! several times faster. Collisions are tolerated by construction: every
//! map that stores hashes verifies candidates against the arena contents
//! before believing a hit (see `crate::relation`).

use crate::value::Code;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the FxHash family (derived from the golden ratio).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A word-at-a-time multiply-and-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash a full code row (length-independent positions are fine: rows in
/// one relation all share the relation's arity).
#[inline]
pub fn hash_row(row: &[Code]) -> u64 {
    let mut h = FxHasher::default();
    for c in row {
        h.add(c.0 as u64);
    }
    h.finish()
}

/// Hash the codes produced by an iterator (used for masked index keys).
#[inline]
pub fn hash_codes(codes: impl IntoIterator<Item = Code>) -> u64 {
    let mut h = FxHasher::default();
    for c in codes {
        h.add(c.0 as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hash_is_deterministic_and_spreads() {
        let a = [Code(1), Code(2)];
        let b = [Code(2), Code(1)];
        assert_eq!(hash_row(&a), hash_row(&a));
        assert_ne!(hash_row(&a), hash_row(&b), "order must matter");
        assert_eq!(hash_row(&a), hash_codes(a.iter().copied()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(hash_row(&[Code(3)]), 7);
        assert_eq!(m.get(&hash_row(&[Code(3)])), Some(&7));
        let mut s: FxHashSet<Code> = FxHashSet::default();
        assert!(s.insert(Code(9)));
        assert!(!s.insert(Code(9)));
    }

    #[test]
    fn hasher_handles_arbitrary_byte_writes() {
        // Hash of a `&str` key via the Hasher trait — exercised when
        // FxHashMap is used with non-Code keys.
        let mut h1 = FxHasher::default();
        h1.write(b"hello world, this is longer than eight bytes");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, this is longer than eight bytes");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello world, this is longer than eight bytez");
        assert_ne!(h1.finish(), h3.finish());
    }
}
