//! Property tests for the relation substrate: under arbitrary interleaved
//! insert/remove/reindex sequences, indexed probes must agree with full
//! scans, membership with contents, and windowed probes with position
//! filtering.

use park_storage::{Code, ColumnMask, Relation};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64, i64),
    EnsureIndex(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..5, 0i64..5).prop_map(|(a, b)| Op::Insert(a, b)),
        (0i64..5, 0i64..5).prop_map(|(a, b)| Op::Remove(a, b)),
        (0u8..3).prop_map(Op::EnsureIndex),
    ]
}

fn c(n: i64) -> Code {
    Code::from_small_int(n).expect("test ints are small")
}

fn row(a: i64, b: i64) -> [Code; 2] {
    [c(a), c(b)]
}

fn decode(r: &[Code]) -> (i64, i64) {
    (
        r[0].as_small_int().expect("small int"),
        r[1].as_small_int().expect("small int"),
    )
}

fn mask_of(sel: u8) -> ColumnMask {
    match sel {
        0 => ColumnMask::from_cols([0]),
        1 => ColumnMask::from_cols([1]),
        _ => ColumnMask::from_cols([0, 1]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The relation behaves exactly like a model `HashSet` of rows, and
    /// every probe agrees with a brute-force filter of that model.
    #[test]
    fn relation_matches_set_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut rel = Relation::new(2);
        let mut model: HashSet<(i64, i64)> = HashSet::new();
        for op in &ops {
            match *op {
                Op::Insert(a, b) => {
                    let fresh = rel.insert(&row(a, b));
                    prop_assert_eq!(fresh, model.insert((a, b)));
                }
                Op::Remove(a, b) => {
                    let had = rel.remove(&row(a, b));
                    prop_assert_eq!(had, model.remove(&(a, b)));
                }
                Op::EnsureIndex(sel) => rel.ensure_index(mask_of(sel)),
            }
            prop_assert_eq!(rel.len(), model.len());
        }

        // Arena contents equal the model.
        let scanned: HashSet<(i64, i64)> = rel.rows().map(decode).collect();
        prop_assert_eq!(&scanned, &model);

        // Every point and prefix probe agrees with brute force, with and
        // without indexes built.
        for pass in 0..2 {
            if pass == 1 {
                for sel in 0..3u8 {
                    rel.ensure_index(mask_of(sel));
                }
            }
            for key0 in 0i64..5 {
                let got: HashSet<(i64, i64)> = rel
                    .probe(ColumnMask::from_cols([0]), &[c(key0)])
                    .map(decode)
                    .collect();
                let want: HashSet<(i64, i64)> =
                    model.iter().copied().filter(|&(a, _)| a == key0).collect();
                prop_assert_eq!(got, want, "col-0 probe for {} (pass {})", key0, pass);

                for key1 in 0i64..5 {
                    let cnt = rel.probe_count(
                        ColumnMask::from_cols([0, 1]),
                        &[c(key0), c(key1)],
                    );
                    let want = usize::from(model.contains(&(key0, key1)));
                    prop_assert_eq!(cnt, want, "point probe ({}, {})", key0, key1);
                }
            }
        }
    }

    /// Windowed probes partition: old ∪ delta = full, disjointly, for any
    /// split point — the invariant semi-naive evaluation rests on.
    #[test]
    fn windowed_probes_partition(
        pairs in prop::collection::vec((0i64..6, 0i64..6), 0..40),
        split_frac in 0.0f64..=1.0,
    ) {
        let mut rel = Relation::new(2);
        for &(a, b) in &pairs {
            rel.insert(&row(a, b));
        }
        let m = ColumnMask::from_cols([0]);
        rel.ensure_index(m);
        let len = rel.len() as u32;
        let split = (len as f64 * split_frac) as u32;
        for key in 0i64..6 {
            let k = [c(key)];
            let old: Vec<Vec<Code>> =
                rel.probe_in_range(m, &k, 0, split).map(<[Code]>::to_vec).collect();
            let delta: Vec<Vec<Code>> =
                rel.probe_in_range(m, &k, split, len).map(<[Code]>::to_vec).collect();
            let full: Vec<Vec<Code>> =
                rel.probe_in_range(m, &k, 0, len).map(<[Code]>::to_vec).collect();
            let mut merged = old.clone();
            merged.extend(delta.iter().cloned());
            // Index order is insertion order in both windows, so simple
            // concatenation must reproduce the full probe.
            prop_assert_eq!(merged, full, "key {}", key);
            let o: HashSet<&Vec<Code>> = old.iter().collect();
            prop_assert!(delta.iter().all(|tp| !o.contains(tp)), "windows overlap");
        }
    }
}
