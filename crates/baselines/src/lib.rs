//! # park-baselines
//!
//! Baseline active-rule semantics that the PARK paper argues against,
//! implemented so that the paper's motivating divergences are executable:
//!
//! * [`naive_mark_eliminate`] — Section 4.1's strawman: inflationary
//!   fixpoint ignoring inconsistencies, then post-hoc elimination of
//!   conflicting `±a` pairs. Reproduces the wrong answers on the paper's
//!   P2 (`s` survives) and P3 (`a` is lost to a false conflict).
//! * [`immediate_fire`] — a sequential production-rule engine in the
//!   OPS5/trigger tradition: order-dependent results (ambiguity) and
//!   non-termination on mutually-undoing rules, i.e. the failures the
//!   paper's Section 3 requirements exclude.
//! * [`stratified_datalog`] — classical stratified (perfect-model)
//!   evaluation for insert-only programs: the deductive semantics the
//!   paper builds on, including the documented divergence between
//!   stratified and inflationary negation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod immediate;
pub mod naive;
pub mod stratified;

pub use immediate::{immediate_fire, FiringOrder, ImmediateConfig, ImmediateResult};
pub use naive::{naive_mark_eliminate, NaiveOutcome};
pub use stratified::{stratified_datalog, StratifiedOutcome, StratifyError};
