//! The naive mark-and-eliminate semantics — Section 4.1's strawman.
//!
//! "If we stubbornly apply the immediate consequence operator … in this
//! final fixed point we recognize that `-a` and `+a` are conflicting and
//! eliminate these two marked atoms using the principle of inertia."
//!
//! That is: run the inflationary fixpoint of `Γ_{P,∅}` to completion,
//! *ignoring* inconsistencies, then post-hoc drop every conflicting `±a`
//! pair, then `incorp`. The paper shows with programs P2 and P3 why this is
//! wrong — consequences of invalidated marks survive (P2's `s`), and false
//! conflicts poison unrelated atoms (P3's `a`). This module implements the
//! strawman faithfully so those divergences are measurable.

use park_engine::{fire_all, BlockedSet, CompiledProgram, EngineError, IInterpretation};
use park_storage::{FactStore, PredId, Tuple, UpdateSet};

/// The result of a naive mark-and-eliminate evaluation.
#[derive(Debug, Clone)]
pub struct NaiveOutcome {
    /// The result database.
    pub database: FactStore,
    /// The raw (possibly inconsistent) fixpoint of `Γ_{P,∅}`.
    pub fixpoint: IInterpretation,
    /// Atoms whose `+`/`-` pair was eliminated, rendered and sorted.
    pub eliminated: Vec<String>,
    /// Γ applications performed.
    pub steps: u64,
}

/// Evaluate `P ∪ U`-as-rules under the naive semantics.
///
/// `max_steps` bounds the fixpoint iteration (the operator is inflationary
/// over a finite base, so it terminates; the bound guards against misuse
/// with enormous inputs).
pub fn naive_mark_eliminate(
    program: &CompiledProgram,
    db: &FactStore,
    updates: &UpdateSet,
    max_steps: u64,
) -> Result<NaiveOutcome, EngineError> {
    let working = program.with_updates(updates);
    let mut interp = IInterpretation::from_database(db.clone());
    for req in working.index_requests() {
        interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
    }
    let blocked = BlockedSet::new();
    let mut steps = 0u64;
    loop {
        if steps >= max_steps {
            return Err(EngineError::StepLimit { limit: max_steps });
        }
        steps += 1;
        let fired = fire_all(&working, &blocked, &interp);
        let mut grew = false;
        for f in &fired {
            if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Post-hoc elimination: conflicting pairs are ignored (inertia).
    let conflicting: Vec<(PredId, Tuple)> = interp.inconsistencies();
    let is_conflicting =
        |p: PredId, t: &Tuple| conflicting.iter().any(|(cp, ct)| *cp == p && ct == t);
    let mut database = db.clone();
    for (p, t) in interp.plus().iter() {
        if !is_conflicting(p, &t) {
            database.insert(p, t).expect("arity consistent");
        }
    }
    for (p, t) in interp.minus().iter() {
        if !is_conflicting(p, &t) {
            database.remove(p, &t);
        }
    }
    let vocab = db.vocab();
    let mut eliminated: Vec<String> = conflicting
        .iter()
        .map(|(p, t)| vocab.display_fact(*p, t))
        .collect();
    eliminated.sort();

    Ok(NaiveOutcome {
        database,
        fixpoint: interp,
        eliminated,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{CompiledProgram, Engine, Inertia};
    use park_storage::Vocabulary;
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn naive(rules: &str, facts: &str) -> NaiveOutcome {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        naive_mark_eliminate(&program, &db, &UpdateSet::empty(), 1 << 20).unwrap()
    }

    #[test]
    fn p1_matches_park() {
        // On P1 the naive semantics happens to agree with PARK: {p, q}.
        let out = naive("p -> +q. p -> -a. q -> +a.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["p", "q"]);
        assert_eq!(out.eliminated, vec!["a"]);
    }

    #[test]
    fn p2_produces_the_papers_wrong_answer() {
        // Section 4.1: the naive semantics keeps s (derived from the later-
        // invalidated +a); PARK's correct answer is {p, q, r}.
        let out = naive("p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["p", "q", "r", "s"]);
        assert!(!out.fixpoint.is_consistent());
        assert_eq!(out.eliminated, vec!["a"]);
    }

    #[test]
    fn p3_false_conflict_poisons_a() {
        // Section 4.1: q's false ambiguity makes a ambiguous too; the naive
        // result is {p}, while PARK correctly returns {p, a}.
        let out = naive("p -> +q. p -> -q. q -> +a. q -> -a. p -> +a.", "p.");
        assert_eq!(out.database.sorted_display(), vec!["p"]);
        assert_eq!(out.eliminated, vec!["a", "q"]);
    }

    #[test]
    fn agrees_with_park_on_conflict_free_programs() {
        let rules = "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). r(X, X) -> +cyclic.";
        let facts = "e(a, b). e(b, c). e(c, a).";
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), facts).unwrap();
        let naive_out = naive_mark_eliminate(&program, &db, &UpdateSet::empty(), 1 << 20).unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let park_out = engine.park(&db, &mut Inertia).unwrap();
        assert!(naive_out.database.same_facts(&park_out.database));
        assert!(naive_out.eliminated.is_empty());
    }

    #[test]
    fn step_limit_enforced() {
        let vocab = Vocabulary::new();
        let program = CompiledProgram::compile(
            Arc::clone(&vocab),
            &parse_program("p -> +q. q -> +r. r -> +s.").unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(vocab, "p.").unwrap();
        let err = naive_mark_eliminate(&program, &db, &UpdateSet::empty(), 2).unwrap_err();
        assert!(matches!(err, EngineError::StepLimit { .. }));
    }

    #[test]
    fn updates_are_included() {
        let vocab = Vocabulary::new();
        let program = CompiledProgram::compile(
            Arc::clone(&vocab),
            &parse_program("q(X) -> +r(X).").unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "q(a).").unwrap();
        let updates = UpdateSet::from_source(&vocab, "+q(b).").unwrap();
        let out = naive_mark_eliminate(&program, &db, &updates, 1 << 20).unwrap();
        assert_eq!(
            out.database.sorted_display(),
            vec!["q(a)", "q(b)", "r(a)", "r(b)"]
        );
    }
}
