//! An immediate-fire production-rule engine — the pre-PARK style of active
//! rule execution the paper's Section 3 requirements indict.
//!
//! One rule instance fires at a time; its update is applied to the database
//! *immediately*; matching restarts. Execution quiesces when no rule
//! instance would change the database. This is (a schematic form of) how
//! OPS5-descended and trigger-based systems behave, and it violates the
//! paper's requirements in exactly the documented ways:
//!
//! * **No unambiguous semantics** — the result depends on the rule order
//!   ([`FiringOrder`]), so one program yields multiple database states.
//! * **No guaranteed termination** — mutually-undoing rules loop forever;
//!   [`immediate_fire`] reports [`ImmediateResult::Diverged`] after
//!   `max_fires`.
//!
//! Event literals are not supported (the model has no marked atoms);
//! programs containing them are rejected.

use park_engine::{fire_all, BlockedSet, CompiledProgram, IInterpretation};
use park_storage::FactStore;
use park_syntax::Sign;

/// Which fireable instance is chosen each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FiringOrder {
    /// First fireable instance of the lowest-numbered rule.
    #[default]
    RuleOrder,
    /// First fireable instance of the highest-numbered rule.
    ReverseRuleOrder,
}

/// Configuration for [`immediate_fire`].
#[derive(Debug, Clone, Copy)]
pub struct ImmediateConfig {
    /// Abort (as diverged) after this many firings.
    pub max_fires: u64,
    /// Instance selection order.
    pub order: FiringOrder,
}

impl Default for ImmediateConfig {
    fn default() -> Self {
        ImmediateConfig {
            max_fires: 10_000,
            order: FiringOrder::RuleOrder,
        }
    }
}

/// The outcome of an immediate-fire execution.
#[derive(Debug, Clone)]
pub enum ImmediateResult {
    /// Quiesced: no rule instance would change the database.
    Converged {
        /// The final database.
        database: FactStore,
        /// Rule instances fired.
        fires: u64,
    },
    /// Hit the firing bound without quiescing — (practically) diverged.
    Diverged {
        /// The database state when aborted.
        database: FactStore,
        /// Rule instances fired (= `max_fires`).
        fires: u64,
    },
}

impl ImmediateResult {
    /// The database regardless of convergence.
    pub fn database(&self) -> &FactStore {
        match self {
            ImmediateResult::Converged { database, .. }
            | ImmediateResult::Diverged { database, .. } => database,
        }
    }

    /// True if execution quiesced.
    pub fn converged(&self) -> bool {
        matches!(self, ImmediateResult::Converged { .. })
    }
}

/// Execute a condition–action program under immediate-firing semantics.
///
/// # Panics
///
/// Panics if the program contains event literals (`+a`/`-a` in a body);
/// immediate execution has no update marks for them to match.
pub fn immediate_fire(
    program: &CompiledProgram,
    db: &FactStore,
    config: ImmediateConfig,
) -> ImmediateResult {
    assert!(
        program.rules().iter().all(|r| r
            .source
            .body
            .iter()
            .all(|l| !matches!(l, park_syntax::BodyLiteral::Event(..)))),
        "immediate-fire semantics does not support event literals"
    );
    let mut db = db.clone();
    let blocked = BlockedSet::new();
    let mut fires = 0u64;
    loop {
        if fires >= config.max_fires {
            return ImmediateResult::Diverged {
                database: db,
                fires,
            };
        }
        // Evaluate rule bodies against the plain database: an interpretation
        // with no marks makes positive literals plain membership and
        // negation plain closed-world absence.
        let interp = IInterpretation::from_database(db.clone());
        let mut fired = fire_all(program, &blocked, &interp);
        if config.order == FiringOrder::ReverseRuleOrder {
            fired.reverse();
        }
        // The first instance whose action would change the database fires.
        let next = fired.into_iter().find(|f| match f.sign {
            Sign::Insert => !db.contains_row(f.pred, &f.tuple),
            Sign::Delete => db.contains_row(f.pred, &f.tuple),
        });
        match next {
            None => {
                return ImmediateResult::Converged {
                    database: db,
                    fires,
                }
            }
            Some(f) => {
                fires += 1;
                match f.sign {
                    Sign::Insert => {
                        db.insert_row(f.pred, &f.tuple);
                    }
                    Sign::Delete => {
                        db.remove_row(f.pred, &f.tuple);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::CompiledProgram;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn run(rules: &str, facts: &str, config: ImmediateConfig) -> ImmediateResult {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        immediate_fire(&program, &db, config)
    }

    #[test]
    fn simple_cascade_converges() {
        let r = run("p -> +q. q -> +r.", "p.", ImmediateConfig::default());
        assert!(r.converged());
        assert_eq!(r.database().sorted_display(), vec!["p", "q", "r"]);
    }

    #[test]
    fn order_dependence_yields_different_states() {
        // r1 inserts q; r2 fires only while q is absent. Forward order
        // inserts q first and r never appears; reverse order fires r2 first.
        let rules = "r1: p -> +q. r2: !q -> +r.";
        let fwd = run(rules, "p.", ImmediateConfig::default());
        let rev = run(
            rules,
            "p.",
            ImmediateConfig {
                order: FiringOrder::ReverseRuleOrder,
                ..Default::default()
            },
        );
        assert!(fwd.converged() && rev.converged());
        assert_eq!(fwd.database().sorted_display(), vec!["p", "q"]);
        assert_eq!(rev.database().sorted_display(), vec!["p", "q", "r"]);
        // One program, two result states: the ambiguity PARK rules out.
        assert!(!fwd.database().same_facts(rev.database()));
    }

    #[test]
    fn mutually_undoing_rules_diverge() {
        // a present → delete it; a absent → insert it. Never quiesces.
        let r = run(
            "p, a -> -a. p, !a -> +a.",
            "p.",
            ImmediateConfig {
                max_fires: 100,
                ..Default::default()
            },
        );
        assert!(!r.converged());
        match r {
            ImmediateResult::Diverged { fires, .. } => assert_eq!(fires, 100),
            _ => unreachable!(),
        }
    }

    #[test]
    fn park_handles_the_diverging_program() {
        // The same program under PARK terminates with a unique answer.
        use park_engine::{Engine, Inertia};
        let vocab = Vocabulary::new();
        let program = parse_program("p, a -> -a. p, !a -> +a.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, "p.").unwrap();
        let out = engine.park(&db, &mut Inertia).unwrap();
        // !a holds initially, so +a is derived; then `a` (via +a) makes the
        // delete rule fire → conflict; inertia (a ∉ D) resolves to delete,
        // blocking the inserting instance; fixpoint {p}.
        assert_eq!(out.database.sorted_display(), vec!["p"]);
    }

    #[test]
    #[should_panic(expected = "event literals")]
    fn event_literals_rejected() {
        run("+p(X) -> -q(X).", "q(a).", ImmediateConfig::default());
    }

    #[test]
    fn deletion_cascade() {
        let r = run(
            "emp(X), !active(X) -> -payroll(X).",
            "emp(a). emp(b). active(b). payroll(a). payroll(b).",
            ImmediateConfig::default(),
        );
        assert!(r.converged());
        assert_eq!(
            r.database().sorted_display(),
            vec!["active(b)", "emp(a)", "emp(b)", "payroll(b)"]
        );
    }
}
