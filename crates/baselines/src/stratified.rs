//! Stratified datalog evaluation — the classical *deductive* rule
//! semantics (§3 of the paper cites the deductive tradition as the
//! starting point: "if no two conflicting rules are ever firable, some
//! fixpoint semantics may be appropriate").
//!
//! This baseline evaluates **insert-only** programs whose negation is
//! stratifiable, stratum by stratum: within a stratum, negated literals
//! refer only to lower (already fully computed) strata, so negation as
//! failure is evaluated against a finished extension.
//!
//! ## Why this matters next to PARK
//!
//! PARK's declarative half is the *inflationary* fixpoint, which evaluates
//! negation against the still-growing interpretation. The two semantics
//! agree when negation only tests extensional (underived) predicates, but
//! genuinely diverge on stratified programs where a negated predicate is
//! derived later:
//!
//! ```text
//! r1: r -> +p.      r2: !p -> +q.          D = {r}
//! ```
//!
//! Stratified: compute p first (p holds), then ¬p fails — result {p, r}.
//! Inflationary (and hence PARK): in the very first step ¬p still holds,
//! so q is derived — result {p, q, r}. The paper *chooses* the
//! inflationary semantics (Kolaitis & Papadimitriou) deliberately; this
//! module makes the difference observable and tested rather than folklore.

use park_engine::{
    fire_all, BlockedSet, CompiledLiteral, CompiledProgram, DependencyGraph, EngineError,
    IInterpretation, LitKind,
};
use park_storage::{FactStore, PredId};
use park_syntax::Sign;
use std::collections::HashMap;

/// Why a program is outside this baseline's fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratifyError {
    /// A rule deletes — deductive semantics has no deletion.
    DeletingRule(String),
    /// A rule is event-triggered — deductive semantics has no events.
    EventRule(String),
    /// Negation occurs inside a recursive component.
    NotStratifiable,
}

impl std::fmt::Display for StratifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StratifyError::DeletingRule(r) => {
                write!(f, "rule `{r}` deletes; stratified datalog is insert-only")
            }
            StratifyError::EventRule(r) => {
                write!(
                    f,
                    "rule `{r}` is event-triggered; stratified datalog has no events"
                )
            }
            StratifyError::NotStratifiable => {
                write!(
                    f,
                    "negation through recursion: the program is not stratifiable"
                )
            }
        }
    }
}

impl std::error::Error for StratifyError {}

/// The result of a stratified evaluation.
#[derive(Debug, Clone)]
pub struct StratifiedOutcome {
    /// The perfect (stratified) model.
    pub database: FactStore,
    /// The strata, as predicate-name lists from lowest to highest.
    pub strata: Vec<Vec<String>>,
}

/// Assign each predicate a stratum: along positive edges the stratum of
/// the head is ≥ that of the body predicate; along negative edges it is
/// strictly greater. Fails iff a negative edge closes a cycle.
fn stratify(program: &CompiledProgram) -> Result<HashMap<PredId, usize>, StratifyError> {
    let graph = DependencyGraph::of(program);
    if !graph.is_stratified() {
        return Err(StratifyError::NotStratifiable);
    }
    // SCCs arrive in reverse topological order (dependencies first), so a
    // single pass assigns minimal strata.
    let mut stratum: HashMap<PredId, usize> = HashMap::new();
    for scc in graph.sccs() {
        let mut s = 0usize;
        for &p in &scc {
            for rule in program.rules().iter().filter(|r| r.head.pred == p) {
                for lit in rule.body.iter() {
                    let CompiledLiteral::Atom { kind, atom } = lit else {
                        continue;
                    };
                    if scc.contains(&atom.pred) {
                        continue; // same component: same stratum
                    }
                    let below = stratum.get(&atom.pred).copied().unwrap_or(0);
                    s = s.max(match kind {
                        LitKind::Neg => below + 1,
                        _ => below,
                    });
                }
            }
        }
        for p in scc {
            stratum.insert(p, s);
        }
    }
    Ok(stratum)
}

/// Evaluate an insert-only, stratifiable program over `db`, producing the
/// perfect model.
pub fn stratified_datalog(
    program: &CompiledProgram,
    db: &FactStore,
    max_steps: u64,
) -> Result<StratifiedOutcome, EngineError> {
    for rule in program.rules() {
        if rule.head_sign == Sign::Delete {
            return Err(EngineError::Resolver {
                policy: "stratified-datalog".into(),
                message: StratifyError::DeletingRule(rule.display_name()).to_string(),
            });
        }
        if rule.body.iter().any(|l| {
            matches!(
                l,
                CompiledLiteral::Atom {
                    kind: LitKind::Event(_),
                    ..
                }
            )
        }) {
            return Err(EngineError::Resolver {
                policy: "stratified-datalog".into(),
                message: StratifyError::EventRule(rule.display_name()).to_string(),
            });
        }
    }
    let stratum = stratify(program).map_err(|e| EngineError::Resolver {
        policy: "stratified-datalog".into(),
        message: e.to_string(),
    })?;
    let max_stratum = stratum.values().copied().max().unwrap_or(0);

    // Evaluate stratum by stratum. Within stratum s, only rules whose head
    // lives in stratum s run; their negated predicates are all in strata
    // < s and therefore already saturated, so the inflationary iteration
    // computes exactly the stratum's minimal model.
    let vocab = db.vocab();
    let mut state = db.clone();
    let mut strata_names: Vec<Vec<String>> = vec![Vec::new(); max_stratum + 1];
    for (&p, &s) in &stratum {
        strata_names[s].push(vocab.pred_name(p).to_string());
    }
    for names in &mut strata_names {
        names.sort();
    }

    let mut steps = 0u64;
    for s in 0..=max_stratum {
        // Restrict to this stratum's rules by blocking nothing and simply
        // filtering firings — simplest correct formulation on top of the
        // shared Γ machinery.
        let mut interp = IInterpretation::from_database(state.clone());
        for req in program.index_requests() {
            interp.zone_mut(req.zone).ensure_index(req.pred, req.mask);
        }
        loop {
            if steps >= max_steps {
                return Err(EngineError::StepLimit { limit: max_steps });
            }
            steps += 1;
            let fired = fire_all(program, &BlockedSet::new(), &interp);
            let mut grew = false;
            for f in fired {
                if stratum.get(&f.pred).copied().unwrap_or(0) != s {
                    continue;
                }
                if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        state = interp.incorp();
    }

    Ok(StratifiedOutcome {
        database: state,
        strata: strata_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_engine::{CompiledProgram, Engine, Inertia};
    use park_storage::Vocabulary;
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn run(rules: &str, facts: &str) -> StratifiedOutcome {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        stratified_datalog(&program, &db, 1 << 20).unwrap()
    }

    #[test]
    fn positive_programs_reach_the_minimal_model() {
        let out = run(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c).",
        );
        let mut expected = vec![
            "edge(a, b)",
            "edge(b, c)",
            "tc(a, b)",
            "tc(a, c)",
            "tc(b, c)",
        ];
        expected.sort();
        assert_eq!(out.database.sorted_display(), expected);
    }

    #[test]
    fn negation_waits_for_lower_strata() {
        // q :- ¬p; p :- r. Stratified: p computed first, so q is NOT
        // derived.
        let out = run("r1: r -> +p. r2: !p -> +q.", "r.");
        assert_eq!(out.database.sorted_display(), vec!["p", "r"]);
        // Strata: {p, r} below {q}.
        assert_eq!(out.strata.len(), 2);
        assert!(out.strata[1].contains(&"q".to_string()));
    }

    #[test]
    fn park_inflationary_differs_on_the_same_program() {
        // The documented divergence: PARK (inflationary) derives q because
        // ¬p still holds in the first step.
        let vocab = Vocabulary::new();
        let program = parse_program("r1: r -> +p. r2: !p -> +q.").unwrap();
        let engine = Engine::new(Arc::clone(&vocab), &program).unwrap();
        let db = FactStore::from_source(vocab, "r.").unwrap();
        let park_out = engine.park(&db, &mut Inertia).unwrap();
        assert_eq!(park_out.database.sorted_display(), vec!["p", "q", "r"]);
    }

    #[test]
    fn agreement_when_negation_is_extensional() {
        // Negated predicates underived by any rule ⇒ inflationary and
        // stratified coincide.
        let rules = "emp(X), !excluded(X) -> +eligible(X).
                     eligible(X), senior(X) -> +bonus(X).";
        let facts = "emp(a). emp(b). excluded(b). senior(a).";
        let strat = run(rules, facts);
        let vocab = Vocabulary::new();
        let engine = Engine::new(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        let park_out = engine.park(&db, &mut Inertia).unwrap();
        assert_eq!(
            strat.database.sorted_display(),
            park_out.database.sorted_display()
        );
    }

    #[test]
    fn multi_level_strata() {
        let out = run(
            "a(X) -> +b(X). b(X), !c(X) -> +d(X). d(X), !e(X) -> +f(X). b(X) -> +e(X).",
            "a(x).",
        );
        // b derived; c absent → d; e derived from b → ¬e fails → no f.
        assert_eq!(
            out.database.sorted_display(),
            vec!["a(x)", "b(x)", "d(x)", "e(x)"]
        );
    }

    #[test]
    fn rejects_deletions_events_and_unstratifiable() {
        let vocab = Vocabulary::new();
        let mk = |src: &str| {
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(src).unwrap()).unwrap()
        };
        let db = FactStore::new(Arc::clone(&vocab));
        assert!(stratified_datalog(&mk("p(X) -> -q(X)."), &db, 1 << 10).is_err());
        assert!(stratified_datalog(&mk("+p(X) -> +q(X)."), &db, 1 << 10).is_err());
        assert!(stratified_datalog(&mk("move(X, Y), !win(Y) -> +win(X)."), &db, 1 << 10).is_err());
    }

    #[test]
    fn guards_are_allowed() {
        let out = run("n(X, Q), Q > 5 -> +big(X).", "n(a, 3). n(b, 9).");
        assert_eq!(
            out.database.sorted_display(),
            vec!["big(b)", "n(a, 3)", "n(b, 9)"]
        );
    }
}
