//! # park-json
//!
//! A small, dependency-free JSON library for the PARK workspace: traces,
//! snapshots, and benchmark reports all serialize through the [`Json`]
//! value type. Object members preserve insertion order so emitted documents
//! are deterministic, and [`Json::to_pretty`] matches the conventional
//! two-space pretty format (`"key": value`, one member per line).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (the workspace never emits non-integer numbers,
    /// but the parser accepts them as [`Json::Float`]).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn object(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialize with two-space indentation, one member/element per line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Keep a decimal point so the value reparses as a float.
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&x.to_string());
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

/// Parse one JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseJsonError {
        ParseJsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape in
                    // one go. Both delimiters are ASCII bytes, which never
                    // occur inside a multi-byte UTF-8 sequence, so the run
                    // always ends on a character boundary. (Decoding one
                    // character at a time by validating the full remainder
                    // made parsing quadratic in the document size.)
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Consume exactly four hex digits; `pos` must point at the first one.
    fn hex4(&mut self) -> Result<u16, ParseJsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = &self.bytes[self.pos..end];
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("invalid unicode escape"));
        }
        let hex = std::str::from_utf8(digits)
            .ok()
            .and_then(|s| u16::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_conventional_format() {
        let doc = Json::object([
            ("event", Json::str("run_started")),
            ("run", Json::Int(1)),
            ("tags", Json::Array(vec![Json::str("a"), Json::str("b")])),
            ("empty", Json::Array(vec![])),
            ("nested", Json::object([("k", Json::Bool(true))])),
        ]);
        let expected = "{\n  \"event\": \"run_started\",\n  \"run\": 1,\n  \"tags\": [\n    \"a\",\n    \"b\"\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"k\": true\n  }\n}";
        assert_eq!(doc.to_pretty(), expected);
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let doc = Json::Array(vec![
            Json::Null,
            Json::Bool(false),
            Json::Int(-42),
            Json::Float(1.5),
            Json::str("line\n\"quoted\"\\ λ🦀"),
            Json::object([("x", Json::Int(0))]),
        ]);
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(parse(r#""Aé🦀\t""#).unwrap(), Json::str("Aé🦀\t"));
    }

    #[test]
    fn parses_large_string_heavy_documents_in_linear_time() {
        // Regression guard: the string scanner used to re-validate the whole
        // remaining input for every character, which made multi-megabyte
        // metrics documents take minutes to parse. Under that quadratic
        // behaviour this test would blow the suite's time budget; under the
        // linear scanner it is instant.
        let long = "x".repeat(64).replace('x', "padding ") + "λ🦀";
        let doc = Json::Array(
            (0..20_000)
                .map(|i| Json::str(format!("{long}{i}")))
                .collect(),
        );
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{not json",
            "",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn accessors() {
        let doc = Json::object([("k", Json::Int(3)), ("s", Json::str("v"))]);
        assert_eq!(doc.get("k").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(doc.get("missing"), None);
    }
}
