//! `report` — regenerate every paper-vs-measured table for EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p park-bench --bin report --release
//! ```
//!
//! Prints markdown: one row per worked example (E1–E8) with the paper's
//! printed result next to the measured one, followed by the quantitative
//! experiments (C1–C6).

use park_baselines::naive_mark_eliminate;
use park_bench::{growth_exponent, median_time_ms, Session};
use park_engine::{
    CompiledProgram, Conflict, ConflictResolver, Engine, EngineOptions, Inertia, Resolution,
    ResolutionScope, SelectContext,
};
use park_policies::{
    PolicyCritic, PreferDelete, PreferInsert, RandomPolicy, RulePriority, ScriptedOracle,
    Specificity, Voting,
};
use park_storage::{FactStore, UpdateSet, Vocabulary};
use park_syntax::parse_program;
use park_workloads as wl;
use std::sync::Arc;

fn session(rules: &str, facts: &str) -> Session {
    Session::new(rules, facts, EngineOptions::default())
}

/// Render a wall-clock speedup ratio as a claim — or refuse to claim one.
///
/// ROADMAP flags the parallel speedup story as unvalidated: timings taken
/// on a single-core host (every thread shares one core) or from an
/// oversubscribed configuration measure scheduling noise, not the effect
/// under test. Such rows keep their raw timings in the tables/JSON, but
/// the report prints no "Nx" claim for them.
fn speedup_claim(ratio: f64, cores: usize, oversubscribed: bool) -> String {
    if cores < 2 {
        "not claimed (1-core host)".to_string()
    } else if oversubscribed {
        "not claimed (oversubscribed)".to_string()
    } else {
        format!("{ratio:.1}x")
    }
}

fn show(store: &FactStore) -> String {
    store.to_string()
}

struct PaperSelect42;
impl ConflictResolver for PaperSelect42 {
    fn name(&self) -> &str {
        "paper-4.2"
    }
    fn select(&mut self, ctx: &SelectContext<'_>, c: &Conflict) -> Result<Resolution, String> {
        let v = ctx.program.vocab();
        let x = v.constant(c.tuple.get(0)).to_string();
        let y = v.constant(c.tuple.get(1)).to_string();
        if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
            Ok(Resolution::Delete)
        } else {
            Ok(Resolution::Insert)
        }
    }
}

fn worked_examples() {
    println!("## Worked examples (E1-E8)\n");
    println!("| id | paper locus | policy | paper result | measured result | agree |");
    println!("|----|-------------|--------|--------------|-----------------|-------|");

    let row = |id: &str, locus: &str, policy: &str, paper: &str, measured: String, note: &str| {
        let agree = if measured == paper {
            "yes".to_string()
        } else {
            format!("see note: {note}")
        };
        println!("| {id} | {locus} | {policy} | `{paper}` | `{measured}` | {agree} |");
    };

    // E1
    let s = session("r1: p -> +q. r2: p -> -a. r3: q -> +a.", "p.");
    row(
        "E1",
        "§4.1 P1",
        "inertia",
        "{p, q}",
        show(&s.run_inertia().database),
        "",
    );

    // E2
    let s = session(
        "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.",
        "p.",
    );
    row(
        "E2",
        "§4.1 P2",
        "inertia",
        "{p, q, r}",
        show(&s.run_inertia().database),
        "",
    );

    // E3
    let s = session(
        "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.",
        "p.",
    );
    row(
        "E3",
        "§4.1 P3",
        "inertia",
        "{a, p}",
        show(&s.run_inertia().database),
        "",
    );

    // E4
    let s = session(
        "r1: p(X), p(Y) -> +q(X, Y). r2: q(X, X) -> -q(X, X).
         r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
        "p(a). p(b). p(c).",
    );
    let out = s.run(&mut PaperSelect42);
    row(
        "E4",
        "§4.2 worked fixpoint",
        "paper's custom SELECT",
        "{p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}",
        show(&out.database),
        "",
    );

    // E5
    let s = session(
        "r1: p(X) -> +q(X). r2: q(X) -> +r(X). r3: +r(X) -> -s(X).",
        "p(a). s(a). s(b).",
    )
    .with_updates("+q(b).");
    row(
        "E5",
        "§4.3 ECA ex.1",
        "inertia",
        "{p(a), q(a), q(b), r(a), r(b)}",
        show(&s.run_inertia().database),
        "",
    );

    // E6
    let s = session(
        "r1: q(X, a) -> -p(X, a). r2: q(a, X) -> +r(a, X). r3: +r(X, Y) -> +p(X, Y).",
        "p(a, a). p(a, b). p(a, c).",
    )
    .with_updates("+q(a, a).");
    row(
        "E6",
        "§4.3 ECA ex.2",
        "inertia",
        "{p(a, a), p(a, b), p(a, c), r(a, a)}",
        show(&s.run_inertia().database),
        "paper erratum — its own fixpoint listing I5 contains q(a,a), which incorp keeps",
    );

    // E7a / E7b
    let s = session(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
        "p.",
    );
    row(
        "E7a",
        "§5 five rules",
        "inertia",
        "{a, b, p}",
        show(&s.run_inertia().database),
        "",
    );
    let s = session(
        "@priority(1) r1: p -> +a. @priority(2) r2: p -> +q. @priority(3) r3: a -> +b.
         @priority(4) r4: a -> -q. @priority(5) r5: b -> +q.",
        "p.",
    );
    row(
        "E7b",
        "§5 five rules",
        "rule priority",
        "{a, b, p, q}",
        show(&s.run(&mut RulePriority::new()).database),
        "",
    );

    // E8
    let s = session(
        "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.",
        "a.",
    );
    row(
        "E8",
        "§5 counterintuitive",
        "inertia",
        "{a}",
        show(&s.run_inertia().database),
        "",
    );
    println!();
}

fn c1_scaling() {
    println!("## C1 — polynomial tractability (runtime vs |D|)\n");
    println!("Transitive closure over G(n, 4/n), seed 9:\n");
    println!("| n | |D| edges | |result| | steps | median ms |");
    println!("|---|----------|----------|-------|-----------|");
    let mut points = Vec::new();
    for n in [16usize, 32, 64, 128, 256] {
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 9);
        let s = session(&wl::transitive_closure_program(), &facts);
        let out = s.run_inertia();
        let ms = median_time_ms(5, || s.run_inertia());
        println!(
            "| {n} | {} | {} | {} | {ms:.2} |",
            s.db.len(),
            out.database.len(),
            out.stats.gamma_steps
        );
        points.push((s.db.len() as f64, ms.max(1e-3)));
    }
    println!(
        "\nempirical growth exponent (t ~ |D|^e): e = {:.2} — polynomial, as required.\n",
        growth_exponent(&points)
    );

    println!("Irreflexive-graph program (§4.2) on n nodes, inertia:\n");
    println!("| n | candidate arcs | conflicts | restarts | median ms |");
    println!("|---|----------------|-----------|----------|-----------|");
    let mut points = Vec::new();
    for n in [4usize, 8, 12, 16, 20] {
        let s = session(&wl::irreflexive_graph_program(), &wl::nodes_database(n));
        let out = s.run_inertia();
        let ms = median_time_ms(3, || s.run_inertia());
        println!(
            "| {n} | {} | {} | {} | {ms:.2} |",
            n * n,
            out.stats.conflicts_resolved,
            out.stats.restarts
        );
        points.push((n as f64, ms.max(1e-3)));
    }
    println!(
        "\nempirical growth exponent in n: e = {:.2} (r3 grounds n^3 instances).\n",
        growth_exponent(&points)
    );
}

fn c2_restarts() {
    println!("## C2 — restart bound (§4.2: at most one elimination per iteration)\n");
    println!("Staggered conflict chains, inertia:\n");
    println!("| chains k | groundings bound | restarts | blocked | median ms |");
    println!("|----------|------------------|----------|---------|-----------|");
    for k in [2usize, 4, 8, 16, 32, 64] {
        let (rules, facts) = wl::staggered_conflicts(k);
        let bound = parse_program(&rules).unwrap().len();
        let s = session(&rules, &facts);
        let out = s.run_inertia();
        let ms = median_time_ms(3, || s.run_inertia());
        println!(
            "| {k} | {bound} | {} | {} | {ms:.2} |",
            out.stats.restarts, out.stats.blocked_instances
        );
        assert!(out.stats.restarts <= bound as u64);
    }
    println!();
}

fn c3_policies() {
    println!("## C3 — policy cost on a fixed conflict load (§5 efficiency)\n");
    let cfg = wl::PayrollConfig {
        employees: 150,
        p_active: 1.0,
        p_eligible: 1.0,
        p_flagged: 1.0,
        p_deactivate: 0.0,
        seed: 13,
    };
    let (facts, _) = wl::payroll_database(&cfg);
    let s = session(&wl::payroll_program(), &facts);
    println!("150 employees, every bonus contested:\n");
    println!("| policy | conflicts | restarts | median ms |");
    println!("|--------|-----------|----------|-----------|");
    let run = |name: &str, policy: &mut dyn ConflictResolver| {
        let out = s.run(policy);
        let ms = median_time_ms(3, || s.run(policy));
        println!(
            "| {name} | {} | {} | {ms:.2} |",
            out.stats.conflicts_resolved, out.stats.restarts
        );
    };
    run("inertia", &mut Inertia);
    run("rule priority", &mut RulePriority::new());
    run("specificity", &mut Specificity::new());
    run("prefer-insert", &mut PreferInsert);
    run("random (seed 1)", &mut RandomPolicy::seeded(1));
    let mut interactive = park_policies::Interactive::new(ScriptedOracle::new(
        std::iter::repeat_n(Resolution::Delete, 1 << 14),
    ));
    run("interactive (scripted)", &mut interactive);
    let mut cheap_panel = Voting::new(
        vec![
            Box::new(PolicyCritic::new(Inertia, Resolution::Delete)),
            Box::new(PolicyCritic::new(PreferDelete, Resolution::Delete)),
            Box::new(PolicyCritic::new(PreferInsert, Resolution::Delete)),
        ],
        Resolution::Delete,
    );
    run("voting (3 cheap critics)", &mut cheap_panel);
    struct ScanCritic;
    impl park_policies::Critic for ScanCritic {
        fn vote(&mut self, ctx: &SelectContext<'_>, _: &Conflict) -> Resolution {
            if ctx.database.iter().count().is_multiple_of(2) {
                Resolution::Delete
            } else {
                Resolution::Insert
            }
        }
    }
    let mut heavy_panel = Voting::new(
        vec![
            Box::new(ScanCritic),
            Box::new(ScanCritic),
            Box::new(ScanCritic),
        ],
        Resolution::Delete,
    );
    run("voting (3 full-scan critics)", &mut heavy_panel);
    println!();
}

fn c4_baseline() {
    println!("## C4 — PARK vs naive mark-and-eliminate (§4.1)\n");
    println!("Correctness divergence (chains with witnesses, inertia):\n");
    println!("| chains k | PARK witnesses | naive witnesses | naive wrong facts |");
    println!("|----------|----------------|-----------------|-------------------|");
    for k in [2usize, 4, 8] {
        let (mut rules, facts) = wl::parallel_conflicts(k, 2);
        for i in 0..k {
            rules.push_str(&format!("w{i}: goal{i} -> +witness{i}.\n"));
        }
        let s = session(&rules, &facts);
        let park_out = s.run_inertia();
        let compiled =
            CompiledProgram::compile(Arc::clone(s.db.vocab()), &parse_program(&rules).unwrap())
                .unwrap();
        let naive_out =
            naive_mark_eliminate(&compiled, &s.db, &UpdateSet::empty(), 1 << 22).unwrap();
        let count = |db: &FactStore| {
            db.sorted_display()
                .iter()
                .filter(|f| f.starts_with("witness"))
                .count()
        };
        println!(
            "| {k} | {} | {} | {} |",
            count(&park_out.database),
            count(&naive_out.database),
            count(&naive_out.database)
        );
    }

    println!("\nRuntime on conflict-free closure (identical results):\n");
    println!("| n | PARK ms | naive ms |");
    println!("|---|---------|----------|");
    for n in [32usize, 64, 128] {
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 21);
        let s = session(&wl::transitive_closure_program(), &facts);
        let compiled = CompiledProgram::compile(
            Arc::clone(s.db.vocab()),
            &parse_program(&wl::transitive_closure_program()).unwrap(),
        )
        .unwrap();
        let park_ms = median_time_ms(5, || s.run_inertia());
        let naive_ms = median_time_ms(5, || {
            naive_mark_eliminate(&compiled, &s.db, &UpdateSet::empty(), 1 << 22).unwrap()
        });
        let park_db = s.run_inertia().database;
        let naive_db = naive_mark_eliminate(&compiled, &s.db, &UpdateSet::empty(), 1 << 22)
            .unwrap()
            .database;
        assert!(park_db.same_facts(&naive_db));
        println!("| {n} | {park_ms:.2} | {naive_ms:.2} |");
    }
    println!();
}

fn c5_ablation() {
    println!("## C5 — resolution scope ablation (§4.2 closing remark)\n");
    println!("Parallel conflict chains (k chains, length 3), inertia:\n");
    println!("| k | scope | restarts | blocked | median ms | same result |");
    println!("|---|-------|----------|---------|-----------|-------------|");
    for k in [4usize, 16, 32, 64] {
        let (rules, facts) = wl::parallel_conflicts(k, 3);
        let mk = |scope| {
            let vocab = Vocabulary::new();
            let engine = Engine::with_options(
                Arc::clone(&vocab),
                &parse_program(&rules).unwrap(),
                EngineOptions::default().with_scope(scope),
            )
            .unwrap();
            let db = FactStore::from_source(vocab, &facts).unwrap();
            (engine, db)
        };
        let (ea, da) = mk(ResolutionScope::All);
        let (eo, do_) = mk(ResolutionScope::One);
        let oa = ea.park(&da, &mut Inertia).unwrap();
        let oo = eo.park(&do_, &mut Inertia).unwrap();
        let same = oa.database.sorted_display() == oo.database.sorted_display();
        let ms_a = median_time_ms(3, || ea.park(&da, &mut Inertia).unwrap());
        let ms_o = median_time_ms(3, || eo.park(&do_, &mut Inertia).unwrap());
        println!(
            "| {k} | all | {} | {} | {ms_a:.2} | {} |",
            oa.stats.restarts,
            oa.stats.blocked_instances,
            if same { "yes" } else { "no" }
        );
        println!(
            "| {k} | one | {} | {} | {ms_o:.2} | |",
            oo.stats.restarts, oo.stats.blocked_instances
        );
    }
    println!();
}

fn c6_evaluation() {
    use park_engine::EvaluationMode;
    println!("## C6 — naive vs semi-naive Γ evaluation (implementation ablation)\n");
    println!("Transitive closure over G(n, 4/n), seed 9 — identical results:\n");
    println!("| n | naive ms | semi-naive ms | speedup | fired naive | fired semi |");
    println!("|---|----------|---------------|---------|-------------|------------|");
    for n in [32usize, 64, 128, 256] {
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 9);
        let naive = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default(),
        );
        let semi = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        );
        let (no, so) = (naive.run_inertia(), semi.run_inertia());
        assert!(no.database.same_facts(&so.database));
        let nm = median_time_ms(5, || naive.run_inertia());
        let sm = median_time_ms(5, || semi.run_inertia());
        println!(
            "| {n} | {nm:.2} | {sm:.2} | {:.1}x | {} | {} |",
            nm / sm.max(1e-6),
            no.stats.groundings_fired,
            so.stats.groundings_fired
        );
    }
    println!();
}

/// C7 — warm vs cold restart recovery, and the `BENCH_restarts.json`
/// artifact. Staggered chains under prefer-insert block each chain's
/// late-firing `kill` rule, so nearly the whole previous run replays after
/// every restart — the workload where warm restarts pay off most. The
/// results are asserted identical either way; only the wall clock differs.
fn c7_warm_restarts(smoke: bool) {
    use park_engine::EvaluationMode;
    use park_json::Json;
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!("## C7 — warm vs cold restart recovery (replay ablation)\n");
    println!("Staggered conflict chains, prefer-insert:\n");
    println!("| chains k | mode | restarts | replayed steps | diverged at | cold ms | warm ms | speedup |");
    println!("|----------|------|----------|----------------|-------------|---------|---------|---------|");
    let sizes: &[usize] = if smoke { &[8] } else { &[16, 32, 64] };
    let mut results: Vec<Json> = Vec::new();
    for &k in sizes {
        let (rules, facts) = wl::staggered_conflicts(k);
        for (mode_name, mode) in [
            ("naive", EvaluationMode::Naive),
            ("semi_naive", EvaluationMode::SemiNaive),
        ] {
            let mk = |warm| {
                Session::new(
                    &rules,
                    &facts,
                    EngineOptions::default()
                        .with_evaluation(mode)
                        .with_warm_restarts(warm),
                )
            };
            let (warm_s, cold_s) = (mk(true), mk(false));
            let warm_out = warm_s.run(&mut PreferInsert);
            let cold_out = cold_s.run(&mut PreferInsert);
            assert!(warm_out.database.same_facts(&cold_out.database));
            assert_eq!(warm_out.stats.restarts, cold_out.stats.restarts);
            assert_eq!(cold_out.stats.replayed_steps, 0);
            assert!(warm_out.stats.replayed_steps > 0);
            let warm_ms = median_time_ms(5, || warm_s.run(&mut PreferInsert));
            let cold_ms = median_time_ms(5, || cold_s.run(&mut PreferInsert));
            let diverged = warm_out
                .stats
                .replay_divergence_step
                .map_or("-".to_string(), |d| d.to_string());
            println!(
                "| {k} | {mode_name} | {} | {} | {diverged} | {cold_ms:.2} | {warm_ms:.2} | {} |",
                warm_out.stats.restarts,
                warm_out.stats.replayed_steps,
                speedup_claim(cold_ms / warm_ms.max(1e-6), cores, false),
            );
            results.push(Json::object([
                ("workload", Json::str(format!("staggered_conflicts_{k}"))),
                ("mode", Json::str(mode_name)),
                ("policy", Json::str("prefer_insert")),
                ("restarts", Json::from(warm_out.stats.restarts)),
                ("replayed_steps", Json::from(warm_out.stats.replayed_steps)),
                (
                    "divergence_step",
                    warm_out
                        .stats
                        .replay_divergence_step
                        .map_or(Json::Null, Json::from),
                ),
                ("cold_ms", Json::Float(cold_ms)),
                ("warm_ms", Json::Float(warm_ms)),
            ]));
        }
    }
    let doc = Json::object([
        ("schema", Json::str("park-bench/restarts-v1")),
        ("smoke", Json::from(smoke)),
        ("results", Json::Array(results)),
    ]);
    let rendered = doc.to_pretty() + "\n";
    match std::fs::write("BENCH_restarts.json", &rendered) {
        Ok(()) => {
            // Self-check: the artifact must reparse and report actual replay.
            let back = park_json::parse(&rendered).expect("BENCH_restarts.json reparses");
            let rows = back
                .get("results")
                .and_then(|r| r.as_array())
                .expect("results array");
            assert!(rows.iter().all(|row| {
                row.get("replayed_steps")
                    .and_then(|n| n.as_i64())
                    .unwrap_or(0)
                    > 0
            }));
            println!("\nMachine-readable grid written to `BENCH_restarts.json` (reparse OK).\n");
        }
        Err(e) => println!("\n(could not write BENCH_restarts.json: {e})\n"),
    }
}

/// Measure every (mode, workload, threads) cell and write the grid as
/// machine-readable JSON to `BENCH_eval.json` (median nanoseconds per full
/// PARK evaluation). Thread count 1 is the sequential path; the parallel
/// cells are observably identical runs (deterministic ordered merge), so
/// the file is a pure performance artifact. Rows requesting more threads
/// than the host offers are flagged `oversubscribed` — the engine clamps
/// the pool to the host, so their timings measure contention-free
/// decomposition overhead, not extra parallelism.
fn bench_eval_json() {
    use park_engine::EvaluationMode;
    use park_json::Json;
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let workloads: Vec<(&str, String, String)> = vec![
        (
            "tc_erdos_renyi_128",
            wl::transitive_closure_program(),
            wl::erdos_renyi_edges(128, 4.0 / 128.0, 9),
        ),
        (
            "tc_path_64",
            wl::transitive_closure_program(),
            wl::path_edges(64),
        ),
    ];
    let mut results: Vec<Json> = Vec::new();
    // C10 inputs: sequential medians on the roadmap's target workload.
    let mut tc_semi_ms = None;
    let mut tc_compiled_ms = None;
    for (workload, rules, facts) in &workloads {
        let mut first_state: Option<Vec<String>> = None;
        for (mode_name, mode) in [
            ("naive", EvaluationMode::Naive),
            ("semi_naive", EvaluationMode::SemiNaive),
            ("compiled", EvaluationMode::Compiled),
        ] {
            for threads in [1usize, 2, 4] {
                let session = Session::new(
                    rules,
                    facts,
                    EngineOptions::default()
                        .with_evaluation(mode)
                        .with_parallelism(if threads == 1 { None } else { Some(threads) }),
                );
                let out = session.run_inertia();
                // All three evaluators must agree before anything is timed.
                let state = out.database.sorted_display();
                match &first_state {
                    None => first_state = Some(state),
                    Some(s) => assert_eq!(s, &state, "{workload}: evaluators disagree"),
                }
                let facts_n = out.database.len();
                let bytes = out.database.encoded_bytes();
                let ms = median_time_ms(5, || session.run_inertia());
                if *workload == "tc_erdos_renyi_128" && threads == 1 {
                    match mode {
                        EvaluationMode::SemiNaive => tc_semi_ms = Some(ms),
                        EvaluationMode::Compiled => tc_compiled_ms = Some(ms),
                        EvaluationMode::Naive => {}
                    }
                }
                results.push(Json::object([
                    ("mode", Json::str(mode_name)),
                    ("workload", Json::str(*workload)),
                    ("threads", Json::from(threads)),
                    ("host_parallelism", Json::from(cores)),
                    // A timing row only validates a parallelism claim when
                    // the host can actually run that many threads at once.
                    ("cores_validated", Json::from(cores >= threads)),
                    ("oversubscribed", Json::from(threads > cores)),
                    ("median_ns", Json::Float(ms * 1e6)),
                    ("facts", Json::from(facts_n)),
                    ("encoded_bytes", Json::from(bytes)),
                    (
                        "bytes_per_fact",
                        if facts_n > 0 {
                            Json::Float(bytes as f64 / facts_n as f64)
                        } else {
                            Json::Null
                        },
                    ),
                ]));
            }
        }
    }
    // C8: the conflict-free certificate fast path. The workload carries
    // syntactic conflict pairs (so without a certificate the engine keeps
    // conflict provenance and scans every Γ step for clashes) but guard
    // refinement certifies it conflict-free; with certificates on, all of
    // that bookkeeping is skipped. Results are asserted identical.
    let cert_rules = wl::guard_partition_program(8);
    let cert_facts = wl::guard_partition_database(8, 400);
    let mut cert_ms = [0.0f64; 2];
    for (slot, (mode_name, certificates)) in
        [("cert_on", true), ("cert_off", false)].iter().enumerate()
    {
        let session = Session::new(
            &cert_rules,
            &cert_facts,
            EngineOptions::default().with_conflict_certificates(*certificates),
        );
        let out = session.run_inertia();
        assert_eq!(out.stats.certified_conflict_free, *certificates);
        assert_eq!(out.stats.restarts, 0);
        let facts_n = out.database.len();
        let bytes = out.database.encoded_bytes();
        let ms = median_time_ms(5, || session.run_inertia());
        cert_ms[slot] = ms;
        results.push(Json::object([
            ("mode", Json::str(*mode_name)),
            ("workload", Json::str("guard_partition_8")),
            ("threads", Json::from(1usize)),
            ("host_parallelism", Json::from(cores)),
            ("cores_validated", Json::from(cores >= 1)),
            ("oversubscribed", Json::from(false)),
            ("median_ns", Json::Float(ms * 1e6)),
            ("facts", Json::from(facts_n)),
            ("encoded_bytes", Json::from(bytes)),
            (
                "bytes_per_fact",
                if facts_n > 0 {
                    Json::Float(bytes as f64 / facts_n as f64)
                } else {
                    Json::Null
                },
            ),
        ]));
    }
    println!("## C8 — conflict-free certificate fast path\n");
    println!(
        "guard_partition_8 (8 guard-split rule pairs, 3200 facts): \
         certificates on {:.2} ms, off {:.2} ms ({}).\n",
        cert_ms[0],
        cert_ms[1],
        speedup_claim(cert_ms[1] / cert_ms[0].max(1e-6), cores, false),
    );
    // C9: cross-transaction incremental evaluation. A certified two-rule
    // program over a 100k-fact base; a chain of small insert transactions
    // is answered by the live warm state and, separately, re-run from
    // scratch per transaction. The cold baseline uses semi-naive
    // evaluation — the best from-scratch configuration — so the reported
    // speedup is conservative. Warm and cold outcomes are asserted
    // identical per transaction before anything is timed (the soundness
    // contract of docs/incremental.md).
    let c9_speedup = {
        use park_engine::{certify_incremental, NoopMetrics, WarmState};
        let rules = "p(X) -> +q(X). q(X), r(X) -> +s(X).";
        let mut facts = String::with_capacity(2 << 20);
        for i in 0..50_000 {
            facts.push_str(&format!("p(k{i}). r(k{i}).\n"));
        }
        let vocab = Vocabulary::new();
        let program = parse_program(rules).expect("C9 program parses");
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &program,
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        )
        .expect("C9 program compiles");
        assert!(certify_incremental(engine.program()));
        let db = FactStore::from_source(vocab, &facts).expect("C9 facts parse");
        let settle = engine
            .run_retaining(&db, &UpdateSet::empty(), &mut Inertia, &mut NoopMetrics)
            .expect("PARK terminates");
        let warm0 = WarmState::build(engine.program(), &settle).expect("C9 warm state builds");
        let base = settle.database;
        let facts_n = base.len();
        let bytes = base.encoded_bytes();
        const K: usize = 8;
        let chain: Vec<UpdateSet> = (0..K)
            .map(|i| {
                UpdateSet::from_source(base.vocab(), &format!("+p(new{i})."))
                    .expect("C9 updates parse")
            })
            .collect();
        {
            let mut warm = warm0.clone();
            let mut state = base.clone();
            for u in &chain {
                let report = warm
                    .transact(engine.program(), u)
                    .expect("C9 insert chain stays warm");
                let out = engine
                    .run(&state, u, &mut Inertia)
                    .expect("PARK terminates");
                let (added, removed) = state.diff(&out.database);
                assert!(removed.is_empty(), "C9 chain is insert-only");
                assert_eq!(report.added, added, "C9 warm/cold outcomes disagree");
                state = out.database;
            }
            assert!(warm.state().same_facts(&state), "C9 final states disagree");
        }
        // The warm side measures a *resident* session: one warm state
        // absorbing round after round of fresh single-fact transactions
        // (cloning it per round would re-copy COW-shared shards on the
        // first mutation and bill per-fact work the session never pays).
        let warm_rounds: Vec<Vec<UpdateSet>> = (0..5)
            .map(|r| {
                (0..K)
                    .map(|i| {
                        UpdateSet::from_source(base.vocab(), &format!("+p(w{r}_{i})."))
                            .expect("C9 updates parse")
                    })
                    .collect()
            })
            .collect();
        let mut warm = warm0.clone();
        let mut round = 0usize;
        let warm_ms = median_time_ms(5, || {
            for u in &warm_rounds[round] {
                let _ = warm.transact(engine.program(), u);
            }
            round += 1;
        }) / K as f64;
        let cold_ms = median_time_ms(5, || {
            let mut state = base.clone();
            for u in &chain {
                state = engine
                    .run(&state, u, &mut Inertia)
                    .expect("PARK terminates")
                    .database;
            }
        }) / K as f64;
        for (mode_name, ms) in [("incremental_warm", warm_ms), ("incremental_cold", cold_ms)] {
            results.push(Json::object([
                ("mode", Json::str(mode_name)),
                ("workload", Json::str("c9_small_updates_100k")),
                ("threads", Json::from(1usize)),
                ("host_parallelism", Json::from(cores)),
                ("cores_validated", Json::from(cores >= 1)),
                ("oversubscribed", Json::from(false)),
                ("median_ns", Json::Float(ms * 1e6)),
                ("facts", Json::from(facts_n)),
                ("encoded_bytes", Json::from(bytes)),
                (
                    "bytes_per_fact",
                    if facts_n > 0 {
                        Json::Float(bytes as f64 / facts_n as f64)
                    } else {
                        Json::Null
                    },
                ),
                ("amortized_over_txs", Json::from(K)),
            ]));
        }
        let speedup = cold_ms / warm_ms.max(1e-9);
        println!("## C9 — cross-transaction incremental evaluation\n");
        println!(
            "c9_small_updates_100k ({facts_n} settled facts, {K}-transaction chain of \
             1-fact inserts): warm {:.3} ms/tx amortized, cold semi-naive {:.3} ms/tx \
             ({speedup:.1}x; single-threaded, algorithmic — no parallelism claim).\n",
            warm_ms, cold_ms,
        );
        speedup
    };
    // C10: the compiled bytecode evaluator (`--eval compiled`) vs the
    // interpreted semi-naive plan walker, sequential, on the roadmap's
    // target workload. Both rows already carry the honest
    // `host_parallelism`/`cores_validated` flags in the grid above.
    let c10_speedup = {
        let semi = tc_semi_ms.expect("C10 semi-naive row measured");
        let compiled = tc_compiled_ms.expect("C10 compiled row measured");
        let speedup = semi / compiled.max(1e-9);
        println!("## C10 — compiled evaluator (register bytecode)\n");
        println!(
            "c10_compiled tc_erdos_renyi_128: compiled {compiled:.2} ms vs \
             semi-naive {semi:.2} ms ({speedup:.2}x; single-threaded, \
             algorithmic — no parallelism claim).\n"
        );
        speedup
    };
    // C11: deletion-affected-stratum reuse. A certified two-stratum program
    // over a ~100k-fact settled base: a heavy positive stratum (50k `p → q`
    // derivations) and a small negation stratum (`flag, !mute → alert`).
    // Each transaction deletes one `flag` fact — a change whose affected
    // closure is the top stratum alone — so the warm path seeds one minus
    // mark, commits the removal, and revalidates only the `alert` rules,
    // while the cold baseline re-fires all 50k+ groundings from scratch.
    // Warm and cold outcomes are asserted identical per transaction before
    // anything is timed.
    let c11_speedup = {
        use park_engine::{certify_incremental, NoopMetrics, WarmState};
        let rules = "p(X) -> +q(X). flag(X), !mute(X) -> +alert(X).";
        let mut facts = String::with_capacity(2 << 20);
        for i in 0..49_500 {
            facts.push_str(&format!("p(k{i}).\n"));
        }
        for i in 0..500 {
            facts.push_str(&format!("flag(f{i}).\n"));
        }
        for i in 0..50 {
            facts.push_str(&format!("mute(f{i}).\n"));
        }
        let vocab = Vocabulary::new();
        let program = parse_program(rules).expect("C11 program parses");
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &program,
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        )
        .expect("C11 program compiles");
        assert!(
            certify_incremental(engine.program()),
            "stratified negation certifies"
        );
        let db = FactStore::from_source(vocab, &facts).expect("C11 facts parse");
        let settle = engine
            .run_retaining(&db, &UpdateSet::empty(), &mut Inertia, &mut NoopMetrics)
            .expect("PARK terminates");
        let warm0 = WarmState::build(engine.program(), &settle).expect("C11 warm state builds");
        let base = settle.database;
        let facts_n = base.len();
        let bytes = base.encoded_bytes();
        const K: usize = 8;
        let chain: Vec<UpdateSet> = (0..K)
            .map(|i| {
                UpdateSet::from_source(base.vocab(), &format!("-flag(f{}).", 100 + i))
                    .expect("C11 updates parse")
            })
            .collect();
        {
            let mut warm = warm0.clone();
            let mut state = base.clone();
            for u in &chain {
                let report = warm
                    .transact(engine.program(), u)
                    .expect("C11 base deletions stay warm");
                let out = engine
                    .run(&state, u, &mut Inertia)
                    .expect("PARK terminates");
                let (added, removed) = state.diff(&out.database);
                assert_eq!(report.added, added, "C11 warm/cold added disagree");
                assert_eq!(report.removed, removed, "C11 warm/cold removed disagree");
                assert_eq!(
                    report.stats.gamma_steps, out.stats.gamma_steps,
                    "C11 warm/cold gamma_steps disagree"
                );
                state = out.database;
            }
            assert!(warm.state().same_facts(&state), "C11 final states disagree");
        }
        // As in C9, the warm side measures a resident session: one warm
        // state absorbing rounds of fresh single-deletion transactions.
        let warm_rounds: Vec<Vec<UpdateSet>> = (0..5)
            .map(|r| {
                (0..K)
                    .map(|i| {
                        UpdateSet::from_source(
                            base.vocab(),
                            &format!("-flag(f{}).", 150 + r * K + i),
                        )
                        .expect("C11 updates parse")
                    })
                    .collect()
            })
            .collect();
        let mut warm = warm0.clone();
        let mut round = 0usize;
        let warm_ms = median_time_ms(5, || {
            for u in &warm_rounds[round] {
                let _ = warm.transact(engine.program(), u);
            }
            round += 1;
        }) / K as f64;
        let cold_ms = median_time_ms(5, || {
            let mut state = base.clone();
            for u in &chain {
                state = engine
                    .run(&state, u, &mut Inertia)
                    .expect("PARK terminates")
                    .database;
            }
        }) / K as f64;
        for (mode_name, ms) in [
            ("partial_stratum_warm", warm_ms),
            ("partial_stratum_cold", cold_ms),
        ] {
            results.push(Json::object([
                ("mode", Json::str(mode_name)),
                ("workload", Json::str("c11_top_stratum_deletions_100k")),
                ("threads", Json::from(1usize)),
                ("host_parallelism", Json::from(cores)),
                ("cores_validated", Json::from(cores >= 1)),
                ("oversubscribed", Json::from(false)),
                ("median_ns", Json::Float(ms * 1e6)),
                ("facts", Json::from(facts_n)),
                ("encoded_bytes", Json::from(bytes)),
                (
                    "bytes_per_fact",
                    if facts_n > 0 {
                        Json::Float(bytes as f64 / facts_n as f64)
                    } else {
                        Json::Null
                    },
                ),
                ("amortized_over_txs", Json::from(K)),
            ]));
        }
        let speedup = cold_ms / warm_ms.max(1e-9);
        println!("## C11 — deletion-affected-stratum reuse\n");
        println!(
            "c11_top_stratum_deletions_100k ({facts_n} settled facts, {K}-transaction chain \
             of 1-fact `flag` deletions): warm partial-stratum {:.3} ms/tx amortized, cold \
             semi-naive {:.3} ms/tx ({speedup:.1}x; single-threaded, algorithmic — no \
             parallelism claim).\n",
            warm_ms, cold_ms,
        );
        speedup
    };
    let doc = Json::object([
        ("schema", Json::str("park-bench/eval-v1")),
        ("host_parallelism", Json::from(cores)),
        ("c9_small_update_speedup", Json::Float(c9_speedup)),
        ("c10_compiled_speedup", Json::Float(c10_speedup)),
        ("c11_partial_stratum_speedup", Json::Float(c11_speedup)),
        ("results", Json::Array(results)),
    ]);
    match std::fs::write("BENCH_eval.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("Machine-readable evaluation grid written to `BENCH_eval.json`.\n"),
        Err(e) => println!("(could not write BENCH_eval.json: {e})\n"),
    }
}

/// Run the representative C7 warm-restart workload once with the engine's
/// JSON metrics sink and write the full `park-metrics/v1` document: the
/// per-step / per-restart / per-replay detail behind C7's summary table,
/// aggregatable with `park report`.
fn write_bench_metrics(path: &str) {
    use park_engine::JsonMetrics;
    let (rules, facts) = wl::staggered_conflicts(8);
    let s = session(&rules, &facts);
    let mut sink = JsonMetrics::new("bench");
    let out = s
        .engine
        .run_with_metrics(&s.db, &s.updates, &mut PreferInsert, &mut sink)
        .expect("PARK terminates");
    assert!(out.stats.replayed_steps > 0);
    match std::fs::write(path, sink.to_json().to_pretty() + "\n") {
        Ok(()) => println!("Metrics document (C7 warm run) written to `{path}`.\n"),
        Err(e) => println!("(could not write {path}: {e})\n"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default());
    if let Some(section) = only {
        match section.as_str() {
            "restarts" => c7_warm_restarts(smoke),
            "eval" => bench_eval_json(),
            other => {
                eprintln!("unknown --only section `{other}` (expected: restarts, eval)");
                std::process::exit(2);
            }
        }
        if let Some(path) = metrics {
            write_bench_metrics(&path);
        }
        return;
    }
    println!("# PARK paper-vs-measured report\n");
    println!("(regenerate with `cargo run -p park-bench --bin report --release`)\n");
    worked_examples();
    c1_scaling();
    c2_restarts();
    c3_policies();
    c4_baseline();
    c5_ablation();
    c6_evaluation();
    c7_warm_restarts(smoke);
    bench_eval_json();
    if let Some(path) = metrics {
        write_bench_metrics(&path);
    }
}
