//! # park-bench
//!
//! Shared harness for the PARK experiments. The Criterion benches under
//! `benches/` and the `report` binary both build their workloads through
//! this crate so that timed runs and reported tables use identical inputs.
//!
//! Experiment index (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * **C1** `benches/scaling.rs` — polynomial tractability: runtime vs |D|.
//! * **C2** `benches/restarts.rs` — restart counts vs conflict count.
//! * **C3** `benches/policies.rs` — policy cost on a fixed conflict load.
//! * **C4** `benches/baseline.rs` — PARK vs the naive strawman.
//! * **C5** `benches/ablation.rs` — resolve-all vs one-at-a-time scopes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use park_engine::{Engine, EngineOptions, Inertia, ParkOutcome};
use park_storage::{FactStore, UpdateSet, Vocabulary};
use park_syntax::parse_program;
use std::sync::Arc;

/// A compiled engine together with its database: one benchmarkable unit.
pub struct Session {
    /// The compiled engine.
    pub engine: Engine,
    /// The database instance `D`.
    pub db: FactStore,
    /// Transaction updates `U` (possibly empty).
    pub updates: UpdateSet,
}

impl Session {
    /// Build a session from rule and fact sources.
    pub fn new(rules: &str, facts: &str, options: EngineOptions) -> Session {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &parse_program(rules).expect("workload rules parse"),
            options,
        )
        .expect("workload rules compile");
        let db = FactStore::from_source(Arc::clone(&vocab), facts).expect("workload facts parse");
        Session {
            engine,
            db,
            updates: UpdateSet::empty(),
        }
    }

    /// Attach transaction updates.
    pub fn with_updates(mut self, updates: &str) -> Session {
        self.updates =
            UpdateSet::from_source(self.db.vocab(), updates).expect("workload updates parse");
        self
    }

    /// Evaluate under the principle of inertia.
    pub fn run_inertia(&self) -> ParkOutcome {
        self.engine
            .run(&self.db, &self.updates, &mut Inertia)
            .expect("PARK terminates")
    }

    /// Evaluate under an arbitrary policy.
    pub fn run(&self, policy: &mut dyn park_engine::ConflictResolver) -> ParkOutcome {
        self.engine
            .run(&self.db, &self.updates, policy)
            .expect("PARK terminates")
    }
}

/// Time one closure in milliseconds (single shot — the report tool wants
/// magnitudes and shapes, not criterion-grade precision).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-k timing in milliseconds.
pub fn median_time_ms<T>(k: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..k.max(1)).map(|_| time_ms(&mut f).1).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Fit the exponent of a power law `t = c·nᵉ` by least squares on
/// log-transformed points. Used to check polynomial (not exponential)
/// growth in the scaling experiments.
pub fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(n, t)| *n > 0.0 && *t > 0.0)
        .map(|(n, t)| (n.ln(), t.ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_runs() {
        let s = Session::new("p -> +q.", "p.", EngineOptions::default());
        assert_eq!(s.run_inertia().database.to_string(), "{p, q}");
    }

    #[test]
    fn session_with_updates() {
        let s =
            Session::new("+q(X) -> +seen(X).", "", EngineOptions::default()).with_updates("+q(b).");
        let out = s.run_inertia();
        assert_eq!(out.database.sorted_display(), vec!["q(b)", "seen(b)"]);
    }

    #[test]
    fn growth_exponent_recovers_powers() {
        let quad: Vec<(f64, f64)> = (1..=6).map(|n| (n as f64, (n * n) as f64)).collect();
        assert!((growth_exponent(&quad) - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..=6).map(|n| (n as f64, 3.0 * n as f64)).collect();
        assert!((growth_exponent(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_time_is_finite() {
        let t = median_time_ms(3, || std::hint::black_box(1 + 1));
        assert!(t >= 0.0 && t.is_finite());
    }
}
