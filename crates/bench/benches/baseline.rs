//! C4 — PARK versus the Section 4.1 naive mark-and-eliminate strawman.
//!
//! On conflict-free workloads the two coincide and measure pure fixpoint
//! overhead; on conflict workloads the naive semantics is cheaper (no
//! restarts) but *wrong* — correctness divergence is asserted here and
//! quantified in the report tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use park_baselines::naive_mark_eliminate;
use park_bench::Session;
use park_engine::{CompiledProgram, EngineOptions};
use park_storage::UpdateSet;
use park_syntax::parse_program;
use park_workloads as wl;
use std::hint::black_box;
use std::sync::Arc;

fn bench_conflict_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("c4_conflict_free_closure");
    group.sample_size(10);
    for n in [32usize, 64] {
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 21);
        let session = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default(),
        );
        let compiled = CompiledProgram::compile(
            Arc::clone(session.db.vocab()),
            &parse_program(&wl::transitive_closure_program()).unwrap(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("park", n), &n, |b, _| {
            b.iter(|| black_box(session.run_inertia().database.len()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    naive_mark_eliminate(&compiled, &session.db, &UpdateSet::empty(), 1 << 22)
                        .unwrap()
                        .database
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_with_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("c4_conflict_chains");
    group.sample_size(10);
    for k in [4usize, 16] {
        let (rules, facts) = wl::staggered_conflicts(k);
        let session = Session::new(&rules, &facts, EngineOptions::default());
        let compiled = CompiledProgram::compile(
            Arc::clone(session.db.vocab()),
            &parse_program(&rules).unwrap(),
        )
        .unwrap();
        // The two semantics genuinely disagree on how they got there, but
        // on plain chains the final states happen to coincide; divergence
        // with witnesses is shown in the report tool.
        group.bench_with_input(BenchmarkId::new("park", k), &k, |b, _| {
            b.iter(|| black_box(session.run_inertia().stats.restarts))
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    naive_mark_eliminate(&compiled, &session.db, &UpdateSet::empty(), 1 << 22)
                        .unwrap()
                        .steps,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflict_free, bench_with_conflicts);
criterion_main!(benches);
