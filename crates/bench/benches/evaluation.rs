//! C6 — naive vs semi-naive Γ evaluation (an implementation ablation; the
//! two modes are observably identical, see `park_engine::seminaive`), plus
//! the parallel variants of both modes at 2 and 4 threads (also observably
//! identical — the ordered merge reproduces the sequential stream).
//!
//! Recursive workloads make naive evaluation re-derive the entire closure
//! every step (O(steps × |closure| × joins)); the delta-driven evaluator
//! touches each derivation once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use park_bench::Session;
use park_engine::{EngineOptions, EvaluationMode};
use park_workloads as wl;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("c6_evaluation_mode");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 9);
        let naive = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default(),
        );
        let semi = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        );
        // The modes must agree before we time them.
        assert!(naive
            .run_inertia()
            .database
            .same_facts(&semi.run_inertia().database));

        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive.run_inertia().database.len()))
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| black_box(semi.run_inertia().database.len()))
        });
        for threads in [2usize, 4] {
            let par = Session::new(
                &wl::transitive_closure_program(),
                &facts,
                EngineOptions::default()
                    .with_evaluation(EvaluationMode::SemiNaive)
                    .with_parallelism(Some(threads)),
            );
            assert!(par
                .run_inertia()
                .database
                .same_facts(&semi.run_inertia().database));
            group.bench_with_input(
                BenchmarkId::new(format!("semi_naive_t{threads}"), n),
                &n,
                |b, _| b.iter(|| black_box(par.run_inertia().database.len())),
            );
        }
    }
    group.finish();
}

fn bench_modes_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("c6_evaluation_mode_path");
    group.sample_size(10);
    for n in [32usize, 64] {
        let naive = Session::new(
            &wl::transitive_closure_program(),
            &wl::path_edges(n),
            EngineOptions::default(),
        );
        let semi = Session::new(
            &wl::transitive_closure_program(),
            &wl::path_edges(n),
            EngineOptions::default().with_evaluation(EvaluationMode::SemiNaive),
        );
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive.run_inertia().database.len()))
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| black_box(semi.run_inertia().database.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_modes_path);
criterion_main!(benches);
