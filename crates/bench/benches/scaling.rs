//! C1 — polynomial tractability (paper Section 3, "the result database
//! state should be computable in time polynomial in the size of the input
//! database instance", and the Section 4.2 complexity argument).
//!
//! Series: transitive closure over Erdős–Rényi graphs and paths (recursion,
//! no conflicts) and the Section 4.2 irreflexive-graph program (conflict
//! resolution at scale), each swept over |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use park_bench::Session;
use park_engine::EngineOptions;
use park_workloads as wl;
use std::hint::black_box;

fn bench_closure_er(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_closure_erdos_renyi");
    group.sample_size(10);
    for n in [16usize, 32, 64, 128] {
        // Fixed expected out-degree 4: p = 4/n keeps density constant.
        let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 9);
        let session = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(session.run_inertia().database.len()))
        });
    }
    group.finish();
}

fn bench_closure_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_closure_path");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let session = Session::new(
            &wl::transitive_closure_program(),
            &wl::path_edges(n),
            EngineOptions::default(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(session.run_inertia().database.len()))
        });
    }
    group.finish();
}

fn bench_closure_parallel(c: &mut Criterion) {
    // Transitive closure at a fixed size, swept over thread counts; thread
    // count 1 is the sequential path (no pool), the baseline for speedup.
    let mut group = c.benchmark_group("c1_closure_parallel");
    group.sample_size(10);
    let n = 128usize;
    let facts = wl::erdos_renyi_edges(n, 4.0 / n as f64, 9);
    for threads in [1usize, 2, 4] {
        let session = Session::new(
            &wl::transitive_closure_program(),
            &facts,
            EngineOptions::default()
                .with_evaluation(park_engine::EvaluationMode::SemiNaive)
                .with_parallelism(if threads == 1 { None } else { Some(threads) }),
        );
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| black_box(session.run_inertia().database.len()))
        });
    }
    group.finish();
}

fn bench_irreflexive_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_irreflexive_graph");
    group.sample_size(10);
    for n in [4usize, 8, 12, 16] {
        let session = Session::new(
            &wl::irreflexive_graph_program(),
            &wl::nodes_database(n),
            EngineOptions::default(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(session.run_inertia().stats.restarts))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_closure_er,
    bench_closure_path,
    bench_closure_parallel,
    bench_irreflexive_graph
);
criterion_main!(benches);
