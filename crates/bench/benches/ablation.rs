//! C5 — the Section 4.2 closing remark: blocking only "a non-empty part of
//! conflicts" avoids unnecessary blocking. Resolve-all (the paper default)
//! versus one-conflict-per-restart on parallel conflict chains: resolve-all
//! restarts once and blocks everything; one-at-a-time restarts k times but
//! blocks only what each conflict needs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use park_bench::Session;
use park_engine::{EngineOptions, ResolutionScope};
use park_workloads::parallel_conflicts;
use std::hint::black_box;

fn bench_scopes(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_resolution_scope");
    group.sample_size(10);
    for k in [4usize, 16, 32] {
        let (rules, facts) = parallel_conflicts(k, 3);
        let all = Session::new(&rules, &facts, EngineOptions::default());
        let one = Session::new(
            &rules,
            &facts,
            EngineOptions::default().with_scope(ResolutionScope::One),
        );
        // Shape sanity (asserted once, not in the timed loop).
        let (oa, oo) = (all.run_inertia(), one.run_inertia());
        assert_eq!(oa.stats.restarts, 1);
        assert_eq!(oo.stats.restarts, k as u64);
        assert!(oa.database.same_facts(&oo.database));

        group.bench_with_input(BenchmarkId::new("all", k), &k, |b, _| {
            b.iter(|| black_box(all.run_inertia().stats.blocked_instances))
        });
        group.bench_with_input(BenchmarkId::new("one", k), &k, |b, _| {
            b.iter(|| black_box(one.run_inertia().stats.blocked_instances))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scopes);
criterion_main!(benches);
