//! C3 — the Section 5 efficiency discussion: "the principles of inertia,
//! rule priority, interactive conflict resolution and random conflict
//! resolution are all easy to implement and can be viewed as constant time
//! operations … the voting scheme's computational properties are
//! constant-time modulo the complexity of the critics themselves."
//!
//! Identical conflict workload (the payroll bonus conflicts) under every
//! policy; an artificially expensive critic shows the voting caveat.

use criterion::{criterion_group, criterion_main, Criterion};
use park_bench::Session;
use park_engine::{Conflict, EngineOptions, Resolution, SelectContext};
use park_policies::{
    Critic, Inertia, PolicyCritic, PreferDelete, PreferInsert, RandomPolicy, RulePriority,
    ScriptedOracle, Specificity, Voting,
};
use park_workloads::{payroll_database, payroll_program, PayrollConfig};
use std::hint::black_box;

fn conflict_heavy_session() -> Session {
    // Everyone flagged and eligible: every active employee's bonus is
    // contested.
    let cfg = PayrollConfig {
        employees: 150,
        p_active: 1.0,
        p_eligible: 1.0,
        p_flagged: 1.0,
        p_deactivate: 0.0,
        seed: 13,
    };
    let (facts, _) = payroll_database(&cfg);
    Session::new(&payroll_program(), &facts, EngineOptions::default())
}

/// A deliberately expensive critic: scans the whole database per vote.
struct ScanCritic;
impl Critic for ScanCritic {
    fn name(&self) -> &str {
        "scan"
    }
    fn vote(&mut self, ctx: &SelectContext<'_>, _: &Conflict) -> Resolution {
        let n = ctx.database.iter().count();
        if n.is_multiple_of(2) {
            Resolution::Delete
        } else {
            Resolution::Insert
        }
    }
}

fn bench_policies(c: &mut Criterion) {
    let session = conflict_heavy_session();
    let mut group = c.benchmark_group("c3_policies");
    group.sample_size(10);

    group.bench_function("inertia", |b| {
        b.iter(|| black_box(session.run(&mut Inertia).stats.conflicts_resolved))
    });
    group.bench_function("priority", |b| {
        b.iter(|| {
            black_box(
                session
                    .run(&mut RulePriority::new())
                    .stats
                    .conflicts_resolved,
            )
        })
    });
    group.bench_function("specificity", |b| {
        b.iter(|| {
            black_box(
                session
                    .run(&mut Specificity::new())
                    .stats
                    .conflicts_resolved,
            )
        })
    });
    group.bench_function("prefer_insert", |b| {
        b.iter(|| black_box(session.run(&mut PreferInsert).stats.conflicts_resolved))
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            black_box(
                session
                    .run(&mut RandomPolicy::seeded(1))
                    .stats
                    .conflicts_resolved,
            )
        })
    });
    group.bench_function("interactive_scripted", |b| {
        b.iter(|| {
            // Enough scripted answers for every contested bonus.
            let mut policy = park_policies::Interactive::new(ScriptedOracle::new(
                std::iter::repeat_n(Resolution::Delete, 4096),
            ));
            black_box(session.run(&mut policy).stats.conflicts_resolved)
        })
    });
    group.bench_function("voting_cheap_panel", |b| {
        b.iter(|| {
            let mut panel = Voting::new(
                vec![
                    Box::new(PolicyCritic::new(Inertia, Resolution::Delete)),
                    Box::new(PolicyCritic::new(PreferDelete, Resolution::Delete)),
                    Box::new(PolicyCritic::new(PreferInsert, Resolution::Delete)),
                ],
                Resolution::Delete,
            );
            black_box(session.run(&mut panel).stats.conflicts_resolved)
        })
    });
    group.bench_function("voting_expensive_critics", |b| {
        b.iter(|| {
            let mut panel = Voting::new(
                vec![
                    Box::new(ScanCritic),
                    Box::new(ScanCritic),
                    Box::new(ScanCritic),
                ],
                Resolution::Delete,
            );
            black_box(session.run(&mut panel).stats.conflicts_resolved)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
