//! C2 — the Section 4.2 termination/complexity argument: "the above
//! iterative procedure is only executed at most size(P) times … after
//! conflict resolution, at least one rule from P is eliminated."
//!
//! Staggered conflict chains force exactly one restart per conflict;
//! runtime should grow polynomially with the number of chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use park_bench::Session;
use park_engine::EngineOptions;
use park_policies::PreferInsert;
use park_workloads::staggered_conflicts;
use std::hint::black_box;

fn bench_staggered(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_staggered_restarts");
    group.sample_size(10);
    for k in [2usize, 4, 8, 16, 32] {
        let (rules, facts) = staggered_conflicts(k);
        let session = Session::new(&rules, &facts, EngineOptions::default());
        // Sanity: the restart count equals the conflict count, well under
        // the paper's bound (one per grounding).
        assert_eq!(session.run_inertia().stats.restarts, k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(session.run_inertia().stats.restarts))
        });
    }
    group.finish();
}

/// Warm vs cold restart recovery on the same staggered chains. Under
/// prefer-insert the blocked grounding is each chain's late-firing `kill`
/// rule, so nearly the whole previous run replays after every restart —
/// the workload where warm restarts should pay off most.
fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_warm_vs_cold");
    group.sample_size(10);
    for k in [8usize, 16, 32] {
        let (rules, facts) = staggered_conflicts(k);
        for (label, warm) in [("warm", true), ("cold", false)] {
            let session = Session::new(
                &rules,
                &facts,
                EngineOptions::default().with_warm_restarts(warm),
            );
            // Sanity: identical restart counts, and only the warm session
            // actually replays.
            let out = session.run(&mut PreferInsert);
            assert_eq!(out.stats.restarts, k as u64);
            assert_eq!(out.stats.replayed_steps > 0, warm);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| black_box(session.run(&mut PreferInsert).stats.restarts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_staggered, bench_warm_vs_cold);
criterion_main!(benches);
