//! Edge cases of `EngineOptions` and degenerate inputs: thread counts far
//! beyond the available work, empty programs, empty databases, and
//! self-undoing rules.

use park_engine::{
    Engine, EngineOptions, EvaluationMode, Inertia, ParkOutcome, ResolutionScope, TraceEvent,
};
use park_storage::{FactStore, Vocabulary};
use park_syntax::parse_program;
use std::sync::Arc;

fn run(rules: &str, facts: &str, options: EngineOptions) -> ParkOutcome {
    let vocab = Vocabulary::new();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &parse_program(rules).unwrap(), options).unwrap();
    let db = FactStore::from_source(vocab, facts).unwrap();
    engine.park(&db, &mut Inertia).unwrap()
}

#[test]
fn more_threads_than_tasks_is_unobservable() {
    // One rule, one fact: at most one evaluation task per step, so a
    // 32-thread pool is pure overhead — and must change nothing observable.
    for rules in ["p -> +q.", "p -> +q. p -> -a. q -> +a."] {
        let opts = EngineOptions::traced();
        let seq = run(rules, "p.", opts);
        let wide = run(rules, "p.", opts.with_parallelism(Some(32)));
        assert_eq!(seq.fingerprint(), wide.fingerprint(), "{rules}");
    }
}

#[test]
fn empty_program_returns_database_in_one_step() {
    // Γ_{∅,B}(I) = I immediately: one (no-op) step, no restarts, and a
    // trace of exactly RunStarted + Fixpoint.
    let out = run("", "p(a). q(b).", EngineOptions::traced());
    assert_eq!(out.database.sorted_display(), vec!["p(a)", "q(b)"]);
    assert_eq!(out.stats.gamma_steps, 1);
    assert_eq!(out.stats.restarts, 0);
    assert_eq!(out.trace.len(), 2);
    assert!(matches!(
        out.trace.events()[0],
        TraceEvent::RunStarted { run: 1 }
    ));
    assert!(matches!(
        out.trace.events()[1],
        TraceEvent::Fixpoint { run: 1, .. }
    ));
}

#[test]
fn empty_database_fires_only_unconditional_rules() {
    // Positive bodies cannot hold in an empty database; only the
    // body-less update rule fires.
    let out = run("p -> +q. -> +r.", "", EngineOptions::traced());
    assert_eq!(out.database.sorted_display(), vec!["r"]);
    assert_eq!(out.stats.restarts, 0);

    // Fully empty instance: nothing to do at all.
    let out = run("p -> +q.", "", EngineOptions::default());
    assert!(out.database.sorted_display().is_empty());
    assert_eq!(out.stats.gamma_steps, 1);
}

#[test]
fn self_undoing_rule_deletes_without_conflict() {
    // `a -> -a.` on D = {a}: -a is derived, nothing inserts a, so there is
    // no two-sided conflict — incorp simply removes a. The body stays
    // valid after the mark (validity of `a` looks at I° ∪ I⁺), so the run
    // converges rather than oscillating.
    for evaluation in [EvaluationMode::Naive, EvaluationMode::SemiNaive] {
        for scope in [ResolutionScope::All, ResolutionScope::One] {
            let out = run(
                "a -> -a.",
                "a.",
                EngineOptions::traced()
                    .with_evaluation(evaluation)
                    .with_scope(scope),
            );
            assert!(
                out.database.sorted_display().is_empty(),
                "{evaluation:?}/{scope:?}"
            );
            assert_eq!(out.stats.restarts, 0);
            assert_eq!(out.stats.conflicts_resolved, 0);
            assert!(out.blocked_display().is_empty());
        }
    }
}
