//! Golden-file test for the `park-metrics/v1` document.
//!
//! The paper's §5 five-rule example under inertia is fully deterministic in
//! sequential mode — every step, restart cause, replay record, and per-rule
//! tally is fixed by the semantics — so the emitted document must match the
//! checked-in golden byte for byte once wall-clock fields (`nanos`,
//! `elapsed_ns`) are normalized to 0.
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test -p park-engine --test
//! metrics_golden` after an intentional schema change, and update
//! `docs/metrics.md` to match.

use park_engine::{Engine, EngineOptions, Inertia, JsonMetrics};
use park_json::Json;
use park_storage::{FactStore, Vocabulary};
use std::sync::Arc;

fn normalize_clocks(j: &mut Json) {
    match j {
        Json::Object(members) => {
            for (k, v) in members.iter_mut() {
                if k == "nanos" || k == "elapsed_ns" {
                    *v = Json::Int(0);
                } else {
                    normalize_clocks(v);
                }
            }
        }
        Json::Array(items) => items.iter_mut().for_each(normalize_clocks),
        _ => {}
    }
}

#[test]
fn section5_document_matches_the_golden_file() {
    let vocab = Vocabulary::new();
    let program = park_syntax::parse_program(
        "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
    )
    .unwrap();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &program, EngineOptions::default()).unwrap();
    let db = FactStore::from_source(vocab, "p.").unwrap();
    let mut sink = JsonMetrics::new("run");
    let out = engine
        .park_with_metrics(&db, &mut Inertia, &mut sink)
        .unwrap();
    assert_eq!(out.stats.restarts, 2);
    assert_eq!(sink.totals(), out.stats.counters());

    let mut doc = sink.to_json();
    normalize_clocks(&mut doc);
    let rendered = format!("{}\n", doc.to_pretty());

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_section5.json"
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDENS=1 to create it");
    assert_eq!(
        rendered, golden,
        "park-metrics/v1 document changed; if intentional, regenerate with \
         UPDATE_GOLDENS=1 and update docs/metrics.md"
    );
}
