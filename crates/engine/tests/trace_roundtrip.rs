//! Property tests for the trace JSON codec: arbitrary event streams must
//! survive `to_json`/`from_json` unchanged, with particular attention to
//! the `Inconsistent { deferred }` field (added for `ResolutionScope::One`)
//! and the legacy format without it.

use park_engine::{Resolution, Trace, TraceEvent};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a",
        "q(b)",
        "p(c0, c1)",
        "r",
        "s(x)",
        "goal_3",
        "link0_1",
    ])
    .prop_map(String::from)
}

fn arb_names(max: usize) -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_name(), 0..max)
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (1u64..9).prop_map(|run| TraceEvent::RunStarted { run }),
        ((1u64..9), (1u64..9), arb_name(), arb_names(4)).prop_map(|(run, step, interp, added)| {
            TraceEvent::Step {
                run,
                step,
                interp,
                added,
            }
        }),
        ((1u64..9), (1u64..9), arb_names(3), arb_names(3)).prop_map(
            |(run, step, atoms, deferred)| TraceEvent::Inconsistent {
                run,
                step,
                atoms,
                deferred,
            }
        ),
        (arb_name(), prop::bool::ANY, arb_names(3)).prop_map(|(conflict, ins, blocked)| {
            TraceEvent::ConflictResolved {
                conflict,
                policy: "inertia".into(),
                resolution: if ins {
                    Resolution::Insert
                } else {
                    Resolution::Delete
                },
                blocked,
            }
        }),
        ((1u64..9), arb_name(), arb_names(3)).prop_map(|(run, interp, blocked)| {
            TraceEvent::Fixpoint {
                run,
                interp,
                blocked,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any event stream round-trips through the JSON codec byte-exactly at
    /// the event level.
    #[test]
    fn trace_json_roundtrips(events in prop::collection::vec(arb_event(), 0..12)) {
        let mut trace = Trace::new();
        for e in &events {
            trace.push(e.clone());
        }
        let back = Trace::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(back.events(), trace.events());
    }

    /// The `deferred` field specifically: present (possibly empty) in every
    /// encoded `inconsistent` event, and absent-but-defaulted when parsing
    /// traces written before the field existed.
    #[test]
    fn deferred_field_roundtrips_and_legacy_parses(
        atoms in arb_names(3),
        deferred in arb_names(3),
        run in 1u64..9,
        step in 1u64..9,
    ) {
        let mut trace = Trace::new();
        trace.push(TraceEvent::Inconsistent { run, step, atoms: atoms.clone(), deferred: deferred.clone() });
        let json = trace.to_json();
        prop_assert!(json.contains("\"deferred\""), "{}", json);
        let back = Trace::from_json(&json).unwrap();
        prop_assert_eq!(back.events(), trace.events());

        // The legacy format (no `deferred` member at all) must decode to an
        // empty deferred list, whatever the other fields hold.
        let atom_list = atoms
            .iter()
            .map(|a| format!("{a:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let legacy = format!(
            r#"[{{"event": "inconsistent", "run": {run}, "step": {step}, "atoms": [{atom_list}]}}]"#
        );
        let back = Trace::from_json(&legacy).unwrap();
        prop_assert_eq!(
            back.events(),
            &[TraceEvent::Inconsistent { run, step, atoms: atoms.clone(), deferred: vec![] }]
        );
    }
}
