//! Guard test for the warm path's O(per-update) promise.
//!
//! `WarmState::transact` with `U = ∅` is the heartbeat of a resident
//! database: `park serve` answers `settle` requests with it whenever the
//! warm state is live. The fast path must do per-update work only — no
//! lens capture, no grounding enumeration, no state clone — so its
//! allocation count must be a small constant independent of how many
//! facts the committed state holds.
//!
//! Pinned with the same counting global allocator as `snapshot_alloc.rs`
//! (its own integration-test binary because the allocator is
//! process-wide): two warm databases with a 100x different fact count
//! must allocate *identically* on a no-op transaction.

use park_engine::{
    certify_incremental, CompiledProgram, Engine, EngineOptions, Inertia, NoopMetrics, WarmState,
};
use park_storage::{FactStore, UpdateSet, Vocabulary};
use park_syntax::parse_program;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and is async-signal-safe (a relaxed atomic add).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// A warm reachability database over an `n`-node cycle: `n` edge facts,
/// plus the program's full transitive closure in the committed state and
/// in the warm plus zone — the fact count scales as O(n²).
fn warm_db(n: usize) -> (CompiledProgram, WarmState) {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(v{i}, v{}).\n", (i + 1) % n));
    }
    let vocab = Vocabulary::new();
    let program = parse_program("e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z).").unwrap();
    let engine =
        Engine::with_options(Arc::clone(&vocab), &program, EngineOptions::default()).unwrap();
    assert!(certify_incremental(engine.program()));
    let db = FactStore::from_source(vocab, &src).unwrap();
    let settle = engine
        .run_retaining(&db, &UpdateSet::empty(), &mut Inertia, &mut NoopMetrics)
        .unwrap();
    let warm = WarmState::build(engine.program(), &settle).expect("warm state builds");
    (engine.program().clone(), warm)
}

#[test]
fn noop_transaction_on_a_warm_database_does_no_per_fact_work() {
    let (small_program, mut small) = warm_db(4);
    let (large_program, mut large) = warm_db(40);
    assert_eq!(small.state().len(), 4 + 4 * 4);
    assert_eq!(large.state().len(), 40 + 40 * 40);

    let empty = UpdateSet::empty();
    // Warm up lazy allocator state, then take the minimum over a few
    // measurements so unrelated runtime allocations can't inflate a count.
    let _ = small.transact(&small_program, &empty);
    let measure = |f: &mut dyn FnMut()| (0..5).map(|_| allocations_in(&mut *f)).min().unwrap();

    let on_small = measure(&mut || {
        let _ = small.transact(&small_program, &empty);
    });
    let on_large = measure(&mut || {
        let _ = large.transact(&large_program, &empty);
    });
    assert_eq!(
        on_small, on_large,
        "a no-op warm transaction's allocation count must not scale with the database"
    );
    // Per-update work on zero updates means a constant handful of
    // allocations (the report itself), not a per-fact pass.
    assert!(
        on_large <= 4,
        "no-op transaction on a 1640-fact warm database allocated {on_large} times"
    );
}
