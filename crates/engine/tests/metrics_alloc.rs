//! Guard test for the metrics layer's zero-cost-when-disabled guarantee.
//!
//! `Engine::run_with_metrics` with a disabled sink must take the exact same
//! code path as `Engine::run` — no per-step `Instant` reads, no span
//! buffers, no resolution-cause strings. This binary installs a counting
//! global allocator and asserts the two entry points allocate the same
//! number of times on an identical run.
//!
//! Lives in its own integration-test binary because a `#[global_allocator]`
//! is process-wide; sharing a binary with other tests would let their
//! allocations pollute the counts.

use park_engine::{Engine, EngineOptions, Inertia, NoopMetrics};
use park_storage::{FactStore, Vocabulary};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and is async-signal-safe (a relaxed atomic add).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_sink_allocates_exactly_like_plain_run() {
    // A conflict-free transitive-closure run: several Γ steps of real work,
    // no restarts, fully deterministic allocation behavior.
    let vocab = Vocabulary::new();
    let program =
        park_syntax::parse_program("e(X, Y) -> +t(X, Y). t(X, Y), e(Y, Z) -> +t(X, Z).").unwrap();
    let engine = Engine::with_options(
        std::sync::Arc::clone(&vocab),
        &program,
        EngineOptions::default(),
    )
    .unwrap();
    let db = FactStore::from_source(vocab, "e(a, b). e(b, c). e(c, d). e(d, e). e(e, f).").unwrap();

    let plain = || {
        engine.park(&db, &mut Inertia).unwrap();
    };
    let disabled = || {
        engine
            .park_with_metrics(&db, &mut Inertia, &mut NoopMetrics)
            .unwrap();
    };

    // Warm up both paths (lazy statics, allocator pools), then take the
    // minimum over a few measurements so unrelated runtime allocations
    // (test-harness I/O on another thread) can't produce a flaky inflated
    // count for either side.
    plain();
    disabled();
    let measure = |f: &dyn Fn()| (0..5).map(|_| allocations_in(f)).min().unwrap();
    let plain_allocs = measure(&plain);
    let disabled_allocs = measure(&disabled);

    assert!(plain_allocs > 0, "the run itself must allocate");
    assert_eq!(
        plain_allocs, disabled_allocs,
        "a disabled metrics sink must not change the allocation profile"
    );
}
