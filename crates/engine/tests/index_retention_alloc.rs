//! Guard test for secondary-index retention across copy-on-write clones.
//!
//! `Relation::ensure_index` tags every index with the arena generation it
//! was built at, and `FactStore::ensure_index` checks for a current index
//! through a *shared* reference before reaching for `Arc::make_mut`. The
//! combination is what makes warm restarts O(changed-shards): a restart
//! state cloned from an indexed seed database must neither rebuild the
//! index (the arena is unchanged, so the generation tag still matches)
//! nor deep-copy the shard (the check never takes a mutable path).
//!
//! The test pins both promises with the same counting-allocator harness
//! as `snapshot_alloc.rs`: re-ensuring an index on a clone of an
//! unchanged store must allocate identically for a 10-fact and a
//! 1000-fact store (in fact, not at all), and must leave the process-wide
//! copy-on-write shard-copy counter untouched. It lives in the engine's
//! tests because `park-storage` is `#![forbid(unsafe_code)]` and a
//! `#[global_allocator]` impl is unsafe; it gets its own integration-test
//! binary because the allocator is process-wide.

use park_storage::{cow_shard_clones, ColumnMask, FactStore, Vocabulary};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and is async-signal-safe (a relaxed atomic add).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// A store with one relation `e/2` holding `n` facts.
fn store_with(n: usize) -> FactStore {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(a{i}, b{i}).\n"));
    }
    FactStore::from_source(Vocabulary::new(), &src).unwrap()
}

#[test]
fn reensuring_an_index_on_a_clone_does_no_per_row_work() {
    let mask = ColumnMask::from_cols([0]);
    let mut small = store_with(10);
    let mut large = store_with(1000);
    let e_small = small.vocab().lookup_pred("e").unwrap();
    let e_large = large.vocab().lookup_pred("e").unwrap();

    // First build pays O(rows) — that's the lazy rebuild working as
    // intended, not what this test guards.
    small.ensure_index(e_small, mask);
    large.ensure_index(e_large, mask);
    assert!(small.relation(e_small).unwrap().has_index(mask));

    // A clone shares the indexed shard; re-ensuring the same index on it
    // must be a pure read: same allocation count regardless of fact
    // count — zero, in fact — and no copy-on-write shard copy.
    let measure = |store: &FactStore, pred| {
        (0..5)
            .map(|_| {
                let mut clone = store.clone();
                let cow_before = cow_shard_clones();
                let allocs = allocations_in(|| clone.ensure_index(pred, mask));
                assert_eq!(
                    cow_shard_clones(),
                    cow_before,
                    "re-ensuring a retained index must not deep-copy the shard"
                );
                assert!(clone.relation(pred).unwrap().has_index(mask));
                allocs
            })
            .min()
            .unwrap()
    };
    let reensure_small = measure(&small, e_small);
    let reensure_large = measure(&large, e_large);
    assert_eq!(
        reensure_small, reensure_large,
        "re-ensure allocation count must not scale with fact count"
    );
    assert_eq!(
        reensure_large, 0,
        "re-ensuring a retained index allocated {reensure_large} times"
    );

    // Mutating the clone's shard *after* the check still shares the
    // index: the COW copy carries it over, generation tag intact.
    let mut clone = large.clone();
    clone.insert_row(e_large, large.relation(e_large).unwrap().row(0));
    assert!(
        clone.relation(e_large).unwrap().has_index(mask),
        "a duplicate insert must not invalidate the retained index"
    );
}
