//! Guard test for the storage layer's O(changed-shards) snapshot promise.
//!
//! `Checkpoint::capture` shares a `FactStore`'s relation shards by `Arc`,
//! so creating a snapshot of an unchanged database must perform **zero
//! per-fact work**: the allocation count is a function of the shard count
//! alone, not of how many facts the shards hold. The same holds for
//! `Checkpoint::restore` and for `FactStore::clone` — the operation warm
//! restarts and the testkit's cold copies lean on.
//!
//! The test pins this down with a counting global allocator (the same
//! harness as `metrics_alloc.rs`): two stores with identical shard layout
//! but a 100x different fact count must allocate *identically* under all
//! three operations. It lives in the engine's tests because
//! `park-storage` itself is `#![forbid(unsafe_code)]` and a
//! `#[global_allocator]` impl is unsafe; it gets its own integration-test
//! binary because the allocator is process-wide.

use park_storage::{Checkpoint, FactStore, Vocabulary};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and is async-signal-safe (a relaxed atomic add).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// A store with two relations (`e/2`, `p/1`) holding `n` facts each.
fn store_with(n: usize) -> FactStore {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(a{i}, b{i}). p(a{i}).\n"));
    }
    FactStore::from_source(Vocabulary::new(), &src).unwrap()
}

#[test]
fn snapshot_of_unchanged_database_does_no_per_fact_work() {
    let small = store_with(10);
    let large = store_with(1000);
    assert_eq!(large.len(), 2000);

    // Warm up lazy allocator state, then take the minimum over a few
    // measurements so unrelated runtime allocations can't inflate a count.
    let _ = Checkpoint::capture(&small);
    let measure = |f: &mut dyn FnMut()| (0..5).map(|_| allocations_in(&mut *f)).min().unwrap();

    let capture_small = measure(&mut || {
        let _ = Checkpoint::capture(&small);
    });
    let capture_large = measure(&mut || {
        let _ = Checkpoint::capture(&large);
    });
    assert_eq!(
        capture_small, capture_large,
        "Checkpoint::capture allocation count must not scale with fact count"
    );
    // O(#shards) really means a handful of Vec/Arc bookkeeping allocations.
    assert!(
        capture_large <= 8,
        "capture of a 2000-fact store allocated {capture_large} times"
    );

    let cp_small = Checkpoint::capture(&small);
    let cp_large = Checkpoint::capture(&large);
    let restore_small = measure(&mut || {
        let _ = cp_small.restore();
    });
    let restore_large = measure(&mut || {
        let _ = cp_large.restore();
    });
    assert_eq!(
        restore_small, restore_large,
        "Checkpoint::restore allocation count must not scale with fact count"
    );

    // The warm-restart path: cloning a store shares every shard.
    let clone_small = measure(&mut || {
        let _ = small.clone();
    });
    let clone_large = measure(&mut || {
        let _ = large.clone();
    });
    assert_eq!(
        clone_small, clone_large,
        "FactStore::clone allocation count must not scale with fact count"
    );
}
