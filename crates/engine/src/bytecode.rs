//! The compiled evaluator: flat register bytecode for rule bodies.
//!
//! The third evaluation mode (`EvaluationMode::Compiled`) lowers each
//! [`crate::compile::CompiledRule`] into a flat sequence of register-style
//! ops ([`Op`]) over interned [`Code`] values — see [`crate::lower`](mod@crate::lower) for
//! the lowering pass and its cost model. This module holds the lowered
//! program representation and the batch executor that runs it.
//!
//! ## Execution model
//!
//! A rule with `n` variables executes over *frames* of `n` registers. Ops
//! run left to right; each [`Op::Access`] expands every input frame by the
//! matching rows of one relation zone (applying its column checks and
//! register binds), while [`Op::Neg`] and [`Op::Guard`] filter frames
//! through. Frames reaching the end of the op list emit one
//! [`FiredAction`] each (unless the grounding is blocked).
//!
//! Unlike the tree-walking interpreters in [`crate::gamma`] and
//! [`crate::seminaive`], propagation is *batch-at-a-time*: frames flow
//! through the ops in chunks of up to `CHUNK` (recursing once per chunk,
//! not once per tuple), registers are plain `Code` slots with statically
//! known boundness (no `Option`, no undo lists), and index probes go
//! through [`park_storage::Relation::index_bucket`] — the op's own checks
//! subsume the per-candidate verification a [`park_storage::Relation`]
//! probe iterator would repeat.
//!
//! ## Identity with the other evaluators
//!
//! The delta-pass machinery mirrors [`crate::seminaive`] exactly: the same
//! unit decomposition (negation-delta fallback, one pass per binding op
//! with a provably non-empty delta window), the same window assignment,
//! and the same shard-task grouping with ordered merge for parallel runs.
//! Per Γ step the *set* of enumerated groundings is therefore identical to
//! naive/semi-naive evaluation; only the emission order within a step may
//! differ when the cost model reorders a join (the differential harness
//! compares compiled runs under the order-free regime, and One-scope runs
//! against their own sequential pivot — see `park_testkit::harness`).

use crate::compile::RuleId;
use crate::gamma::{merge_units, FiredAction};
use crate::grounding::{BlockedSet, Grounding};
use crate::interp::IInterpretation;
use crate::seminaive::ZoneLens;
use crate::validity;
use park_storage::hash::hash_codes;
use park_storage::{Code, ColumnMask, FxHashMap, PredId, Relation, Value};
use park_syntax::{CompOp, Sign};

/// Maximum frames per propagation chunk: the executor recurses into the
/// next op once per chunk, so join depth costs one call per `CHUNK` frames
/// instead of one per tuple.
pub(crate) const CHUNK: usize = 1024;

/// Source of one probe-key column or head column: a compile-time constant
/// or a frame register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySrc {
    /// An interned constant.
    Const(Code),
    /// The value of a frame register.
    Reg(u16),
}

impl KeySrc {
    #[inline]
    pub(crate) fn value(self, frame: &[Code]) -> Code {
        match self {
            KeySrc::Const(c) => c,
            KeySrc::Reg(r) => frame[r as usize],
        }
    }
}

/// What a column check compares the row value against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSrc {
    /// An interned constant.
    Const(Code),
    /// A register bound by an earlier op.
    Reg(u16),
    /// An earlier column of the *same* row (repeated variable within one
    /// atom whose first occurrence is bound by this op).
    Col(u16),
}

/// An equality check of one row column, run before any binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColCheck {
    /// The row column to test.
    pub col: u16,
    /// What it must equal.
    pub src: CheckSrc,
}

/// A register bind: copy a row column into a frame register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColBind {
    /// The row column to read.
    pub col: u16,
    /// The register to write.
    pub reg: u16,
}

/// Which interpretation zone(s) an access op enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessZone {
    /// `I° ∪ I⁺` with `I⁺` rows deduplicated against `I°` — a positive
    /// condition literal.
    Both,
    /// `I⁺` only — an insert event literal.
    Plus,
    /// `I⁻` only — a delete event literal.
    Minus,
}

/// Which zone a binding op's delta pass watches for growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// The op enumerates new `I⁺` marks of this predicate.
    Plus(PredId),
    /// The op enumerates new `I⁻` marks of this predicate.
    Minus(PredId),
}

/// One enumeration step: extend each input frame by the matching rows of
/// one relation zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOp {
    /// The predicate whose shard(s) this op enumerates.
    pub pred: PredId,
    /// Which zone(s).
    pub zone: AccessZone,
    /// Bound columns at this point of the plan (probe mask). Empty means a
    /// full scan.
    pub mask: ColumnMask,
    /// Probe-key sources, one per `mask` column in ascending column order.
    pub key: Box<[KeySrc]>,
    /// Cost-model verdict: probe the *base* zone through its hash index
    /// (`true`) or scan it (`false`). `I⁺`/`I⁻` zones always probe when
    /// the mask is non-empty (they grow without bound during a run).
    pub index_base: bool,
    /// Column equality checks — cover every constant and bound-variable
    /// column, subsuming probe verification.
    pub checks: Box<[ColCheck]>,
    /// Register binds for this op's newly bound variables.
    pub binds: Box<[ColBind]>,
}

/// One lowered instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Enumerate matching rows of a zone, binding registers.
    Access(AccessOp),
    /// Negated-literal filter: the fully instantiated row must satisfy
    /// `valid_neg` (all its columns are constants or bound registers).
    Neg {
        /// The negated predicate.
        pred: PredId,
        /// The row pattern, fully determined by the frame.
        row: Box<[KeySrc]>,
    },
    /// Comparison-guard filter over bound values.
    Guard {
        /// The comparison operator.
        op: CompOp,
        /// Left operand.
        lhs: KeySrc,
        /// Right operand.
        rhs: KeySrc,
    },
}

/// One rule lowered to bytecode. Produced by [`crate::lower::lower`].
#[derive(Debug, Clone)]
pub struct LoweredRule {
    /// The source rule's id (groundings report it).
    pub(crate) rule_id: RuleId,
    /// Head polarity.
    pub(crate) head_sign: Sign,
    /// Head predicate.
    pub(crate) head_pred: PredId,
    /// Head column sources.
    pub(crate) head: Box<[KeySrc]>,
    /// Frame width: one register per rule variable.
    pub(crate) num_regs: u16,
    /// The ops, in execution order.
    pub(crate) ops: Box<[Op]>,
    /// Indices (into `ops`) of the binding access ops, in op order — the
    /// delta positions of semi-naive-style passes.
    pub(crate) binding_ops: Box<[u32]>,
    /// The zone each binding op's delta pass watches, parallel to
    /// `binding_ops`.
    pub(crate) delta_kinds: Box<[DeltaKind]>,
    /// Predicates of negated body literals (for the fallback trigger).
    pub(crate) neg_preds: Box<[PredId]>,
    /// False for body-less rules (they fire only in a run's first step).
    pub(crate) has_body: bool,
    /// The predicate the first op enumerates, if it is an access — the
    /// shard-task grouping key.
    pub(crate) step0_pred: Option<PredId>,
}

/// Which window of a zone an access op enumerates in the current pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Window {
    /// Everything present before the previous step (`[0, prev)`).
    Old,
    /// Added during the previous step (`[prev, curr)`).
    Delta,
    /// The whole current extension.
    Full,
}

/// One unit of compiled evaluation, in sequential emission order —
/// mirrors `crate::seminaive`'s unit decomposition.
#[derive(Debug, Clone, Copy)]
enum CompiledUnit {
    /// Full enumeration of one rule (step 0, or the negation-delta
    /// fallback).
    Full { rule: usize },
    /// One delta-position pass of one rule.
    Delta { rule: usize, delta_pos: usize },
}

impl CompiledUnit {
    fn rule(&self) -> usize {
        match *self {
            CompiledUnit::Full { rule } | CompiledUnit::Delta { rule, .. } => rule,
        }
    }
}

/// A batch of frames: `count` frames of `stride` registers each, stored
/// contiguously. `count` is tracked separately so zero-variable rules
/// (stride 0) still count frames.
#[derive(Debug, Default)]
struct FrameBuf {
    stride: usize,
    data: Vec<Code>,
    count: usize,
}

impl FrameBuf {
    fn reset(&mut self, stride: usize) {
        self.stride = stride;
        self.data.clear();
        self.count = 0;
    }

    #[inline]
    fn frame(&self, i: usize) -> &[Code] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }
}

/// Reusable per-task execution buffers: one frame buffer per op depth plus
/// a row buffer for negation lookups.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    levels: Vec<FrameBuf>,
    row: Vec<Code>,
    windows: Vec<Window>,
    unit_frame: FrameBuf,
}

impl ExecScratch {
    pub(crate) fn new() -> Self {
        ExecScratch::default()
    }
}

/// Read-only context of one pass over one rule.
struct PassCx<'a> {
    blocked: &'a BlockedSet,
    interp: &'a IInterpretation,
    prev: &'a ZoneLens,
    curr: &'a ZoneLens,
}

#[inline]
fn check_one(c: &ColCheck, row: &[Code], frame: &[Code]) -> bool {
    row[c.col as usize]
        == match c.src {
            CheckSrc::Const(v) => v,
            CheckSrc::Reg(r) => frame[r as usize],
            CheckSrc::Col(c2) => row[c2 as usize],
        }
}

/// Specialized small-arity check dispatch: bodies of arity ≤ 3 run their
/// checks fully unrolled instead of through the iterator machinery.
#[inline]
fn checks_pass(checks: &[ColCheck], row: &[Code], frame: &[Code]) -> bool {
    match checks {
        [] => true,
        [a] => check_one(a, row, frame),
        [a, b] => check_one(a, row, frame) && check_one(b, row, frame),
        [a, b, c] => {
            check_one(a, row, frame) && check_one(b, row, frame) && check_one(c, row, frame)
        }
        many => many.iter().all(|c| check_one(c, row, frame)),
    }
}

/// Append `frame` to `buf` with this op's binds applied (unrolled for
/// arity ≤ 3, like the checks).
#[inline]
fn push_bound(buf: &mut FrameBuf, frame: &[Code], binds: &[ColBind], row: &[Code]) {
    let start = buf.data.len();
    buf.data.extend_from_slice(frame);
    let dst = &mut buf.data[start..];
    match binds {
        [] => {}
        [a] => dst[a.reg as usize] = row[a.col as usize],
        [a, b] => {
            dst[a.reg as usize] = row[a.col as usize];
            dst[b.reg as usize] = row[b.col as usize];
        }
        [a, b, c] => {
            dst[a.reg as usize] = row[a.col as usize];
            dst[b.reg as usize] = row[b.col as usize];
            dst[c.reg as usize] = row[c.col as usize];
        }
        many => {
            for bind in many {
                dst[bind.reg as usize] = row[bind.col as usize];
            }
        }
    }
    buf.count += 1;
}

/// Enumerate the rows of `rel` in insertion positions `[lo, hi)` that pass
/// the op's checks against `frame`, through the hash index when the cost
/// model picked one (falling back to a scan when the index is absent).
#[inline]
fn enum_zone(
    rel: &Relation,
    op: &AccessOp,
    frame: &[Code],
    lo: u32,
    hi: u32,
    use_index: bool,
    mut f: impl FnMut(&[Code]),
) {
    let hi = hi.min(u32::try_from(rel.len()).expect("relation too large"));
    let lo = lo.min(hi);
    if lo >= hi {
        return;
    }
    if use_index && !op.mask.is_empty() {
        let h = hash_codes(op.key.iter().map(|k| k.value(frame)));
        if let Some(bucket) = rel.index_bucket(op.mask, h) {
            // Candidates are ascending positions; the checks verify them
            // (hash candidates are not certainties).
            let start = bucket.partition_point(|&p| p < lo);
            for &pos in &bucket[start..] {
                if pos >= hi {
                    break;
                }
                let row = rel.row(pos);
                if checks_pass(&op.checks, row, frame) {
                    f(row);
                }
            }
            return;
        }
    }
    for pos in lo..hi {
        let row = rel.row(pos);
        if checks_pass(&op.checks, row, frame) {
            f(row);
        }
    }
}

fn expand_access(
    op: &AccessOp,
    window: Window,
    cx: &PassCx<'_>,
    frame: &[Code],
    buf: &mut FrameBuf,
) {
    match op.zone {
        AccessZone::Both => {
            let base = cx.interp.base().relation(op.pred);
            // Base rows are all "old": enumerate them except in the Delta
            // window (the base cannot contain delta rows).
            if window != Window::Delta {
                if let Some(rel) = base {
                    enum_zone(rel, op, frame, 0, u32::MAX, op.index_base, |row| {
                        push_bound(buf, frame, &op.binds, row);
                    });
                }
            }
            if let Some(rel) = cx.interp.plus().relation(op.pred) {
                let (lo, hi) = match window {
                    Window::Old => (0, cx.prev.plus_len(op.pred)),
                    Window::Delta => (cx.prev.plus_len(op.pred), cx.curr.plus_len(op.pred)),
                    Window::Full => (0, u32::MAX),
                };
                // Skip the base dedup entirely when the base shard is
                // empty — on recursive workloads every derived row lives
                // in I⁺ alone.
                let dedup = base.is_some_and(|b| !b.is_empty());
                enum_zone(rel, op, frame, lo, hi, true, |row| {
                    if dedup && cx.interp.base().contains_row(op.pred, row) {
                        return; // deduplicated against the base zone
                    }
                    push_bound(buf, frame, &op.binds, row);
                });
            }
        }
        AccessZone::Plus | AccessZone::Minus => {
            let (zone, plen, clen) = match op.zone {
                AccessZone::Plus => (
                    cx.interp.plus(),
                    cx.prev.plus_len(op.pred),
                    cx.curr.plus_len(op.pred),
                ),
                _ => (
                    cx.interp.minus(),
                    cx.prev.minus_len(op.pred),
                    cx.curr.minus_len(op.pred),
                ),
            };
            if let Some(rel) = zone.relation(op.pred) {
                let (lo, hi) = match window {
                    Window::Old => (0, plen),
                    Window::Delta => (plen, clen),
                    Window::Full => (0, u32::MAX),
                };
                enum_zone(rel, op, frame, lo, hi, true, |row| {
                    push_bound(buf, frame, &op.binds, row);
                });
            }
        }
    }
}

/// Evaluate a lowered guard: equality compares codes directly (interning
/// is injective), ordered comparisons decode through the vocabulary and
/// are integer-only (symbols compare false) — mirrors
/// `CompiledLiteral::eval_guard`.
fn eval_guard(cx: &PassCx<'_>, op: CompOp, lhs: KeySrc, rhs: KeySrc, frame: &[Code]) -> bool {
    let (l, r) = (lhs.value(frame), rhs.value(frame));
    match op {
        CompOp::Eq => l == r,
        CompOp::Ne => l != r,
        _ => {
            let vocab = cx.interp.vocab();
            match (vocab.decode(l), vocab.decode(r)) {
                (Value::Int(a), Value::Int(b)) => op.eval_ordering(a.cmp(&b)),
                _ => false,
            }
        }
    }
}

fn emit(lr: &LoweredRule, cx: &PassCx<'_>, frame: &[Code], out: &mut Vec<FiredAction>) {
    let grounding = Grounding {
        rule: lr.rule_id,
        subst: frame.into(),
    };
    if !cx.blocked.contains(&grounding) {
        let tuple: Box<[Code]> = lr.head.iter().map(|k| k.value(frame)).collect();
        out.push(FiredAction {
            sign: lr.head_sign,
            pred: lr.head_pred,
            tuple,
            grounding,
        });
    }
}

/// Propagate one chunk of frames through ops `d..`: batch-at-a-time, one
/// recursion per chunk. Emission order equals the depth-first order of the
/// tree interpreters because each level preserves its input order and
/// flushes full chunks before consuming later input frames.
fn descend(
    lr: &LoweredRule,
    cx: &PassCx<'_>,
    windows: &[Window],
    d: usize,
    input: &FrameBuf,
    scratch: &mut ExecScratch,
    out: &mut Vec<FiredAction>,
) {
    if d == lr.ops.len() {
        for i in 0..input.count {
            emit(lr, cx, input.frame(i), out);
        }
        return;
    }
    let mut buf = std::mem::take(&mut scratch.levels[d]);
    buf.reset(lr.num_regs as usize);
    for i in 0..input.count {
        let frame = input.frame(i);
        match &lr.ops[d] {
            Op::Access(op) => expand_access(op, windows[d], cx, frame, &mut buf),
            Op::Neg { pred, row } => {
                scratch.row.clear();
                scratch.row.extend(row.iter().map(|k| k.value(frame)));
                if validity::valid_neg(cx.interp, *pred, &scratch.row) {
                    let start = buf.data.len();
                    buf.data.extend_from_slice(frame);
                    let _ = start;
                    buf.count += 1;
                }
            }
            Op::Guard { op, lhs, rhs } => {
                if eval_guard(cx, *op, *lhs, *rhs, frame) {
                    buf.data.extend_from_slice(frame);
                    buf.count += 1;
                }
            }
        }
        if buf.count >= CHUNK {
            descend(lr, cx, windows, d + 1, &buf, scratch, out);
            buf.data.clear();
            buf.count = 0;
        }
    }
    if buf.count > 0 {
        descend(lr, cx, windows, d + 1, &buf, scratch, out);
    }
    scratch.levels[d] = buf;
}

/// Run one pass (full or delta-windowed) of one rule.
#[allow(clippy::too_many_arguments)]
fn run_pass(
    lr: &LoweredRule,
    cx: &PassCx<'_>,
    delta_pos: Option<usize>,
    scratch: &mut ExecScratch,
    out: &mut Vec<FiredAction>,
) {
    if scratch.levels.len() < lr.ops.len() {
        scratch.levels.resize_with(lr.ops.len(), FrameBuf::default);
    }
    scratch.windows.clear();
    scratch.windows.resize(lr.ops.len(), Window::Full);
    if let Some(dp) = delta_pos {
        for (j, &op_idx) in lr.binding_ops.iter().enumerate() {
            scratch.windows[op_idx as usize] = match j.cmp(&dp) {
                std::cmp::Ordering::Less => Window::Old,
                std::cmp::Ordering::Equal => Window::Delta,
                std::cmp::Ordering::Greater => Window::Full,
            };
        }
    }
    let windows = std::mem::take(&mut scratch.windows);
    // The seed: one frame of garbage registers (every register is written
    // before it is read — boundness is static).
    let mut unit = std::mem::take(&mut scratch.unit_frame);
    unit.reset(lr.num_regs as usize);
    unit.data.resize(lr.num_regs as usize, Code(0));
    unit.count = 1;
    descend(lr, cx, &windows, 0, &unit, scratch, out);
    scratch.unit_frame = unit;
    scratch.windows = windows;
}

/// The delta units of one compiled step, mirroring
/// `crate::seminaive::plan_units`: body-less rules never re-fire, a rule
/// whose negated literal gained `-b` marks falls back to full enumeration,
/// and every other rule gets one pass per binding op whose delta window
/// provably gained marks.
fn plan_units(rules: &[LoweredRule], prev: &ZoneLens, curr: &ZoneLens) -> Vec<CompiledUnit> {
    let mut units = Vec::new();
    for (rule_idx, lr) in rules.iter().enumerate() {
        if !lr.has_body {
            continue;
        }
        if lr
            .neg_preds
            .iter()
            .any(|&p| curr.minus_len(p) > prev.minus_len(p))
        {
            units.push(CompiledUnit::Full { rule: rule_idx });
            continue;
        }
        for (delta_pos, kind) in lr.delta_kinds.iter().enumerate() {
            let grew = match *kind {
                DeltaKind::Plus(p) => curr.plus_len(p) > prev.plus_len(p),
                DeltaKind::Minus(p) => curr.minus_len(p) > prev.minus_len(p),
            };
            if grew {
                units.push(CompiledUnit::Delta {
                    rule: rule_idx,
                    delta_pos,
                });
            }
        }
    }
    units
}

/// Group unit indices into shard tasks by the predicate their rule's first
/// op enumerates (first-appearance order); rules enumerating no shard get
/// their own task — the same decomposition as the other evaluators, so the
/// task count is thread-independent.
fn plan_shards(rules: &[LoweredRule], units: &[CompiledUnit]) -> Vec<Vec<usize>> {
    let mut tasks: Vec<Vec<usize>> = Vec::new();
    let mut by_pred: FxHashMap<PredId, usize> = FxHashMap::default();
    let mut by_rule: FxHashMap<usize, usize> = FxHashMap::default();
    for (u, unit) in units.iter().enumerate() {
        let rule_idx = unit.rule();
        match rules[rule_idx].step0_pred {
            Some(p) => match by_pred.get(&p) {
                Some(&t) => tasks[t].push(u),
                None => {
                    by_pred.insert(p, tasks.len());
                    tasks.push(vec![u]);
                }
            },
            None => match by_rule.get(&rule_idx) {
                Some(&t) => tasks[t].push(u),
                None => {
                    by_rule.insert(rule_idx, tasks.len());
                    tasks.push(vec![u]);
                }
            },
        }
    }
    tasks
}

/// Run a list of units (sequentially or on the shard-task pool) and return
/// the merged action stream plus the task count.
#[allow(clippy::too_many_arguments)]
fn run_units(
    rules: &[LoweredRule],
    units: Vec<CompiledUnit>,
    cx: &PassCx<'_>,
    threads: Option<usize>,
    workers: usize,
    spans: Option<&mut Vec<crate::metrics::TaskSpan>>,
) -> (Vec<FiredAction>, u64) {
    let threads = threads.unwrap_or(1).max(1);
    let tasks = plan_shards(rules, &units);
    let n_tasks = tasks.len() as u64;
    let run_unit = |unit: CompiledUnit, scratch: &mut ExecScratch, buf: &mut Vec<FiredAction>| {
        let (rule, delta_pos) = match unit {
            CompiledUnit::Full { rule } => (rule, None),
            CompiledUnit::Delta { rule, delta_pos } => (rule, Some(delta_pos)),
        };
        run_pass(&rules[rule], cx, delta_pos, scratch, buf);
    };
    if threads == 1 && spans.is_none() {
        // Fast sequential path: units in order, no per-unit buffers.
        let mut out = Vec::new();
        let mut scratch = ExecScratch::new();
        for &unit in &units {
            run_unit(unit, &mut scratch, &mut out);
        }
        return (out, n_tasks);
    }
    let workers = if threads == 1 { 1 } else { workers };
    let tagged = crate::parallel::run_ordered(
        &tasks,
        workers,
        |task: &Vec<usize>, _gamma_scratch, buf: &mut Vec<(usize, Vec<FiredAction>)>| {
            let mut scratch = ExecScratch::new();
            for &u in task {
                let mut ubuf = Vec::new();
                run_unit(units[u], &mut scratch, &mut ubuf);
                buf.push((u, ubuf));
            }
        },
        spans,
    );
    (merge_units(units.len(), tagged), n_tasks)
}

/// Full compiled enumeration: every non-blocked valid grounding of every
/// rule, in rule order — the compiled analogue of [`crate::gamma::fire_all`].
pub fn fire_all_lowered(
    lowered: &crate::lower::LoweredProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
) -> Vec<FiredAction> {
    fire_all_lowered_metered(lowered, blocked, interp, None, 1, None).0
}

/// [`fire_all_lowered`] with the pool size decoupled from the decomposition
/// and optional per-task span collection (the fixpoint loop's entry point).
pub(crate) fn fire_all_lowered_metered(
    lowered: &crate::lower::LoweredProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    threads: Option<usize>,
    workers: usize,
    spans: Option<&mut Vec<crate::metrics::TaskSpan>>,
) -> (Vec<FiredAction>, u64) {
    let rules = lowered.rules();
    let empty = ZoneLens::default();
    let cx = PassCx {
        blocked,
        interp,
        prev: &empty,
        curr: &empty,
    };
    let units: Vec<CompiledUnit> = (0..rules.len())
        .map(|rule| CompiledUnit::Full { rule })
        .collect();
    run_units(rules, units, &cx, threads, workers, spans)
}

/// Compiled delta enumeration: the groundings that became valid in the
/// last step — the compiled analogue of [`crate::seminaive::fire_new`].
pub fn fire_new_lowered(
    lowered: &crate::lower::LoweredProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
) -> Vec<FiredAction> {
    fire_new_lowered_metered(lowered, blocked, interp, prev, curr, None, 1, None).0
}

/// [`fire_new_lowered`] with the pool size decoupled from the decomposition
/// and optional per-task span collection (the fixpoint loop's entry point).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fire_new_lowered_metered(
    lowered: &crate::lower::LoweredProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    prev: &ZoneLens,
    curr: &ZoneLens,
    threads: Option<usize>,
    workers: usize,
    spans: Option<&mut Vec<crate::metrics::TaskSpan>>,
) -> (Vec<FiredAction>, u64) {
    let rules = lowered.rules();
    let cx = PassCx {
        blocked,
        interp,
        prev,
        curr,
    };
    let units = plan_units(rules, prev, curr);
    run_units(rules, units, &cx, threads, workers, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledProgram;
    use crate::gamma::fire_all;
    use crate::lower::lower;
    use crate::seminaive::fire_new;
    use park_storage::{FactStore, Vocabulary};
    use park_syntax::parse_program;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn setup(rules: &str, facts: &str) -> (CompiledProgram, FactStore) {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (program, db)
    }

    fn grounding_set(fired: &[FiredAction]) -> HashSet<Grounding> {
        fired.iter().map(|f| f.grounding.clone()).collect()
    }

    /// Drive naive, semi-naive and compiled evaluation in lockstep and
    /// assert the per-step *new* grounding sets agree — and that parallel
    /// compiled runs reproduce the sequential compiled stream byte for
    /// byte.
    fn lockstep(rules: &str, facts: &str, max_steps: usize) {
        let (program, db) = setup(rules, facts);
        let lowered = lower(&program, &db);
        let blocked = BlockedSet::new();
        let mut interp = IInterpretation::from_database(db);
        let mut seen: HashSet<Grounding> = HashSet::new();
        let mut prev = ZoneLens::capture(&interp);

        for step in 0..max_steps {
            let naive_fired = fire_all(&program, &blocked, &interp);
            let curr = ZoneLens::capture(&interp);
            let compiled_fired = if step == 0 {
                fire_all_lowered(&lowered, &blocked, &interp)
            } else {
                fire_new_lowered(&lowered, &blocked, &interp, &prev, &curr)
            };
            if step > 0 {
                let semi_fired = fire_new(&program, &blocked, &interp, &prev, &curr);
                assert_eq!(
                    grounding_set(&compiled_fired),
                    grounding_set(&semi_fired),
                    "compiled vs semi at step {step}"
                );
            }
            for threads in [2, 4] {
                let par = if step == 0 {
                    fire_all_lowered_metered(
                        &lowered,
                        &blocked,
                        &interp,
                        Some(threads),
                        threads,
                        None,
                    )
                    .0
                } else {
                    fire_new_lowered_metered(
                        &lowered,
                        &blocked,
                        &interp,
                        &prev,
                        &curr,
                        Some(threads),
                        threads,
                        None,
                    )
                    .0
                };
                assert_eq!(
                    par, compiled_fired,
                    "parallel compiled ({threads} threads) diverged at step {step}"
                );
            }

            let naive_new: HashSet<Grounding> = grounding_set(&naive_fired)
                .difference(&seen)
                .cloned()
                .collect();
            let compiled_set = grounding_set(&compiled_fired);
            if step > 0 {
                assert_eq!(
                    compiled_fired.len(),
                    compiled_set.len(),
                    "compiled produced duplicate groundings at step {step}"
                );
            }
            let compiled_new: HashSet<Grounding> =
                compiled_set.difference(&seen).cloned().collect();
            assert_eq!(naive_new, compiled_new, "step {step} disagreement");
            seen.extend(grounding_set(&naive_fired));

            let mut grew = false;
            for f in &naive_fired {
                if interp.insert_marked(f.sign, f.pred, &f.tuple) {
                    grew = true;
                }
            }
            prev = curr;
            if !grew {
                break;
            }
        }
    }

    #[test]
    fn lockstep_transitive_closure() {
        lockstep(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c). edge(c, d). edge(d, a).",
            32,
        );
    }

    #[test]
    fn lockstep_with_negation() {
        lockstep(
            "p(X) -> +q(X). q(X), !r(X) -> +s(X). s(X) -> +r2(X).",
            "p(a). p(b). r(a).",
            16,
        );
    }

    #[test]
    fn lockstep_negation_flips_via_minus() {
        lockstep(
            "p(X) -> -c(X). c(X), !c(X) -> +w(X). q(X), !c(X) -> +z(X).",
            "p(a). c(a). q(a).",
            16,
        );
    }

    #[test]
    fn lockstep_events() {
        lockstep(
            "p(X) -> +r(X). +r(X) -> -s(X). -s(X) -> +t(X).",
            "p(a). p(b). s(a). s(b).",
            16,
        );
    }

    #[test]
    fn lockstep_joins_and_constants() {
        lockstep(
            "e(X, Y), e(Y, Z) -> +p2(X, Z). p2(X, a) -> +hit(X). p2(X, Y), e(Y, W) -> +p3(X, W).",
            "e(a, b). e(b, a). e(b, c). e(c, a).",
            24,
        );
    }

    #[test]
    fn lockstep_with_guards() {
        lockstep(
            "edge(X, Y) -> +d(X, Y). d(X, Y), edge(Y, Z), X != Z -> +d(X, Z).
             val(N, Q), Q < 10 -> +small(N).",
            "edge(a, b). edge(b, c). edge(c, a). val(n, 3). val(m, 30).",
            24,
        );
    }

    #[test]
    fn lockstep_same_generation() {
        lockstep(
            "flat(X, Y) -> +sg(X, Y). up(X, X1), sg(X1, Y1), down(Y1, Y) -> +sg(X, Y).",
            "flat(m, n). up(a, m). down(n, b). up(x, a). down(b, y). up(q, x). down(y, w).",
            24,
        );
    }

    #[test]
    fn lockstep_repeated_variables_and_cartesian() {
        lockstep(
            "q(X, X) -> -q(X, X). p(X), p(Y) -> +pair(X, Y).",
            "q(a, a). q(a, b). p(a). p(b). p(c).",
            8,
        );
    }

    #[test]
    fn empty_body_rules_fire_once_and_do_not_refire() {
        let (program, db) = setup("-> +q(b).", "");
        let lowered = lower(&program, &db);
        let interp = IInterpretation::from_database(db);
        let full = fire_all_lowered(&lowered, &BlockedSet::new(), &interp);
        assert_eq!(full.len(), 1);
        let z = ZoneLens::capture(&interp);
        let fired = fire_new_lowered(&lowered, &BlockedSet::new(), &interp, &z, &z);
        assert!(fired.is_empty());
    }

    #[test]
    fn blocked_groundings_are_skipped() {
        let (program, db) = setup("p(X) -> +q(X).", "p(a). p(b).");
        let lowered = lower(&program, &db);
        let v = Arc::clone(program.vocab());
        let interp = IInterpretation::from_database(db);
        let a = v.encode(park_storage::Value::Sym(v.sym("a")));
        let mut blocked = BlockedSet::new();
        blocked.insert(Grounding {
            rule: RuleId(0),
            subst: Box::from([a]),
        });
        let fired = fire_all_lowered(&lowered, &blocked, &interp);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn task_count_is_thread_independent() {
        let (program, db) = setup(
            "edge(X, Y) -> +tc(X, Y). tc(X, Y), edge(Y, Z) -> +tc(X, Z).",
            "edge(a, b). edge(b, c).",
        );
        let lowered = lower(&program, &db);
        let mut interp = IInterpretation::from_database(db);
        let before = ZoneLens::capture(&interp);
        for f in fire_all(&program, &BlockedSet::new(), &interp) {
            interp.insert_marked(f.sign, f.pred, &f.tuple);
        }
        let after = ZoneLens::capture(&interp);
        let (seq, seq_tasks) = fire_new_lowered_metered(
            &lowered,
            &BlockedSet::new(),
            &interp,
            &before,
            &after,
            Some(1),
            1,
            None,
        );
        for threads in [2, 4] {
            let (par, par_tasks) = fire_new_lowered_metered(
                &lowered,
                &BlockedSet::new(),
                &interp,
                &before,
                &after,
                Some(threads),
                threads,
                None,
            );
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_tasks, seq_tasks, "threads={threads}");
        }
    }

    #[test]
    fn chunked_propagation_preserves_depth_first_order() {
        // A fanout large enough to overflow one chunk at the first join
        // level: the emission order must still equal a fresh re-run (the
        // executor is deterministic) and contain no duplicates.
        let vocab = Vocabulary::new();
        let program = CompiledProgram::compile(
            Arc::clone(&vocab),
            &parse_program("p(X), q(Y) -> +r(X, Y).").unwrap(),
        )
        .unwrap();
        let mut db = FactStore::new(Arc::clone(&vocab));
        let p = vocab.lookup_pred("p").unwrap();
        let q = vocab.lookup_pred("q").unwrap();
        for i in 0..60 {
            db.insert_row(p, &[vocab.encode(park_storage::Value::Int(i))]);
            db.insert_row(q, &[vocab.encode(park_storage::Value::Int(1000 + i))]);
        }
        let lowered = lower(&program, &db);
        let interp = IInterpretation::from_database(db);
        let fired = fire_all_lowered(&lowered, &BlockedSet::new(), &interp);
        assert_eq!(fired.len(), 3600);
        assert_eq!(grounding_set(&fired).len(), 3600);
        // Deterministic: identical on re-run and under parallelism.
        let again = fire_all_lowered(&lowered, &BlockedSet::new(), &interp);
        assert_eq!(fired, again);
        let par =
            fire_all_lowered_metered(&lowered, &BlockedSet::new(), &interp, Some(4), 4, None).0;
        assert_eq!(fired, par);
    }
}
