//! The immediate consequence operator `Γ_{P,B}` (Section 4.2).
//!
//! For an i-interpretation `I`, `Γ_{P,B}(I)` is the smallest set containing
//! `I` and, for every rule `r ∈ P` and ground substitution `θ` with
//! `(r, θ) ∉ B` and every body literal of `rθ` valid in `I`, the marked head
//! `±l₀θ`.
//!
//! [`fire_all`] computes the *new* part: every non-blocked valid grounding
//! together with the update its head demands. The engine unions the results
//! into `I` (the inflationary step) after checking consistency.
//!
//! Evaluation follows each rule's compiled plan: binding literals probe the
//! appropriate interpretation zones through hash indexes, negated literals
//! run as residual filters. Everything happens in interned [`Code`] space —
//! probes, joins, guards, groundings and fired heads; values are only
//! decoded at the SELECT/trace boundary. Results are deterministic: rules
//! in id order, rows in relation insertion order.
//!
//! ## Parallel evaluation: shard ownership
//!
//! [`fire_all_par`] decomposes the step into *shard tasks*: rules are
//! grouped by the predicate their first plan step enumerates, so each
//! stored relation (shard) is driven end-to-end by exactly one task —
//! rules that scan the same shard share its cache lines and indexes, and
//! no shard is enumerated by two tasks at once. Each task evaluates its
//! rules in id order into per-rule buffers; the buffers are then merged by
//! rule id, which makes the fired stream byte-identical to the sequential
//! one. The decomposition depends only on the program — never on the
//! thread count — so the `eval_tasks` statistic is identical across
//! sequential and parallel runs.

use crate::compile::{CompiledLiteral, CompiledProgram, CompiledRule, LitKind, TermSlot};
use crate::grounding::{BlockedSet, Grounding};
use crate::interp::IInterpretation;
use crate::validity;
use park_storage::{Code, ColumnMask, FxHashMap, PredId};
use park_syntax::Sign;

/// One firing of a rule grounding: the update its head demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredAction {
    /// The rule instance that fired.
    pub grounding: Grounding,
    /// The head polarity.
    pub sign: Sign,
    /// The head predicate.
    pub pred: PredId,
    /// The head row, encoded.
    pub tuple: Box<[Code]>,
}

/// Reusable per-task evaluation buffers: the variable bindings and one probe
/// key per plan step. Reusing them across groundings (and across rules within
/// a task) keeps the innermost join loop free of heap allocation.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    pub(crate) bindings: Vec<Option<Code>>,
    keys: Vec<Vec<Code>>,
}

impl Scratch {
    /// Fresh, empty scratch.
    pub(crate) fn new() -> Self {
        Scratch::default()
    }

    /// Size the buffers for `rule` and clear stale bindings.
    pub(crate) fn prepare(&mut self, rule: &CompiledRule) {
        self.bindings.clear();
        self.bindings.resize(rule.num_vars as usize, None);
        if self.keys.len() < rule.plan.len() {
            self.keys.resize_with(rule.plan.len(), Vec::new);
        }
    }

    /// Borrow step `step`'s key buffer out of the scratch, refilled for the
    /// current bindings. Must be returned with [`Scratch::put_key`] (the
    /// take/put split lets the probe iterator borrow the key while the
    /// recursion below it borrows the scratch mutably).
    pub(crate) fn take_key(
        &mut self,
        step: usize,
        terms: &[TermSlot],
        mask: ColumnMask,
    ) -> Vec<Code> {
        let mut key = std::mem::take(&mut self.keys[step]);
        key.clear();
        let bindings = &self.bindings;
        key.extend(mask.cols().map(|c| match terms[c] {
            TermSlot::Const(v) => v,
            TermSlot::Var(s) => bindings[s as usize].expect("mask columns are bound"),
        }));
        key
    }

    /// Return a key buffer taken with [`Scratch::take_key`], keeping its
    /// capacity for the next grounding.
    pub(crate) fn put_key(&mut self, step: usize, key: Vec<Code>) {
        self.keys[step] = key;
    }
}

/// One unit of parallel Γ evaluation: a group of rules that all enumerate
/// the same step-0 shard, in rule-id order.
#[derive(Debug, Clone)]
pub(crate) struct ShardTask {
    /// Rule indices, ascending.
    pub(crate) units: Vec<usize>,
}

/// The predicate whose shard `rule`'s first plan step enumerates, if any.
/// Negated step-0 literals (possible only when the rule has no variables to
/// bind) and empty plans enumerate nothing.
fn step0_pred(rule: &CompiledRule) -> Option<PredId> {
    let planned = rule.plan.first()?;
    match &rule.body[planned.lit] {
        CompiledLiteral::Atom { kind, atom } if *kind != LitKind::Neg => Some(atom.pred),
        _ => None,
    }
}

/// Group rules into shard tasks: rules sharing a step-0 predicate form one
/// task (in first-appearance order); rules that enumerate no shard get
/// singleton tasks. Depends only on the program, so the decomposition — and
/// the `eval_tasks` count — is identical for every thread configuration.
pub(crate) fn plan_shards(program: &CompiledProgram) -> Vec<ShardTask> {
    let mut tasks: Vec<ShardTask> = Vec::new();
    let mut by_pred: FxHashMap<PredId, usize> = FxHashMap::default();
    for (i, rule) in program.rules().iter().enumerate() {
        match step0_pred(rule) {
            Some(p) => match by_pred.get(&p) {
                Some(&t) => tasks[t].units.push(i),
                None => {
                    by_pred.insert(p, tasks.len());
                    tasks.push(ShardTask { units: vec![i] });
                }
            },
            None => tasks.push(ShardTask { units: vec![i] }),
        }
    }
    tasks
}

/// Flatten per-unit buffers (tagged with their unit index) back into the
/// sequential emission order. Each unit appears at most once.
pub(crate) fn merge_units(
    n_units: usize,
    tagged: Vec<(usize, Vec<FiredAction>)>,
) -> Vec<FiredAction> {
    let mut slots: Vec<Vec<FiredAction>> = Vec::new();
    slots.resize_with(n_units, Vec::new);
    for (unit, buf) in tagged {
        slots[unit] = buf;
    }
    slots.into_iter().flatten().collect()
}

/// Compute every non-blocked rule grounding whose body is valid in `interp`,
/// with the update each one derives.
pub fn fire_all(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
) -> Vec<FiredAction> {
    fire_all_par(program, blocked, interp, None).0
}

/// [`fire_all`] with optional intra-step parallelism. With `threads` `None`
/// or `Some(1)` this is the sequential enumeration on the calling thread (no
/// pool is spun up); otherwise the shard tasks run on a scoped pool via
/// `crate::parallel::run_ordered`, whose per-rule buffer merge makes the
/// output byte-identical to the sequential stream. Returns the actions and
/// the number of shard tasks in the decomposition (the same number either
/// way).
pub fn fire_all_par(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    threads: Option<usize>,
) -> (Vec<FiredAction>, u64) {
    let requested = threads.unwrap_or(1).max(1);
    fire_all_metered(program, blocked, interp, threads, requested, None)
}

/// [`fire_all_par`] with the pool size decoupled from the decomposition and
/// optional per-task span collection (the fixpoint loop's metered entry
/// point). The shard decomposition is fixed by the program; `workers` only
/// caps how many threads run the tasks (the host-parallelism clamp), and
/// cannot change any output.
pub(crate) fn fire_all_metered(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    threads: Option<usize>,
    workers: usize,
    spans: Option<&mut Vec<crate::metrics::TaskSpan>>,
) -> (Vec<FiredAction>, u64) {
    let threads = threads.unwrap_or(1).max(1);
    let tasks = plan_shards(program);
    let n_tasks = tasks.len() as u64;
    if threads == 1 && spans.is_none() {
        // Fast sequential path: same stream, no per-unit buffers.
        let mut out = Vec::new();
        let mut scratch = Scratch::new();
        for rule in program.rules() {
            fire_rule_in(rule, blocked, interp, &mut scratch, &mut out);
        }
        return (out, n_tasks);
    }
    let workers = if threads == 1 { 1 } else { workers };
    let tagged = crate::parallel::run_ordered(
        &tasks,
        workers,
        |task: &ShardTask, scratch, buf: &mut Vec<(usize, Vec<FiredAction>)>| {
            for &unit in &task.units {
                let mut ubuf = Vec::new();
                fire_rule_in(&program.rules()[unit], blocked, interp, scratch, &mut ubuf);
                buf.push((unit, ubuf));
            }
        },
        spans,
    );
    (merge_units(program.rules().len(), tagged), n_tasks)
}

/// Compute the firings of a single rule.
pub fn fire_rule(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    out: &mut Vec<FiredAction>,
) {
    fire_rule_in(rule, blocked, interp, &mut Scratch::new(), out);
}

/// [`fire_rule`] against caller-provided scratch.
pub(crate) fn fire_rule_in(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    scratch: &mut Scratch,
    out: &mut Vec<FiredAction>,
) {
    scratch.prepare(rule);
    match_step(rule, blocked, interp, 0, scratch, out);
}

fn match_step(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    step: usize,
    scratch: &mut Scratch,
    out: &mut Vec<FiredAction>,
) {
    if step == rule.plan.len() {
        // All body literals satisfied; by safety every variable is bound.
        let subst: Box<[Code]> = scratch
            .bindings
            .iter()
            .map(|b| b.expect("safety guarantees total bindings"))
            .collect();
        let grounding = Grounding {
            rule: rule.id,
            subst,
        };
        if !blocked.contains(&grounding) {
            let tuple = rule.head.instantiate(&grounding.subst);
            out.push(FiredAction {
                sign: rule.head_sign,
                pred: rule.head.pred,
                tuple,
                grounding,
            });
        }
        return;
    }
    let planned = rule.plan[step];
    let lit = &rule.body[planned.lit];
    let CompiledLiteral::Atom { kind, atom } = lit else {
        // A comparison guard: all variables bound, pure filter.
        if lit.eval_guard(interp.vocab(), &scratch.bindings) {
            match_step(rule, blocked, interp, step + 1, scratch, out);
        }
        return;
    };
    match *kind {
        LitKind::Neg => {
            // All variables bound: a pure validity test.
            let row = instantiate_bound(&atom.terms, &scratch.bindings);
            if validity::valid_neg(interp, atom.pred, &row) {
                match_step(rule, blocked, interp, step + 1, scratch, out);
            }
        }
        LitKind::Pos => {
            let key = scratch.take_key(step, &atom.terms, planned.mask);
            // a is valid iff a ∈ I° or +a ∈ I⁺; enumerate both zones but
            // skip I⁺ rows also present in I° to keep groundings unique.
            if let Some(rel) = interp.base().relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    try_extend(rule, blocked, interp, step, scratch, out, &atom.terms, t);
                }
            }
            if let Some(rel) = interp.plus().relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    if interp.base().contains_row(atom.pred, t) {
                        continue;
                    }
                    try_extend(rule, blocked, interp, step, scratch, out, &atom.terms, t);
                }
            }
            scratch.put_key(step, key);
        }
        LitKind::Event(sign) => {
            let key = scratch.take_key(step, &atom.terms, planned.mask);
            let zone = match sign {
                Sign::Insert => interp.plus(),
                Sign::Delete => interp.minus(),
            };
            if let Some(rel) = zone.relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    try_extend(rule, blocked, interp, step, scratch, out, &atom.terms, t);
                }
            }
            scratch.put_key(step, key);
        }
    }
}

/// Attempt to match `row` against the literal pattern under the current
/// bindings; on success, recurse into the next plan step and then undo the
/// new bindings.
#[allow(clippy::too_many_arguments)]
fn try_extend(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    step: usize,
    scratch: &mut Scratch,
    out: &mut Vec<FiredAction>,
    terms: &[TermSlot],
    row: &[Code],
) {
    let mut newly_bound: smallvec_inline::InlineVec = smallvec_inline::InlineVec::new();
    let mut ok = true;
    for (pos, slot) in terms.iter().enumerate() {
        let v = row[pos];
        match *slot {
            TermSlot::Const(c) => {
                if c != v {
                    ok = false;
                    break;
                }
            }
            TermSlot::Var(s) => match scratch.bindings[s as usize] {
                Some(b) => {
                    if b != v {
                        ok = false;
                        break;
                    }
                }
                None => {
                    scratch.bindings[s as usize] = Some(v);
                    newly_bound.push(s);
                }
            },
        }
    }
    if ok {
        match_step(rule, blocked, interp, step + 1, scratch, out);
    }
    for s in newly_bound.iter() {
        scratch.bindings[*s as usize] = None;
    }
}

/// Instantiate a fully-bound pattern.
fn instantiate_bound(terms: &[TermSlot], bindings: &[Option<Code>]) -> Box<[Code]> {
    terms
        .iter()
        .map(|t| match *t {
            TermSlot::Const(v) => v,
            TermSlot::Var(s) => bindings[s as usize].expect("negation scheduled after binding"),
        })
        .collect()
}

/// A tiny fixed-capacity vector for per-literal newly-bound slots, avoiding
/// a heap allocation in the innermost join loop.
mod smallvec_inline {
    const CAP: usize = 8;

    pub struct InlineVec {
        buf: [u16; CAP],
        len: usize,
        spill: Vec<u16>,
    }

    impl InlineVec {
        pub fn new() -> Self {
            InlineVec {
                buf: [0; CAP],
                len: 0,
                spill: Vec::new(),
            }
        }

        pub fn push(&mut self, v: u16) {
            if self.len < CAP {
                self.buf[self.len] = v;
                self.len += 1;
            } else {
                self.spill.push(v);
            }
        }

        pub fn iter(&self) -> impl Iterator<Item = &u16> {
            self.buf[..self.len].iter().chain(self.spill.iter())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::{FactStore, Tuple, UpdateSet, Value, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn setup(rules: &str, facts: &str) -> (CompiledProgram, IInterpretation) {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (program, IInterpretation::from_database(db))
    }

    fn row1(v: &Vocabulary, s: &str) -> [Code; 1] {
        [v.encode(Value::Sym(v.sym(s)))]
    }

    fn fired_display(program: &CompiledProgram, fired: &[FiredAction]) -> Vec<String> {
        let v = program.vocab();
        let mut out: Vec<String> = fired
            .iter()
            .map(|f| format!("{}{}", f.sign, v.display_row(f.pred, &f.tuple)))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn fires_simple_rule_per_matching_fact() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a). p(b). r(c).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(a)", "+q(b)"]);
    }

    #[test]
    fn join_across_two_literals() {
        let (p, i) = setup(
            "e(X, Y), e(Y, Z) -> +tc(X, Z).",
            "e(a, b). e(b, c). e(c, d).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+tc(a, c)", "+tc(b, d)"]);
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let (p, i) = setup("p(X), p(Y) -> +q(X, Y).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired.len(), 4);
    }

    #[test]
    fn negation_filters() {
        let (p, i) = setup(
            "emp(X), !active(X) -> -payroll(X).",
            "emp(a). emp(b). active(a).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(b)"]);
    }

    #[test]
    fn negation_sees_plus_marks() {
        let (p, mut i) = setup("emp(X), !active(X) -> -payroll(X).", "emp(a). emp(b).");
        let v = Arc::clone(p.vocab());
        let active = v.pred("active", 1).unwrap();
        i.insert_marked(Sign::Insert, active, &row1(&v, "a"));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(b)"]);
    }

    #[test]
    fn negation_satisfied_by_pending_delete() {
        let (p, mut i) = setup("emp(X), !active(X) -> -payroll(X).", "emp(a). active(a).");
        let v = Arc::clone(p.vocab());
        let active = v.lookup_pred("active").unwrap();
        // -active(a) makes !active(a) valid even though active(a) ∈ I°.
        i.insert_marked(Sign::Delete, active, &row1(&v, "a"));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(a)"]);
    }

    #[test]
    fn positive_literal_sees_plus_zone_without_duplicates() {
        let (p, mut i) = setup("p(X) -> +q(X).", "p(a).");
        let v = Arc::clone(p.vocab());
        let pp = v.lookup_pred("p").unwrap();
        // +p(a) duplicates the base fact; +p(b) is new.
        i.insert_marked(Sign::Insert, pp, &row1(&v, "a"));
        i.insert_marked(Sign::Insert, pp, &row1(&v, "b"));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(a)", "+q(b)"]);
        assert_eq!(fired.len(), 2, "no duplicate groundings");
    }

    #[test]
    fn event_literals_match_only_marks() {
        let (p, mut i) = setup("+r(X) -> -s(X).", "r(a). s(a). s(b).");
        // r(a) unmarked is not the event +r(a).
        assert!(fire_all(&p, &BlockedSet::new(), &i).is_empty());
        let v = Arc::clone(p.vocab());
        let r = v.lookup_pred("r").unwrap();
        i.insert_marked(Sign::Insert, r, &row1(&v, "b"));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-s(b)"]);
    }

    #[test]
    fn delete_event_literal() {
        let (p, mut i) = setup("-s(X) -> +log(X).", "s(a).");
        let v = Arc::clone(p.vocab());
        let s = v.lookup_pred("s").unwrap();
        i.insert_marked(Sign::Delete, s, &row1(&v, "a"));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+log(a)"]);
    }

    #[test]
    fn blocked_groundings_do_not_fire() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a). p(b).");
        let v = p.vocab();
        let mut blocked = BlockedSet::new();
        blocked.insert(Grounding {
            rule: crate::compile::RuleId(0),
            subst: Box::from(row1(v, "a")),
        });
        let fired = fire_all(&p, &blocked, &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(b)"]);
    }

    #[test]
    fn repeated_variable_requires_equal_columns() {
        let (p, i) = setup("q(X, X) -> -q(X, X).", "q(a, a). q(a, b). q(b, b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-q(a, a)", "-q(b, b)"]);
    }

    #[test]
    fn constants_in_body_restrict_matches() {
        let (p, i) = setup("q(X, a) -> -p(X, a).", "q(x, a). q(y, b). p(x, a).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-p(x, a)"]);
    }

    #[test]
    fn bodyless_update_rules_always_fire() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a).");
        let v = Arc::clone(p.vocab());
        let mut u = UpdateSet::empty();
        let q = v.lookup_pred("q").unwrap();
        u.insert(q, Tuple::new(vec![Value::Sym(v.sym("b"))]));
        let pu = p.with_updates(&u);
        let fired = fire_all(&pu, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&pu, &fired), vec!["+q(a)", "+q(b)"]);
    }

    #[test]
    fn propositional_rules() {
        let (p, i) = setup("p -> +q. q -> +a.", "p.");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q"]);
    }

    #[test]
    fn paper_irreflexive_graph_first_step() {
        let (p, i) = setup(
            "r1: p(X), p(Y) -> +q(X, Y).
             r2: q(X, X) -> -q(X, X).
             r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
            "p(a). p(b). p(c).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        // First application of Γ: only r1 fires, 9 groundings.
        assert_eq!(fired.len(), 9);
        assert!(fired.iter().all(|f| f.sign == Sign::Insert));
    }

    #[test]
    fn integer_guards_filter() {
        let (p, i) = setup(
            "stock(I, Q), Q < 10 -> +low(I).",
            "stock(a, 5). stock(b, 10). stock(c, 9). stock(d, 100).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+low(a)", "+low(c)"]);
    }

    #[test]
    fn inequality_guard_on_symbols() {
        let (p, i) = setup("p(X), p(Y), X != Y -> +pair(X, Y).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(
            fired_display(&p, &fired),
            vec!["+pair(a, b)", "+pair(b, a)"]
        );
    }

    #[test]
    fn equality_guard_with_constant() {
        let (p, i) = setup("p(X), X = a -> -p(X).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-p(a)"]);
    }

    #[test]
    fn ordered_comparison_on_symbols_is_false() {
        // `<` is integer-only; symbol operands fail the guard.
        let (p, i) = setup("p(X), X < 10 -> +q(X).", "p(a). p(3).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(3)"]);
    }

    #[test]
    fn guard_order_in_source_is_irrelevant() {
        let (p1, i1) = setup(
            "Q >= 10, stock(I, Q) -> +high(I).",
            "stock(a, 15). stock(b, 5).",
        );
        let fired = fire_all(&p1, &BlockedSet::new(), &i1);
        assert_eq!(fired_display(&p1, &fired), vec!["+high(a)"]);
    }

    #[test]
    fn guards_combine_with_negation_and_events() {
        let (p, mut i) = setup(
            "+restock(I, Q), Q > 0, !discontinued(I) -> +order(I, Q).",
            "discontinued(b).",
        );
        let v = Arc::clone(p.vocab());
        let restock = v.lookup_pred("restock").unwrap();
        let mk = |s: &str, q: i64| [v.encode(Value::Sym(v.sym(s))), v.encode(Value::Int(q))];
        i.insert_marked(Sign::Insert, restock, &mk("a", 5));
        i.insert_marked(Sign::Insert, restock, &mk("b", 5)); // discontinued
        i.insert_marked(Sign::Insert, restock, &mk("c", 0)); // zero quantity
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+order(a, 5)"]);
    }

    #[test]
    fn determinism_of_fire_order() {
        let (p, i) = setup("p(X), p(Y) -> +q(X, Y).", "p(a). p(b). p(c).");
        let a = fire_all(&p, &BlockedSet::new(), &i);
        let b = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(a, b);
    }

    #[test]
    fn shard_tasks_group_rules_by_step0_predicate() {
        let (p, _) = setup(
            "r1: p(X) -> +q(X).
             r2: s(X) -> +t(X).
             r3: p(X) -> -t(X).
             r4: -> +u.",
            "p(a).",
        );
        let tasks = plan_shards(&p);
        // p-shard owns r1 and r3; s-shard owns r2; the bodyless r4 is its
        // own task.
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].units, vec![0, 2]);
        assert_eq!(tasks[1].units, vec![1]);
        assert_eq!(tasks[2].units, vec![3]);
    }

    #[test]
    fn parallel_stream_is_byte_identical_to_sequential() {
        let (p, i) = setup(
            "r1: e(X, Y), e(Y, Z) -> +tc(X, Z).
             r2: e(X, Y) -> +tc(X, Y).
             r3: p(X), p(Y) -> +q(X, Y).",
            "e(a, b). e(b, c). e(c, d). e(d, a). p(a). p(b). p(c).",
        );
        let (seq, seq_tasks) = fire_all_par(&p, &BlockedSet::new(), &i, Some(1));
        for threads in [2, 3, 8] {
            let (par, par_tasks) = fire_all_par(&p, &BlockedSet::new(), &i, Some(threads));
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(
                par_tasks, seq_tasks,
                "task count must be thread-independent"
            );
        }
        // e-shard (r1, r2) and p-shard (r3).
        assert_eq!(seq_tasks, 2);
    }
}
