//! The immediate consequence operator `Γ_{P,B}` (Section 4.2).
//!
//! For an i-interpretation `I`, `Γ_{P,B}(I)` is the smallest set containing
//! `I` and, for every rule `r ∈ P` and ground substitution `θ` with
//! `(r, θ) ∉ B` and every body literal of `rθ` valid in `I`, the marked head
//! `±l₀θ`.
//!
//! [`fire_all`] computes the *new* part: every non-blocked valid grounding
//! together with the update its head demands. The engine unions the results
//! into `I` (the inflationary step) after checking consistency.
//!
//! Evaluation follows each rule's compiled plan: binding literals probe the
//! appropriate interpretation zones through hash indexes, negated literals
//! run as residual filters. Results are deterministic: rules in id order,
//! tuples in relation insertion order.

use crate::compile::{CompiledLiteral, CompiledProgram, CompiledRule, LitKind, TermSlot};
use crate::grounding::{BlockedSet, Grounding};
use crate::interp::IInterpretation;
use crate::validity;
use park_storage::{PredId, Tuple, Value};
use park_syntax::Sign;

/// One firing of a rule grounding: the update its head demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredAction {
    /// The rule instance that fired.
    pub grounding: Grounding,
    /// The head polarity.
    pub sign: Sign,
    /// The head predicate.
    pub pred: PredId,
    /// The head tuple.
    pub tuple: Tuple,
}

/// Compute every non-blocked rule grounding whose body is valid in `interp`,
/// with the update each one derives.
pub fn fire_all(
    program: &CompiledProgram,
    blocked: &BlockedSet,
    interp: &IInterpretation,
) -> Vec<FiredAction> {
    let mut out = Vec::new();
    for rule in program.rules() {
        fire_rule(rule, blocked, interp, &mut out);
    }
    out
}

/// Compute the firings of a single rule.
pub fn fire_rule(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    out: &mut Vec<FiredAction>,
) {
    let mut bindings: Vec<Option<Value>> = vec![None; rule.num_vars as usize];
    match_step(rule, blocked, interp, 0, &mut bindings, out);
}

fn match_step(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    step: usize,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<FiredAction>,
) {
    if step == rule.plan.len() {
        // All body literals satisfied; by safety every variable is bound.
        let subst: Box<[Value]> = bindings
            .iter()
            .map(|b| b.expect("safety guarantees total bindings"))
            .collect();
        let grounding = Grounding {
            rule: rule.id,
            subst,
        };
        if !blocked.contains(&grounding) {
            let tuple = rule.head.instantiate(&grounding.subst);
            out.push(FiredAction {
                sign: rule.head_sign,
                pred: rule.head.pred,
                tuple,
                grounding,
            });
        }
        return;
    }
    let planned = rule.plan[step];
    let lit = &rule.body[planned.lit];
    let CompiledLiteral::Atom { kind, atom } = lit else {
        // A comparison guard: all variables bound, pure filter.
        if lit.eval_guard(bindings) {
            match_step(rule, blocked, interp, step + 1, bindings, out);
        }
        return;
    };
    match *kind {
        LitKind::Neg => {
            // All variables bound: a pure validity test.
            let tuple = instantiate_bound(&atom.terms, bindings);
            if validity::valid_neg(interp, atom.pred, &tuple) {
                match_step(rule, blocked, interp, step + 1, bindings, out);
            }
        }
        LitKind::Pos => {
            let key = probe_key(&atom.terms, planned.mask, bindings);
            // a is valid iff a ∈ I° or +a ∈ I⁺; enumerate both zones but
            // skip I⁺ tuples also present in I° to keep groundings unique.
            if let Some(rel) = interp.base().relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    try_extend(rule, blocked, interp, step, bindings, out, &atom.terms, t);
                }
            }
            if let Some(rel) = interp.plus().relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    if interp.base().contains(atom.pred, t) {
                        continue;
                    }
                    try_extend(rule, blocked, interp, step, bindings, out, &atom.terms, t);
                }
            }
        }
        LitKind::Event(sign) => {
            let key = probe_key(&atom.terms, planned.mask, bindings);
            let zone = match sign {
                Sign::Insert => interp.plus(),
                Sign::Delete => interp.minus(),
            };
            if let Some(rel) = zone.relation(atom.pred) {
                for t in rel.probe(planned.mask, &key) {
                    try_extend(rule, blocked, interp, step, bindings, out, &atom.terms, t);
                }
            }
        }
    }
}

/// Attempt to match `tuple` against the literal pattern under the current
/// bindings; on success, recurse into the next plan step and then undo the
/// new bindings.
#[allow(clippy::too_many_arguments)]
fn try_extend(
    rule: &CompiledRule,
    blocked: &BlockedSet,
    interp: &IInterpretation,
    step: usize,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<FiredAction>,
    terms: &[TermSlot],
    tuple: &Tuple,
) {
    let mut newly_bound: smallvec_inline::InlineVec = smallvec_inline::InlineVec::new();
    let mut ok = true;
    for (pos, slot) in terms.iter().enumerate() {
        let v = tuple[pos];
        match *slot {
            TermSlot::Const(c) => {
                if c != v {
                    ok = false;
                    break;
                }
            }
            TermSlot::Var(s) => match bindings[s as usize] {
                Some(b) => {
                    if b != v {
                        ok = false;
                        break;
                    }
                }
                None => {
                    bindings[s as usize] = Some(v);
                    newly_bound.push(s);
                }
            },
        }
    }
    if ok {
        match_step(rule, blocked, interp, step + 1, bindings, out);
    }
    for s in newly_bound.iter() {
        bindings[*s as usize] = None;
    }
}

/// Instantiate a fully-bound pattern.
fn instantiate_bound(terms: &[TermSlot], bindings: &[Option<Value>]) -> Tuple {
    terms
        .iter()
        .map(|t| match *t {
            TermSlot::Const(v) => v,
            TermSlot::Var(s) => bindings[s as usize].expect("negation scheduled after binding"),
        })
        .collect()
}

/// Build the probe key for the bound columns of `mask`.
fn probe_key(
    terms: &[TermSlot],
    mask: park_storage::ColumnMask,
    bindings: &[Option<Value>],
) -> Vec<Value> {
    mask.cols()
        .map(|c| match terms[c] {
            TermSlot::Const(v) => v,
            TermSlot::Var(s) => bindings[s as usize].expect("mask columns are bound"),
        })
        .collect()
}

/// A tiny fixed-capacity vector for per-literal newly-bound slots, avoiding
/// a heap allocation in the innermost join loop.
mod smallvec_inline {
    const CAP: usize = 8;

    pub struct InlineVec {
        buf: [u16; CAP],
        len: usize,
        spill: Vec<u16>,
    }

    impl InlineVec {
        pub fn new() -> Self {
            InlineVec {
                buf: [0; CAP],
                len: 0,
                spill: Vec::new(),
            }
        }

        pub fn push(&mut self, v: u16) {
            if self.len < CAP {
                self.buf[self.len] = v;
                self.len += 1;
            } else {
                self.spill.push(v);
            }
        }

        pub fn iter(&self) -> impl Iterator<Item = &u16> {
            self.buf[..self.len].iter().chain(self.spill.iter())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::{FactStore, UpdateSet, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn setup(rules: &str, facts: &str) -> (CompiledProgram, IInterpretation) {
        let vocab = Vocabulary::new();
        let program =
            CompiledProgram::compile(Arc::clone(&vocab), &parse_program(rules).unwrap()).unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        (program, IInterpretation::from_database(db))
    }

    fn fired_display(program: &CompiledProgram, fired: &[FiredAction]) -> Vec<String> {
        let v = program.vocab();
        let mut out: Vec<String> = fired
            .iter()
            .map(|f| format!("{}{}", f.sign, v.display_fact(f.pred, &f.tuple)))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn fires_simple_rule_per_matching_fact() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a). p(b). r(c).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(a)", "+q(b)"]);
    }

    #[test]
    fn join_across_two_literals() {
        let (p, i) = setup(
            "e(X, Y), e(Y, Z) -> +tc(X, Z).",
            "e(a, b). e(b, c). e(c, d).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+tc(a, c)", "+tc(b, d)"]);
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let (p, i) = setup("p(X), p(Y) -> +q(X, Y).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired.len(), 4);
    }

    #[test]
    fn negation_filters() {
        let (p, i) = setup(
            "emp(X), !active(X) -> -payroll(X).",
            "emp(a). emp(b). active(a).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(b)"]);
    }

    #[test]
    fn negation_sees_plus_marks() {
        let (p, mut i) = setup("emp(X), !active(X) -> -payroll(X).", "emp(a). emp(b).");
        let v = Arc::clone(p.vocab());
        let active = v.pred("active", 1).unwrap();
        i.insert_marked(
            Sign::Insert,
            active,
            Tuple::new(vec![Value::Sym(v.sym("a"))]),
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(b)"]);
    }

    #[test]
    fn negation_satisfied_by_pending_delete() {
        let (p, mut i) = setup("emp(X), !active(X) -> -payroll(X).", "emp(a). active(a).");
        let v = Arc::clone(p.vocab());
        let active = v.lookup_pred("active").unwrap();
        // -active(a) makes !active(a) valid even though active(a) ∈ I°.
        i.insert_marked(
            Sign::Delete,
            active,
            Tuple::new(vec![Value::Sym(v.sym("a"))]),
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-payroll(a)"]);
    }

    #[test]
    fn positive_literal_sees_plus_zone_without_duplicates() {
        let (p, mut i) = setup("p(X) -> +q(X).", "p(a).");
        let v = Arc::clone(p.vocab());
        let pp = v.lookup_pred("p").unwrap();
        // +p(a) duplicates the base fact; +p(b) is new.
        i.insert_marked(Sign::Insert, pp, Tuple::new(vec![Value::Sym(v.sym("a"))]));
        i.insert_marked(Sign::Insert, pp, Tuple::new(vec![Value::Sym(v.sym("b"))]));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(a)", "+q(b)"]);
        assert_eq!(fired.len(), 2, "no duplicate groundings");
    }

    #[test]
    fn event_literals_match_only_marks() {
        let (p, mut i) = setup("+r(X) -> -s(X).", "r(a). s(a). s(b).");
        // r(a) unmarked is not the event +r(a).
        assert!(fire_all(&p, &BlockedSet::new(), &i).is_empty());
        let v = Arc::clone(p.vocab());
        let r = v.lookup_pred("r").unwrap();
        i.insert_marked(Sign::Insert, r, Tuple::new(vec![Value::Sym(v.sym("b"))]));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-s(b)"]);
    }

    #[test]
    fn delete_event_literal() {
        let (p, mut i) = setup("-s(X) -> +log(X).", "s(a).");
        let v = Arc::clone(p.vocab());
        let s = v.lookup_pred("s").unwrap();
        i.insert_marked(Sign::Delete, s, Tuple::new(vec![Value::Sym(v.sym("a"))]));
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+log(a)"]);
    }

    #[test]
    fn blocked_groundings_do_not_fire() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a). p(b).");
        let v = p.vocab();
        let mut blocked = BlockedSet::new();
        blocked.insert(Grounding {
            rule: crate::compile::RuleId(0),
            subst: Box::from([Value::Sym(v.sym("a"))]),
        });
        let fired = fire_all(&p, &blocked, &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(b)"]);
    }

    #[test]
    fn repeated_variable_requires_equal_columns() {
        let (p, i) = setup("q(X, X) -> -q(X, X).", "q(a, a). q(a, b). q(b, b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-q(a, a)", "-q(b, b)"]);
    }

    #[test]
    fn constants_in_body_restrict_matches() {
        let (p, i) = setup("q(X, a) -> -p(X, a).", "q(x, a). q(y, b). p(x, a).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-p(x, a)"]);
    }

    #[test]
    fn bodyless_update_rules_always_fire() {
        let (p, i) = setup("p(X) -> +q(X).", "p(a).");
        let v = Arc::clone(p.vocab());
        let mut u = UpdateSet::empty();
        let q = v.lookup_pred("q").unwrap();
        u.insert(q, Tuple::new(vec![Value::Sym(v.sym("b"))]));
        let pu = p.with_updates(&u);
        let fired = fire_all(&pu, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&pu, &fired), vec!["+q(a)", "+q(b)"]);
    }

    #[test]
    fn propositional_rules() {
        let (p, i) = setup("p -> +q. q -> +a.", "p.");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q"]);
    }

    #[test]
    fn paper_irreflexive_graph_first_step() {
        let (p, i) = setup(
            "r1: p(X), p(Y) -> +q(X, Y).
             r2: q(X, X) -> -q(X, X).
             r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).",
            "p(a). p(b). p(c).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        // First application of Γ: only r1 fires, 9 groundings.
        assert_eq!(fired.len(), 9);
        assert!(fired.iter().all(|f| f.sign == Sign::Insert));
    }

    #[test]
    fn integer_guards_filter() {
        let (p, i) = setup(
            "stock(I, Q), Q < 10 -> +low(I).",
            "stock(a, 5). stock(b, 10). stock(c, 9). stock(d, 100).",
        );
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+low(a)", "+low(c)"]);
    }

    #[test]
    fn inequality_guard_on_symbols() {
        let (p, i) = setup("p(X), p(Y), X != Y -> +pair(X, Y).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(
            fired_display(&p, &fired),
            vec!["+pair(a, b)", "+pair(b, a)"]
        );
    }

    #[test]
    fn equality_guard_with_constant() {
        let (p, i) = setup("p(X), X = a -> -p(X).", "p(a). p(b).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["-p(a)"]);
    }

    #[test]
    fn ordered_comparison_on_symbols_is_false() {
        // `<` is integer-only; symbol operands fail the guard.
        let (p, i) = setup("p(X), X < 10 -> +q(X).", "p(a). p(3).");
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+q(3)"]);
    }

    #[test]
    fn guard_order_in_source_is_irrelevant() {
        let (p1, i1) = setup(
            "Q >= 10, stock(I, Q) -> +high(I).",
            "stock(a, 15). stock(b, 5).",
        );
        let fired = fire_all(&p1, &BlockedSet::new(), &i1);
        assert_eq!(fired_display(&p1, &fired), vec!["+high(a)"]);
    }

    #[test]
    fn guards_combine_with_negation_and_events() {
        let (p, mut i) = setup(
            "+restock(I, Q), Q > 0, !discontinued(I) -> +order(I, Q).",
            "discontinued(b).",
        );
        let v = Arc::clone(p.vocab());
        let restock = v.lookup_pred("restock").unwrap();
        let mk = |s: &str, q: i64| Tuple::new(vec![Value::Sym(v.sym(s)), Value::Int(q)]);
        i.insert_marked(Sign::Insert, restock, mk("a", 5));
        i.insert_marked(Sign::Insert, restock, mk("b", 5)); // discontinued
        i.insert_marked(Sign::Insert, restock, mk("c", 0)); // zero quantity
        let fired = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(fired_display(&p, &fired), vec!["+order(a, 5)"]);
    }

    #[test]
    fn determinism_of_fire_order() {
        let (p, i) = setup("p(X), p(Y) -> +q(X, Y).", "p(a). p(b). p(c).");
        let a = fire_all(&p, &BlockedSet::new(), &i);
        let b = fire_all(&p, &BlockedSet::new(), &i);
        assert_eq!(a, b);
    }
}
