//! Rule groundings and blocked-instance sets.
//!
//! A *rule grounding* `(r, θ)` (Section 4.2) is a rule paired with a ground
//! substitution for its variables. Groundings are the unit of blocking: when
//! a conflict is resolved, the losing side's groundings go into the blocked
//! set `B` and may not derive updates for the rest of the computation.

use crate::compile::{CompiledProgram, RuleId};
use park_storage::{Code, FxHashSet};
use std::fmt;

/// A ground rule instance `(r, θ)`: rule id plus a total assignment of the
/// rule's variables (indexed by compilation-assigned slots).
///
/// Substitution values are interned [`Code`]s — the engine blocks, hashes
/// and compares groundings without ever decoding; rendering for traces
/// decodes through the program's vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Grounding {
    /// Which rule.
    pub rule: RuleId,
    /// The substitution: `subst[i]` is the encoded value of variable slot
    /// `i`.
    pub subst: Box<[Code]>,
}

impl Grounding {
    /// Render in the paper's notation, e.g. `(r1, [x <- a, y <- b])`.
    pub fn display(&self, program: &CompiledProgram) -> String {
        let rule = program.rule(self.rule);
        let mut s = format!("({}", rule.display_name());
        if !self.subst.is_empty() {
            s.push_str(", [");
            for (i, &c) in self.subst.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&rule.var_name(i));
                s.push_str(" <- ");
                let v = program.vocab().decode(c);
                s.push_str(&program.vocab().constant(v).to_string());
            }
            s.push(']');
        }
        s.push(')');
        s
    }
}

/// The set `B` of blocked rule instances.
#[derive(Debug, Clone, Default)]
pub struct BlockedSet {
    set: FxHashSet<Grounding>,
}

impl BlockedSet {
    /// The empty blocked set.
    pub fn new() -> Self {
        BlockedSet::default()
    }

    /// True if `(r, θ)` is blocked.
    pub fn contains(&self, g: &Grounding) -> bool {
        self.set.contains(g)
    }

    /// Block a grounding; returns `true` if it was not blocked before.
    pub fn insert(&mut self, g: Grounding) -> bool {
        self.set.insert(g)
    }

    /// Number of blocked groundings.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing is blocked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate over blocked groundings (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Grounding> {
        self.set.iter()
    }

    /// Render sorted, for traces and tests.
    pub fn display(&self, program: &CompiledProgram) -> Vec<String> {
        let mut v: Vec<String> = self.set.iter().map(|g| g.display(program)).collect();
        v.sort();
        v
    }
}

impl fmt::Display for BlockedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} blocked instances>", self.set.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(rule: u32, vals: &[i64]) -> Grounding {
        Grounding {
            rule: RuleId(rule),
            subst: vals
                .iter()
                .map(|&v| Code::from_small_int(v).unwrap())
                .collect(),
        }
    }

    #[test]
    fn blocked_set_basics() {
        let mut b = BlockedSet::new();
        assert!(b.is_empty());
        assert!(b.insert(g(0, &[1])));
        assert!(!b.insert(g(0, &[1])));
        assert!(b.insert(g(0, &[2])));
        assert!(b.insert(g(1, &[1])));
        assert_eq!(b.len(), 3);
        assert!(b.contains(&g(0, &[2])));
        assert!(!b.contains(&g(2, &[1])));
    }

    #[test]
    fn groundings_hash_by_rule_and_subst() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(g(0, &[1, 2]));
        assert!(s.contains(&g(0, &[1, 2])));
        assert!(!s.contains(&g(0, &[2, 1])));
        assert!(!s.contains(&g(1, &[1, 2])));
    }
}
