//! Warm restarts: replaying the previous run's firing log.
//!
//! A conflict restart re-runs the inflationary computation from `I° = D`
//! under a strictly larger blocked set `B' ⊇ B`. Because blocking is
//! monotone and the Γ enumeration of a step depends only on the
//! interpretation reached so far and on `B'`, the cold re-run is forced to
//! reproduce the previous run step by step — minus the newly blocked
//! groundings — until the first step where that subtraction actually
//! removes something. A *warm* restart therefore replays the previous
//! run's fired-action log instead of re-enumerating it:
//!
//! 1. Every step whose filtered firings equal the logged firings is
//!    byte-identical to what the cold run would have computed; applying
//!    the logged actions verbatim skips the join/enumeration work.
//! 2. At the first *divergent* step — one where filtering removes a newly
//!    blocked grounding — the filtered vector is still *exactly* the cold
//!    run's fired vector for that step (the interpretations are equal up
//!    to here, and the blocked-set check is the last filter in
//!    enumeration, so it distributes over the logged order). The replayer
//!    hands it out for free and only then retires.
//! 3. From the step after the divergence the interpretations may differ,
//!    so the engine falls back to live naive/semi-naive evaluation.
//!
//! Conflict detection, provenance recording, tracing, and statistics all
//! run through the engine's ordinary step path for replayed steps, which
//! is what makes the warm result byte-identical to the cold one (see
//! `docs/semantics.md` §9 for the full argument). The only observable
//! differences are `RunStats::replayed_steps` / `replay_divergence_step`
//! and `eval_tasks` (replayed steps schedule no evaluation tasks).
//!
//! Replay savings are also observable through the metrics layer: at the end
//! of each run that had a log to draw from, the engine reports a
//! `crate::metrics::ReplayEvent` built from [`Replayer::served`] and
//! [`Replayer::divergence_step`] — steps replayed vs. evaluated live, per
//! run, in the `park-metrics/v1` document.

use crate::gamma::FiredAction;
use crate::grounding::BlockedSet;

/// The fired-action log of one inflationary run: one entry per Γ step, in
/// step order, including the final (conflicting) step. Entries are moved
/// in after the engine is done with them — capture costs no clones.
#[derive(Debug, Default)]
pub struct StepLog {
    steps: Vec<Vec<FiredAction>>,
}

impl StepLog {
    /// An empty log (start of a run).
    pub fn new() -> Self {
        StepLog::default()
    }

    /// Append one step's fired actions.
    pub fn push_step(&mut self, fired: Vec<FiredAction>) {
        self.steps.push(fired);
    }

    /// Number of logged steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no steps were logged.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Replays a [`StepLog`] against a grown blocked set, detecting the first
/// divergent step.
#[derive(Debug)]
pub struct Replayer {
    steps: Vec<Vec<FiredAction>>,
    cursor: usize,
    served: u64,
    diverged: Option<u64>,
}

impl Replayer {
    /// Start replaying `log` (the previous run's firing log).
    pub fn new(log: StepLog) -> Self {
        Replayer {
            steps: log.steps,
            cursor: 0,
            served: 0,
            diverged: None,
        }
    }

    /// The next step's fired actions, filtered against `blocked`, or
    /// `None` once the log is exhausted or a previous step diverged — the
    /// caller must then evaluate live.
    ///
    /// The returned vector is exactly what a cold run would have fired at
    /// this step (even at the divergent step itself; see the module docs),
    /// so the engine applies it through its ordinary step path.
    pub fn next_step(&mut self, blocked: &BlockedSet) -> Option<Vec<FiredAction>> {
        if self.diverged.is_some() || self.cursor >= self.steps.len() {
            return None;
        }
        let mut fired = std::mem::take(&mut self.steps[self.cursor]);
        self.cursor += 1;
        let before = fired.len();
        fired.retain(|f| !blocked.contains(&f.grounding));
        if fired.len() != before {
            self.diverged = Some(self.cursor as u64);
        }
        self.served += 1;
        Some(fired)
    }

    /// How many steps have been served from the log.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The 1-based step at which the replay diverged from the log (a newly
    /// blocked grounding was filtered out), if it has.
    pub fn divergence_step(&self) -> Option<u64> {
        self.diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::RuleId;
    use crate::grounding::Grounding;
    use park_storage::{Code, PredId};
    use park_syntax::Sign;

    fn action(rule: u32, val: i64) -> FiredAction {
        let c = Code::from_small_int(val).expect("test values are small");
        FiredAction {
            grounding: Grounding {
                rule: RuleId(rule),
                subst: Box::from([c]),
            },
            sign: Sign::Insert,
            pred: PredId(0),
            tuple: Box::from([c]),
        }
    }

    fn log(steps: &[&[(u32, i64)]]) -> StepLog {
        let mut l = StepLog::new();
        for step in steps {
            l.push_step(step.iter().map(|&(r, v)| action(r, v)).collect());
        }
        l
    }

    #[test]
    fn clean_replay_serves_every_step_unchanged() {
        let mut r = Replayer::new(log(&[&[(0, 1)], &[(0, 1), (1, 2)]]));
        let blocked = BlockedSet::new();
        assert_eq!(r.next_step(&blocked).unwrap().len(), 1);
        assert_eq!(r.next_step(&blocked).unwrap().len(), 2);
        assert!(r.next_step(&blocked).is_none());
        assert_eq!(r.served(), 2);
        assert_eq!(r.divergence_step(), None);
    }

    #[test]
    fn newly_blocked_grounding_marks_divergence_and_stops_replay() {
        let mut r = Replayer::new(log(&[&[(0, 1)], &[(0, 1), (1, 2)], &[(2, 3)]]));
        let mut blocked = BlockedSet::new();
        blocked.insert(action(1, 2).grounding);
        // Step 1 is untouched; step 2 loses (r1, 2) and diverges; the
        // filtered step is still handed out, but step 3 is not.
        assert_eq!(r.next_step(&blocked).unwrap().len(), 1);
        assert_eq!(r.divergence_step(), None);
        let step2 = r.next_step(&blocked).unwrap();
        assert_eq!(step2, vec![action(0, 1)]);
        assert_eq!(r.divergence_step(), Some(2));
        assert!(r.next_step(&blocked).is_none());
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn filtering_preserves_logged_order() {
        let mut r = Replayer::new(log(&[&[(3, 1), (1, 2), (2, 3)]]));
        let mut blocked = BlockedSet::new();
        blocked.insert(action(1, 2).grounding);
        let step = r.next_step(&blocked).unwrap();
        assert_eq!(step, vec![action(3, 1), action(2, 3)]);
    }

    #[test]
    fn empty_log_replays_nothing() {
        let mut r = Replayer::new(StepLog::new());
        assert!(r.next_step(&BlockedSet::new()).is_none());
        assert_eq!(r.served(), 0);
        assert!(StepLog::new().is_empty());
        assert_eq!(StepLog::new().len(), 0);
    }
}
