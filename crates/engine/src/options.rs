//! Engine configuration.

/// How many of the detected conflicts are resolved (and their losers
/// blocked) per restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionScope {
    /// Resolve every conflict in `conflicts(P, I)` before restarting — the
    /// paper's default construction (`blocked` unions the losing side of
    /// each conflict).
    #[default]
    All,
    /// Resolve only the first conflict (in derivation order) per restart.
    /// Permitted by the paper's closing remark in Section 4.2: blocking only
    /// a non-empty part of the conflicts avoids unnecessary blocking at the
    /// cost of more restarts. See the ablation benchmark.
    One,
}

/// How the Γ operator enumerates firable groundings each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvaluationMode {
    /// Re-enumerate every valid grounding per step — the paper's
    /// definitional immediate-consequence operator, verbatim.
    #[default]
    Naive,
    /// Delta-driven (semi-naive) enumeration: each step joins only against
    /// marks added in the previous step, with a per-rule fallback when a
    /// negated literal gains a new `-b` mark. Observably identical results
    /// (see `crate::seminaive`), asymptotically faster on recursive
    /// programs.
    SemiNaive,
    /// Compiled enumeration: each rule is lowered once per run into flat
    /// register bytecode (`crate::lower`) with cost-model-driven join
    /// ordering and index selection, then evaluated batch-at-a-time
    /// (`crate::bytecode`) with the same delta discipline as
    /// [`EvaluationMode::SemiNaive`]. The per-step grounding *sets* are
    /// identical to the other modes; the emission order within a step may
    /// differ where the cost model reorders a join.
    Compiled,
}

/// Tunables for a PARK evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Conflict-resolution scope per restart.
    pub scope: ResolutionScope,
    /// Grounding enumeration strategy.
    pub evaluation: EvaluationMode,
    /// Record a full execution trace (costs string rendering per step).
    pub trace: bool,
    /// Upper bound on Γ applications across all runs; exceeding it is an
    /// error (it would indicate an engine bug — PARK terminates).
    pub max_steps: u64,
    /// Upper bound on conflict restarts; exceeding it is an error.
    pub max_restarts: u64,
    /// Intra-step evaluation parallelism: `Some(n)` evaluates each Γ step
    /// on up to `n` threads with a deterministic ordered merge, so results,
    /// traces, and `SELECT` inputs are identical to the sequential run
    /// (only `RunStats::eval_tasks` may differ). `None` (the default) and
    /// `Some(1)` run everything on the calling thread with no pool.
    pub parallelism: Option<usize>,
    /// Warm restarts (the default): after a conflict resolution, replay the
    /// previous run's fired-action log — filtered against the grown blocked
    /// set — until the first divergent step, and only evaluate live from
    /// there. Byte-identical results, traces, `SELECT` calls, and counters
    /// (only `RunStats::eval_tasks`, `replayed_steps`, and
    /// `replay_divergence_step` differ; see `crate::replay`). `false` is
    /// the escape hatch: every restart re-runs every Γ step cold.
    pub warm_restarts: bool,
    /// Conflict-free certificates (the default): before evaluating, run the
    /// condition-overlap refinement (`crate::refine`) on the program that
    /// will execute (`P_U` for transactions). When every unifiable-head
    /// pair is excluded by a sound argument, the run skips conflict
    /// collection, provenance bookkeeping, and warm-restart log capture —
    /// the same fast path conflict-free-by-construction programs already
    /// take. Results are byte-identical either way (the certificate is a
    /// proof that no conflict can arise); `false` is the escape hatch that
    /// keeps the conflict machinery live regardless.
    pub conflict_certificates: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            scope: ResolutionScope::All,
            evaluation: EvaluationMode::Naive,
            trace: false,
            max_steps: 1 << 22,
            max_restarts: 1 << 22,
            parallelism: None,
            warm_restarts: true,
            conflict_certificates: true,
        }
    }
}

impl EngineOptions {
    /// Default options with tracing enabled.
    pub fn traced() -> Self {
        EngineOptions {
            trace: true,
            ..EngineOptions::default()
        }
    }

    /// Set the resolution scope (builder style).
    pub fn with_scope(mut self, scope: ResolutionScope) -> Self {
        self.scope = scope;
        self
    }

    /// Set the evaluation mode (builder style).
    pub fn with_evaluation(mut self, evaluation: EvaluationMode) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// Set the intra-step parallelism (builder style).
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enable or disable warm restarts (builder style).
    pub fn with_warm_restarts(mut self, warm_restarts: bool) -> Self {
        self.warm_restarts = warm_restarts;
        self
    }

    /// Enable or disable the conflict-free certificate fast path (builder
    /// style).
    pub fn with_conflict_certificates(mut self, conflict_certificates: bool) -> Self {
        self.conflict_certificates = conflict_certificates;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let o = EngineOptions::default();
        assert_eq!(o.scope, ResolutionScope::All);
        assert!(!o.trace);
        assert!(o.max_steps > 1_000_000);
        assert_eq!(o.parallelism, None);
        assert!(o.warm_restarts, "warm restarts are on by default");
        assert!(
            o.conflict_certificates,
            "certificate fast path is on by default"
        );
    }

    #[test]
    fn builders() {
        let o = EngineOptions::traced()
            .with_scope(ResolutionScope::One)
            .with_evaluation(EvaluationMode::SemiNaive)
            .with_parallelism(Some(4))
            .with_warm_restarts(false)
            .with_conflict_certificates(false);
        assert!(o.trace);
        assert_eq!(o.scope, ResolutionScope::One);
        assert_eq!(o.evaluation, EvaluationMode::SemiNaive);
        assert_eq!(o.parallelism, Some(4));
        assert!(!o.warm_restarts);
        assert!(!o.conflict_certificates);
    }

    #[test]
    fn default_evaluation_is_the_definitional_operator() {
        assert_eq!(EngineOptions::default().evaluation, EvaluationMode::Naive);
    }
}
