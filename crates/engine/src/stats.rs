//! Run statistics.

use std::time::Duration;

/// Counters collected during one PARK evaluation.
///
/// These are the quantities the paper's complexity argument speaks about:
/// the number of Γ applications, the number of conflict-resolution restarts
/// (bounded by the number of rule groundings), and the sizes of the blocked
/// set and interpretation.
///
/// `RunStats` deliberately does **not** implement `PartialEq`: it carries
/// the wall-clock `elapsed` field, so whole-struct equality would be flaky
/// by construction. Compare [`RunStats::counters`] instead — the
/// deterministic subset two equivalent runs must agree on.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Γ applications, summed over all runs (restarts included).
    pub gamma_steps: u64,
    /// Conflict-resolution restarts (the paper's "iterations").
    pub restarts: u64,
    /// Individual conflicts resolved by `SELECT`.
    pub conflicts_resolved: u64,
    /// Total rule-grounding firings enumerated (across steps; re-firings
    /// count each time).
    pub groundings_fired: u64,
    /// Size of the final blocked set `B`.
    pub blocked_instances: u64,
    /// Evaluation tasks executed across all Γ steps. One task per
    /// predicate-level shard of the step's rule set (see
    /// `crate::gamma::plan_shards`): the decomposition depends only on the
    /// program, so the count is identical across thread counts and hosts —
    /// sequential and parallel runs agree on it. It still differs between
    /// warm and cold runs (replayed steps schedule no tasks), which is why
    /// it stays out of `ParkOutcome::fingerprint`.
    pub eval_tasks: u64,
    /// Γ steps served from the warm-restart replay log instead of being
    /// evaluated live (see `crate::replay`). Like `eval_tasks`, this is
    /// scheduling information: it differs between warm and cold runs whose
    /// results are otherwise byte-identical.
    pub replayed_steps: u64,
    /// The 1-based step at which the most recent warm replay diverged from
    /// its log (a newly blocked grounding was filtered out). `None` when no
    /// replay diverged — cold runs, conflict-free runs.
    pub replay_divergence_step: Option<u64>,
    /// Largest number of marked atoms held at once.
    pub peak_marked_atoms: usize,
    /// Whether this run took the conflict-free fast path on the strength of
    /// a refinement certificate (`crate::refine`) — i.e. the program *was*
    /// possibly conflicting by the coarse head check, but every pair was
    /// excluded, so conflict collection and provenance bookkeeping were
    /// skipped. Scheduling information like `eval_tasks`: results are
    /// byte-identical with or without it, so it is not part of
    /// [`StatCounters`].
    pub certified_conflict_free: bool,
    /// Total bytecode ops in the lowered program under
    /// `EvaluationMode::Compiled` (see `crate::lower`); 0 under the
    /// interpreted modes. Lowering telemetry, not an execution counter:
    /// deterministic for a given program + database, but mode-specific, so
    /// it stays out of [`StatCounters`].
    pub lowered_ops: u64,
    /// Access ops whose base-zone probe the compiled cost model routed
    /// through a hash index rather than a scan; 0 under the interpreted
    /// modes. Lowering telemetry like `lowered_ops`.
    pub index_picks: u64,
    /// The worker-pool size actually used, after clamping the requested
    /// `EngineOptions::parallelism` to the host's available parallelism
    /// (1 = sequential, no pool). Task decomposition still follows the
    /// *requested* count, so results stay byte-identical across hosts; only
    /// the number of spawned threads is clamped.
    pub effective_parallelism: usize,
    /// Wall-clock time of the evaluation.
    pub elapsed: Duration,
}

/// The deterministic subset of [`RunStats`]: every counter two runs of the
/// same configuration must agree on exactly, with the wall-clock and
/// host-dependent fields (`elapsed`, `effective_parallelism`) left out.
///
/// This is the comparison surface for stats equality — used by the metrics
/// cross-check (`park_engine::metrics`) and anywhere a test wants to assert
/// "same run" without being flaky on timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatCounters {
    /// Γ applications, summed over all runs.
    pub gamma_steps: u64,
    /// Conflict-resolution restarts.
    pub restarts: u64,
    /// Individual conflicts resolved by `SELECT`.
    pub conflicts_resolved: u64,
    /// Total rule-grounding firings enumerated.
    pub groundings_fired: u64,
    /// Size of the final blocked set `B`.
    pub blocked_instances: u64,
    /// Evaluation tasks executed across all Γ steps.
    pub eval_tasks: u64,
    /// Γ steps served from the warm-restart replay log.
    pub replayed_steps: u64,
    /// Step of the most recent replay divergence, if any.
    pub replay_divergence_step: Option<u64>,
    /// Largest number of marked atoms held at once.
    pub peak_marked_atoms: usize,
}

impl StatCounters {
    /// Fold another run's counters into this one (used when aggregating
    /// over many runs, e.g. a fuzzing sweep): counts add, the peak takes
    /// the maximum, and the divergence step keeps the latest `Some`.
    pub fn absorb(&mut self, other: &StatCounters) {
        self.gamma_steps += other.gamma_steps;
        self.restarts += other.restarts;
        self.conflicts_resolved += other.conflicts_resolved;
        self.groundings_fired += other.groundings_fired;
        self.blocked_instances += other.blocked_instances;
        self.eval_tasks += other.eval_tasks;
        self.replayed_steps += other.replayed_steps;
        if other.replay_divergence_step.is_some() {
            self.replay_divergence_step = other.replay_divergence_step;
        }
        self.peak_marked_atoms = self.peak_marked_atoms.max(other.peak_marked_atoms);
    }
}

impl RunStats {
    /// The deterministic counters, for equality comparisons and for the
    /// metrics cross-check.
    pub fn counters(&self) -> StatCounters {
        StatCounters {
            gamma_steps: self.gamma_steps,
            restarts: self.restarts,
            conflicts_resolved: self.conflicts_resolved,
            groundings_fired: self.groundings_fired,
            blocked_instances: self.blocked_instances,
            eval_tasks: self.eval_tasks,
            replayed_steps: self.replayed_steps,
            replay_divergence_step: self.replay_divergence_step,
            peak_marked_atoms: self.peak_marked_atoms,
        }
    }

    /// One summary line for logs and reports.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "steps={} restarts={} conflicts={} fired={} blocked={} tasks={} replayed={} peak_marked={} elapsed={:?}",
            self.gamma_steps,
            self.restarts,
            self.conflicts_resolved,
            self.groundings_fired,
            self.blocked_instances,
            self.eval_tasks,
            self.replayed_steps,
            self.peak_marked_atoms,
            self.elapsed
        );
        if let Some(step) = self.replay_divergence_step {
            line.push_str(&format!(" diverged_at={step}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_all_counters() {
        let s = RunStats {
            gamma_steps: 7,
            restarts: 2,
            replayed_steps: 3,
            ..RunStats::default()
        };
        let line = s.summary();
        assert!(line.contains("steps=7"));
        assert!(line.contains("restarts=2"));
        assert!(line.contains("replayed=3"));
        assert!(!line.contains("diverged_at="));
    }

    #[test]
    fn summary_reports_divergence_step_when_present() {
        let s = RunStats {
            replay_divergence_step: Some(4),
            ..RunStats::default()
        };
        assert!(s.summary().contains("diverged_at=4"));
    }

    #[test]
    fn counters_ignore_wall_clock_and_host_fields() {
        let a = RunStats {
            gamma_steps: 5,
            restarts: 1,
            elapsed: Duration::from_millis(3),
            effective_parallelism: 1,
            ..RunStats::default()
        };
        let b = RunStats {
            elapsed: Duration::from_millis(900),
            effective_parallelism: 4,
            ..a.clone()
        };
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn absorb_sums_counts_and_maxes_the_peak() {
        let mut acc = StatCounters {
            gamma_steps: 2,
            peak_marked_atoms: 10,
            ..StatCounters::default()
        };
        acc.absorb(&StatCounters {
            gamma_steps: 3,
            restarts: 1,
            peak_marked_atoms: 4,
            replay_divergence_step: Some(2),
            ..StatCounters::default()
        });
        assert_eq!(acc.gamma_steps, 5);
        assert_eq!(acc.restarts, 1);
        assert_eq!(acc.peak_marked_atoms, 10);
        assert_eq!(acc.replay_divergence_step, Some(2));
    }
}
