//! Run statistics.

use std::time::Duration;

/// Counters collected during one PARK evaluation.
///
/// These are the quantities the paper's complexity argument speaks about:
/// the number of Γ applications, the number of conflict-resolution restarts
/// (bounded by the number of rule groundings), and the sizes of the blocked
/// set and interpretation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Γ applications, summed over all runs (restarts included).
    pub gamma_steps: u64,
    /// Conflict-resolution restarts (the paper's "iterations").
    pub restarts: u64,
    /// Individual conflicts resolved by `SELECT`.
    pub conflicts_resolved: u64,
    /// Total rule-grounding firings enumerated (across steps; re-firings
    /// count each time).
    pub groundings_fired: u64,
    /// Size of the final blocked set `B`.
    pub blocked_instances: u64,
    /// Evaluation tasks executed across all Γ steps. This is scheduling
    /// information only: it grows with the configured parallelism (each
    /// step is split into more, smaller tasks) and is the one counter that
    /// may differ between otherwise identical sequential and parallel runs.
    pub eval_tasks: u64,
    /// Γ steps served from the warm-restart replay log instead of being
    /// evaluated live (see `crate::replay`). Like `eval_tasks`, this is
    /// scheduling information: it differs between warm and cold runs whose
    /// results are otherwise byte-identical.
    pub replayed_steps: u64,
    /// The 1-based step at which the most recent warm replay diverged from
    /// its log (a newly blocked grounding was filtered out). `None` when no
    /// replay diverged — cold runs, conflict-free runs.
    pub replay_divergence_step: Option<u64>,
    /// Largest number of marked atoms held at once.
    pub peak_marked_atoms: usize,
    /// Wall-clock time of the evaluation.
    pub elapsed: Duration,
}

impl RunStats {
    /// One summary line for logs and reports.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "steps={} restarts={} conflicts={} fired={} blocked={} tasks={} replayed={} peak_marked={} elapsed={:?}",
            self.gamma_steps,
            self.restarts,
            self.conflicts_resolved,
            self.groundings_fired,
            self.blocked_instances,
            self.eval_tasks,
            self.replayed_steps,
            self.peak_marked_atoms,
            self.elapsed
        );
        if let Some(step) = self.replay_divergence_step {
            line.push_str(&format!(" diverged_at={step}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_all_counters() {
        let s = RunStats {
            gamma_steps: 7,
            restarts: 2,
            replayed_steps: 3,
            ..RunStats::default()
        };
        let line = s.summary();
        assert!(line.contains("steps=7"));
        assert!(line.contains("restarts=2"));
        assert!(line.contains("replayed=3"));
        assert!(!line.contains("diverged_at="));
    }

    #[test]
    fn summary_reports_divergence_step_when_present() {
        let s = RunStats {
            replay_divergence_step: Some(4),
            ..RunStats::default()
        };
        assert!(s.summary().contains("diverged_at=4"));
    }
}
