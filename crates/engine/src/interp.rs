//! I-interpretations and the `incorp` operator (Section 4.2).
//!
//! An *i-interpretation* is a subset of the extended Herbrand base
//! `H*(P, D) = { a, +a, -a | a ∈ H(P, D) }`: a set of unmarked atoms `I°`
//! plus atoms marked for insertion (`I⁺`) and deletion (`I⁻`). It is
//! *consistent* iff no atom is marked both `+` and `-`.
//!
//! The three zones are stored as three [`FactStore`]s over a shared
//! vocabulary. Within a PARK run the unmarked zone is always the original
//! database `D` (the Γ operator only ever adds marked atoms), which is what
//! lets the Δ operator restart "from `I°`".

use crate::validity::MarkZone;
use park_storage::{Code, FactStore, PredId, Tuple, Vocabulary};
use park_syntax::Sign;
use std::fmt;
use std::sync::Arc;

/// An intermediate interpretation `I = I° ∪ I⁺ ∪ I⁻`.
#[derive(Debug, Clone)]
pub struct IInterpretation {
    base: FactStore,
    plus: FactStore,
    minus: FactStore,
}

impl IInterpretation {
    /// Start from an unmarked database instance (`I = D`).
    pub fn from_database(db: FactStore) -> Self {
        let vocab = Arc::clone(db.vocab());
        IInterpretation {
            base: db,
            plus: FactStore::new(Arc::clone(&vocab)),
            minus: FactStore::new(vocab),
        }
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        self.base.vocab()
    }

    /// The unmarked zone `I°`.
    pub fn base(&self) -> &FactStore {
        &self.base
    }

    /// The insertion-marked zone `I⁺`.
    pub fn plus(&self) -> &FactStore {
        &self.plus
    }

    /// The deletion-marked zone `I⁻`.
    pub fn minus(&self) -> &FactStore {
        &self.minus
    }

    /// Mutable access to a zone (used by the engine to pre-build indexes).
    pub fn zone_mut(&mut self, zone: MarkZone) -> &mut FactStore {
        match zone {
            MarkZone::Base => &mut self.base,
            MarkZone::Plus => &mut self.plus,
            MarkZone::Minus => &mut self.minus,
        }
    }

    /// Shared access to a zone.
    pub fn zone(&self, zone: MarkZone) -> &FactStore {
        match zone {
            MarkZone::Base => &self.base,
            MarkZone::Plus => &self.plus,
            MarkZone::Minus => &self.minus,
        }
    }

    /// Add a marked atom `+a` or `-a` by its encoded row. Returns `true` if
    /// it was new. Arity is checked at compile time, so rows arrive
    /// pre-validated.
    pub fn insert_marked(&mut self, sign: Sign, pred: PredId, row: &[Code]) -> bool {
        let zone = match sign {
            Sign::Insert => &mut self.plus,
            Sign::Delete => &mut self.minus,
        };
        zone.insert_row(pred, row)
    }

    /// Membership of a marked atom, by encoded row.
    pub fn contains_marked(&self, sign: Sign, pred: PredId, row: &[Code]) -> bool {
        match sign {
            Sign::Insert => self.plus.contains_row(pred, row),
            Sign::Delete => self.minus.contains_row(pred, row),
        }
    }

    /// Number of marked atoms (`|I⁺| + |I⁻|`). The unmarked zone is constant
    /// during a run, so this measures inflationary growth.
    pub fn marked_len(&self) -> usize {
        self.plus.len() + self.minus.len()
    }

    /// Total number of literals in the interpretation.
    pub fn len(&self) -> usize {
        self.base.len() + self.marked_len()
    }

    /// True if all three zones are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consistency: no atom occurs in both `I⁺` and `I⁻`.
    pub fn is_consistent(&self) -> bool {
        self.first_inconsistency().is_none()
    }

    /// The first `+a`/`-a` clash, if any (iterating the smaller zone).
    pub fn first_inconsistency(&self) -> Option<(PredId, Tuple)> {
        let (small, other) = if self.plus.len() <= self.minus.len() {
            (&self.plus, &self.minus)
        } else {
            (&self.minus, &self.plus)
        };
        let vocab = self.vocab();
        small
            .iter_rows()
            .find(|(p, r)| other.contains_row(*p, r))
            .map(|(p, r)| (p, vocab.decode_row(r)))
    }

    /// All atoms marked inconsistently (in both `I⁺` and `I⁻`).
    pub fn inconsistencies(&self) -> Vec<(PredId, Tuple)> {
        let (small, other) = if self.plus.len() <= self.minus.len() {
            (&self.plus, &self.minus)
        } else {
            (&self.minus, &self.plus)
        };
        let vocab = self.vocab();
        small
            .iter_rows()
            .filter(|(p, r)| other.contains_row(*p, r))
            .map(|(p, r)| (p, vocab.decode_row(r)))
            .collect()
    }

    /// The `incorp` operator of Section 4.2:
    /// `incorp(I) = (I° ∪ {a | +a ∈ I⁺}) − {a | -a ∈ I⁻}`.
    ///
    /// Defined for consistent i-interpretations; the order of operations
    /// makes the overlap cases deterministic regardless (`-` wins over an
    /// unmarked atom, `+` of an absent atom adds it).
    pub fn incorp(&self) -> FactStore {
        // The clone is copy-on-write: only shards the marked zones touch
        // are ever copied.
        let mut out = self.base.clone();
        for (p, r) in self.plus.iter_rows() {
            out.insert_row(p, r);
        }
        for (p, r) in self.minus.iter_rows() {
            out.remove_row(p, r);
        }
        out
    }

    /// Render in the paper's notation, sorted: `{p, +q, -a}`.
    pub fn display(&self) -> String {
        let vocab = self.vocab();
        let mut parts: Vec<String> = Vec::with_capacity(self.len());
        parts.extend(self.base.iter_rows().map(|(p, r)| vocab.display_row(p, r)));
        parts.extend(
            self.plus
                .iter_rows()
                .map(|(p, r)| format!("+{}", vocab.display_row(p, r))),
        );
        parts.extend(
            self.minus
                .iter_rows()
                .map(|(p, r)| format!("-{}", vocab.display_row(p, r))),
        );
        parts.sort_by(|a, b| {
            // Sort by the atom text, ignoring the mark, so `q` and `+q`
            // group together; marks order unmarked < + < -.
            let key = |s: &str| -> (String, u8) {
                match s.as_bytes().first() {
                    Some(b'+') => (s[1..].to_string(), 1),
                    Some(b'-') => (s[1..].to_string(), 2),
                    _ => (s.to_string(), 0),
                }
            };
            key(a).cmp(&key(b))
        });
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for IInterpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Value;

    fn setup() -> (Arc<Vocabulary>, IInterpretation, PredId) {
        let v = Vocabulary::new();
        let db = FactStore::from_source(Arc::clone(&v), "p. q(a).").unwrap();
        let q = v.lookup_pred("q").unwrap();
        (v, IInterpretation::from_database(db), q)
    }

    fn t1(v: &Vocabulary, s: &str) -> Tuple {
        Tuple::new(vec![Value::Sym(v.sym(s))])
    }

    fn r1(v: &Vocabulary, s: &str) -> [Code; 1] {
        [v.encode(Value::Sym(v.sym(s)))]
    }

    #[test]
    fn fresh_interpretation_is_unmarked_database() {
        let (_, i, _) = setup();
        assert_eq!(i.base().len(), 2);
        assert_eq!(i.marked_len(), 0);
        assert!(i.is_consistent());
        assert!(!i.is_empty());
    }

    #[test]
    fn marked_insertion_and_membership() {
        let (v, mut i, q) = setup();
        assert!(i.insert_marked(Sign::Insert, q, &r1(&v, "b")));
        assert!(!i.insert_marked(Sign::Insert, q, &r1(&v, "b")));
        assert!(i.contains_marked(Sign::Insert, q, &r1(&v, "b")));
        assert!(!i.contains_marked(Sign::Delete, q, &r1(&v, "b")));
        assert_eq!(i.marked_len(), 1);
    }

    #[test]
    fn inconsistency_detection() {
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Insert, q, &r1(&v, "b"));
        assert!(i.is_consistent());
        i.insert_marked(Sign::Delete, q, &r1(&v, "b"));
        assert!(!i.is_consistent());
        let (p, t) = i.first_inconsistency().unwrap();
        assert_eq!(p, q);
        assert_eq!(t, t1(&v, "b"));
        assert_eq!(i.inconsistencies().len(), 1);
    }

    #[test]
    fn incorp_applies_marks() {
        // I = {p, q(a), +q(b), -q(a)}  =>  incorp = {p, q(b)}
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Insert, q, &r1(&v, "b"));
        i.insert_marked(Sign::Delete, q, &r1(&v, "a"));
        let out = i.incorp();
        assert_eq!(out.sorted_display(), vec!["p", "q(b)"]);
    }

    #[test]
    fn incorp_of_unmarked_interpretation_is_identity() {
        let (_, i, _) = setup();
        assert!(i.incorp().same_facts(i.base()));
    }

    #[test]
    fn incorp_delete_of_absent_atom_is_noop() {
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Delete, q, &r1(&v, "zz"));
        assert_eq!(i.incorp().sorted_display(), vec!["p", "q(a)"]);
    }

    #[test]
    fn incorp_insert_of_present_atom_is_noop() {
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Insert, q, &r1(&v, "a"));
        assert_eq!(i.incorp().sorted_display(), vec!["p", "q(a)"]);
    }

    #[test]
    fn display_uses_paper_notation() {
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Insert, q, &r1(&v, "b"));
        i.insert_marked(Sign::Delete, q, &r1(&v, "c"));
        assert_eq!(i.display(), "{p, q(a), +q(b), -q(c)}");
    }

    #[test]
    fn display_groups_marks_with_their_atom() {
        let (v, mut i, q) = setup();
        i.insert_marked(Sign::Delete, q, &r1(&v, "a"));
        // -q(a) sorts right after q(a), not after every unmarked atom.
        assert_eq!(i.display(), "{p, q(a), -q(a)}");
    }
}
