//! Condition-overlap refinement of the unifiable-head conflict check, and
//! the **conflict-free certificate** consumed by the engine's fast path.
//!
//! [`crate::analysis::conflict_pairs`] over-approximates: it lists every
//! pair of opposite-polarity rules whose head patterns unify positionwise.
//! Many such pairs can still never clash at run time, because their *bodies*
//! cannot both be satisfied for a shared head atom. This module refines the
//! pair list with three sound exclusion arguments, each valid under PARK's
//! semantics (inflationary marks, restart-on-conflict):
//!
//! 1. **Head disunification through repeated variables** — `p(X, X)` vs
//!    `p(a, b)` passes the positionwise check but has no common instance.
//! 2. **Guard contradiction** — if firing both rules on the same head atom
//!    forces one value to satisfy contradictory comparison guards (e.g.
//!    `X < 5` in one body, `X >= 5` in the other), the pair can never cite
//!    the same atom. Guards are pure value filters, so this argument is
//!    independent of evaluation order and interpretation state.
//! 3. **Event-polarity clash** — if the linked bodies require `+e(t̄)` and
//!    `-e(t̄)` on a *forced-equal* tuple, the pair can never both fire in
//!    one run: marks are monotone within a run, and the engine restarts at
//!    the step where the second polarity of a mark would appear, so `+e(t̄)`
//!    and `-e(t̄)` never coexist in any interpretation the run reaches.
//!    (Note the classic positive/negative complementary-literal exclusion is
//!    *not* sound here: `a ∈ I` and `-a ∈ I` can hold simultaneously, so
//!    `a` and `!a` bodies may both be valid. We do not use it.)
//!
//! A rule whose own body is unsatisfiable (contradictory guards, a
//! constant-false guard, or opposite-polarity event literals on the same
//! tuple) can never fire at all; such rules are reported by
//! [`never_fire_rules`] and excluded from every pair.
//!
//! When every unifiable pair is excluded, [`certify_conflict_free`] returns
//! a certificate: a proof object the engine uses to skip conflict
//! collection, provenance bookkeeping, and warm-restart log capture for the
//! whole evaluation (see `crate::fixpoint`). The certificate is itself
//! differentially tested — the fuzz harness cross-checks certified programs
//! against observed runtime conflicts, and `AnalysisVariant::IgnoreHeadConstants`
//! is a deliberately broken variant used to prove the harness catches an
//! unsound analyzer.

use crate::analysis::ConflictPair;
use crate::compile::{CompiledLiteral, CompiledProgram, CompiledRule, LitKind, RuleId, TermSlot};
use park_storage::{Value, Vocabulary};
use park_syntax::{CompOp, Sign};
use std::collections::HashSet;

/// Which analysis to run: the faithful one, or a deliberately broken
/// variant kept around so the testkit can prove its runtime cross-checks
/// would catch an unsound analyzer (mirroring `OracleVariant` in the
/// differential-testing subsystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisVariant {
    /// The sound analysis. The engine fast path only ever uses this.
    #[default]
    Faithful,
    /// Broken on purpose: treats a constant head slot as non-unifiable with
    /// a variable slot, so `p(X) -> +q(X)` vs `p(X) -> -q(a)` is dropped
    /// from the pair list and the program is wrongly certified
    /// conflict-free. The testkit's verdict cross-check must flag this.
    IgnoreHeadConstants,
}

/// Why a unifiable-head pair was excluded by the refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionReason {
    /// One of the rules can never fire at all (unsatisfiable body).
    NeverFires(RuleId),
    /// The heads have no common instance once repeated variables are
    /// tracked (positionwise unification is too weak).
    HeadsDisunify,
    /// Firing both rules on one head atom forces contradictory guards.
    GuardContradiction,
    /// The linked bodies need `+e` and `-e` on a forced-equal tuple, which
    /// no reachable interpretation of a single run contains.
    EventPolarityClash,
}

impl std::fmt::Display for ExclusionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExclusionReason::NeverFires(_) => write!(f, "a rule that can never fire"),
            ExclusionReason::HeadsDisunify => write!(f, "heads with no common instance"),
            ExclusionReason::GuardContradiction => write!(f, "contradictory guards"),
            ExclusionReason::EventPolarityClash => {
                write!(f, "opposite event polarities on one tuple")
            }
        }
    }
}

/// The outcome of refining a program's conflict-pair list.
#[derive(Debug, Clone)]
pub struct RefinedConflicts {
    /// Pairs that survive every exclusion argument: the rules the runtime
    /// can actually cite in `conflicts(P, I)`.
    pub pairs: Vec<ConflictPair>,
    /// Pairs the coarse unifiable-head check lists but the refinement
    /// proves impossible, with the winning argument.
    pub excluded: Vec<(ConflictPair, ExclusionReason)>,
}

/// Union-find over the variable slots of one or two rules, carrying the
/// value constraints accumulated on each class: an optional forced constant,
/// forbidden constants, and an integer interval from ordered guards.
struct ConsMap {
    parent: Vec<usize>,
    cons: Vec<ClassCons>,
}

#[derive(Default, Clone)]
struct ClassCons {
    eq: Option<Value>,
    ne: Vec<Value>,
    lo: Option<i64>,
    hi: Option<i64>,
}

impl ClassCons {
    fn satisfiable(&self) -> bool {
        if let (Some(l), Some(h)) = (self.lo, self.hi) {
            if l > h {
                return false;
            }
        }
        if let Some(e) = self.eq {
            if self.ne.contains(&e) {
                return false;
            }
            match e {
                Value::Int(i) => {
                    if self.lo.is_some_and(|l| i < l) || self.hi.is_some_and(|h| i > h) {
                        return false;
                    }
                }
                // Ordered guards evaluate to false on symbols, so a class
                // pinned to a symbol with any interval constraint is dead.
                Value::Sym(_) => {
                    if self.lo.is_some() || self.hi.is_some() {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn merge(&mut self, other: ClassCons) -> bool {
        if let Some(v) = other.eq {
            if !self.bind(v) {
                return false;
            }
        }
        self.ne.extend(other.ne);
        self.lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        true
    }

    fn bind(&mut self, v: Value) -> bool {
        match self.eq {
            Some(e) => e == v,
            None => {
                self.eq = Some(v);
                true
            }
        }
    }
}

/// What a term slot denotes once class structure is taken into account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rep {
    Val(Value),
    Class(usize),
}

impl ConsMap {
    fn new(n: usize) -> Self {
        ConsMap {
            parent: (0..n).collect(),
            cons: vec![ClassCons::default(); n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge two classes; false if their constraints are incompatible.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return true;
        }
        self.parent[rb] = ra;
        let moved = std::mem::take(&mut self.cons[rb]);
        self.cons[ra].merge(moved)
    }

    /// Pin a class to a constant; false on a clash with an earlier pin.
    fn bind(&mut self, x: usize, v: Value) -> bool {
        let r = self.find(x);
        self.cons[r].bind(v)
    }

    fn rep(&mut self, vocab: &Vocabulary, slot: TermSlot, offset: usize) -> Rep {
        match slot {
            TermSlot::Const(c) => Rep::Val(vocab.decode(c)),
            TermSlot::Var(s) => {
                let r = self.find(offset + s as usize);
                match self.cons[r].eq {
                    Some(v) => Rep::Val(v),
                    None => Rep::Class(r),
                }
            }
        }
    }

    /// Fold one comparison guard into the constraint state. Returns false
    /// when the guard (together with what is already known) is
    /// unsatisfiable.
    fn apply_guard(
        &mut self,
        vocab: &Vocabulary,
        op: CompOp,
        lhs: TermSlot,
        rhs: TermSlot,
        offset: usize,
    ) -> bool {
        let side = |m: &mut Self, t: TermSlot| match t {
            TermSlot::Const(c) => Rep::Val(vocab.decode(c)),
            TermSlot::Var(s) => Rep::Class(m.find(offset + s as usize)),
        };
        let (l, r) = (side(self, lhs), side(self, rhs));
        match (l, r) {
            (Rep::Val(a), Rep::Val(b)) => eval_const_guard(op, a, b),
            (Rep::Class(c), Rep::Val(v)) => self.constrain(c, op, v),
            (Rep::Val(v), Rep::Class(c)) => self.constrain(c, flip(op), v),
            (Rep::Class(c1), Rep::Class(c2)) => {
                if c1 == c2 {
                    // X = X, X <= X, X >= X hold for integers; the ordered
                    // reflexive guards are false on symbols, but claiming
                    // "satisfiable" is the sound (weaker) direction.
                    // X != X, X < X, X > X are false for every value.
                    !matches!(op, CompOp::Ne | CompOp::Lt | CompOp::Gt)
                } else if op == CompOp::Eq {
                    self.union(c1, c2)
                } else {
                    // Relational constraints between distinct classes are
                    // ignored — always sound (fewer exclusions).
                    true
                }
            }
        }
    }

    fn constrain(&mut self, class: usize, op: CompOp, v: Value) -> bool {
        let c = &mut self.cons[class];
        match op {
            CompOp::Eq => {
                if !c.bind(v) {
                    return false;
                }
            }
            CompOp::Ne => {
                if c.eq == Some(v) {
                    return false;
                }
                c.ne.push(v);
            }
            CompOp::Lt | CompOp::Le | CompOp::Gt | CompOp::Ge => {
                let Value::Int(k) = v else {
                    // An ordered comparison against a symbol is false for
                    // every binding: the guard can never pass.
                    return false;
                };
                match op {
                    CompOp::Lt => tighten_hi(c, k.saturating_sub(1)),
                    CompOp::Le => tighten_hi(c, k),
                    CompOp::Gt => tighten_lo(c, k.saturating_add(1)),
                    CompOp::Ge => tighten_lo(c, k),
                    _ => unreachable!(),
                }
            }
        }
        c.satisfiable()
    }

    fn all_satisfiable(&mut self) -> bool {
        (0..self.cons.len()).all(|i| {
            let r = self.find(i);
            self.cons[r].satisfiable()
        })
    }
}

fn tighten_hi(c: &mut ClassCons, k: i64) {
    c.hi = Some(c.hi.map_or(k, |h| h.min(k)));
}

fn tighten_lo(c: &mut ClassCons, k: i64) {
    c.lo = Some(c.lo.map_or(k, |l| l.max(k)));
}

/// Mirror of `CompiledLiteral::eval_guard` on two known values.
fn eval_const_guard(op: CompOp, a: Value, b: Value) -> bool {
    match op {
        CompOp::Eq => a == b,
        CompOp::Ne => a != b,
        _ => match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                CompOp::Lt => x < y,
                CompOp::Le => x <= y,
                CompOp::Gt => x > y,
                CompOp::Ge => x >= y,
                _ => unreachable!(),
            },
            _ => false,
        },
    }
}

/// Swap the sides of a comparison: `c op X` becomes `X flip(op) c`.
fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
        CompOp::Eq | CompOp::Ne => op,
    }
}

fn guards(rule: &CompiledRule) -> impl Iterator<Item = (CompOp, TermSlot, TermSlot)> + '_ {
    rule.body.iter().filter_map(|lit| match lit {
        CompiledLiteral::Guard { op, lhs, rhs } => Some((*op, *lhs, *rhs)),
        CompiledLiteral::Atom { .. } => None,
    })
}

fn events(rule: &CompiledRule) -> impl Iterator<Item = (Sign, &crate::compile::CompiledAtom)> + '_ {
    rule.body.iter().filter_map(|lit| match lit {
        CompiledLiteral::Atom {
            kind: LitKind::Event(s),
            atom,
        } => Some((*s, atom)),
        _ => None,
    })
}

/// Can this rule ever fire? `false` when its guards are contradictory on
/// their own, or when it demands both `+e(t̄)` and `-e(t̄)` for slots that
/// are syntactically identical (no interpretation of a single run contains
/// both marks).
fn rule_can_fire(vocab: &Vocabulary, rule: &CompiledRule) -> bool {
    let mut m = ConsMap::new(rule.num_vars as usize);
    for (op, lhs, rhs) in guards(rule) {
        if !m.apply_guard(vocab, op, lhs, rhs, 0) {
            return false;
        }
    }
    if !m.all_satisfiable() {
        return false;
    }
    let evs: Vec<_> = events(rule).collect();
    for (i, (si, ai)) in evs.iter().enumerate() {
        for (sj, aj) in evs.iter().skip(i + 1) {
            if si != sj && ai.pred == aj.pred && ai.terms == aj.terms {
                return false;
            }
        }
    }
    true
}

/// Rules that can never fire under any database: their bodies are
/// unsatisfiable regardless of the interpretation. Sorted by id.
pub fn never_fire_rules(program: &CompiledProgram) -> Vec<RuleId> {
    program
        .rules()
        .iter()
        .filter(|r| !rule_can_fire(program.vocab(), r))
        .map(|r| r.id)
        .collect()
}

/// Variant-aware positionwise head check (see
/// [`AnalysisVariant::IgnoreHeadConstants`] for what the broken variant
/// gets wrong).
fn heads_unify_positionwise(a: &CompiledRule, b: &CompiledRule, variant: AnalysisVariant) -> bool {
    a.head
        .terms
        .iter()
        .zip(b.head.terms.iter())
        .all(|(x, y)| match (x, y) {
            (TermSlot::Const(cx), TermSlot::Const(cy)) => cx == cy,
            (TermSlot::Const(_), TermSlot::Var(_)) | (TermSlot::Var(_), TermSlot::Const(_)) => {
                variant == AnalysisVariant::Faithful
            }
            (TermSlot::Var(_), TermSlot::Var(_)) => true,
        })
}

/// The refinement proper: given an inserting rule `a` and a deleting rule
/// `b` with positionwise-unifiable heads, try to prove they can never cite
/// the same head atom in one run.
fn pair_excluded(
    vocab: &Vocabulary,
    a: &CompiledRule,
    b: &CompiledRule,
) -> Option<ExclusionReason> {
    let na = a.num_vars as usize;
    let mut m = ConsMap::new(na + b.num_vars as usize);
    // Link the heads: after this, variable classes describe every pair of
    // groundings that agree on the contested atom.
    for (x, y) in a.head.terms.iter().zip(b.head.terms.iter()) {
        let ok = match (*x, *y) {
            (TermSlot::Const(cx), TermSlot::Const(cy)) => cx == cy,
            (TermSlot::Var(v), TermSlot::Const(c)) => m.bind(v as usize, vocab.decode(c)),
            (TermSlot::Const(c), TermSlot::Var(v)) => m.bind(na + v as usize, vocab.decode(c)),
            (TermSlot::Var(va), TermSlot::Var(vb)) => m.union(va as usize, na + vb as usize),
        };
        if !ok {
            return Some(ExclusionReason::HeadsDisunify);
        }
    }
    // Both bodies' guards must hold simultaneously for the linked firing.
    for (op, lhs, rhs) in guards(a) {
        if !m.apply_guard(vocab, op, lhs, rhs, 0) {
            return Some(ExclusionReason::GuardContradiction);
        }
    }
    for (op, lhs, rhs) in guards(b) {
        if !m.apply_guard(vocab, op, lhs, rhs, na) {
            return Some(ExclusionReason::GuardContradiction);
        }
    }
    if !m.all_satisfiable() {
        return Some(ExclusionReason::GuardContradiction);
    }
    // Opposite event polarities on a forced-equal tuple.
    for (sa, ea) in events(a) {
        for (sb, eb) in events(b) {
            if sa == sb || ea.pred != eb.pred || ea.terms.len() != eb.terms.len() {
                continue;
            }
            let forced_equal = ea.terms.iter().zip(eb.terms.iter()).all(|(ta, tb)| {
                let (ra, rb) = (m.rep(vocab, *ta, 0), m.rep(vocab, *tb, na));
                ra == rb
            });
            if forced_equal {
                return Some(ExclusionReason::EventPolarityClash);
            }
        }
    }
    None
}

/// Refine the unifiable-head conflict pairs of a program: partition them
/// into pairs the runtime can actually cite and pairs that are provably
/// impossible. With `AnalysisVariant::Faithful` the surviving list is still
/// an over-approximation of runtime conflicts (the fuzz harness pins this).
pub fn refine_conflicts(program: &CompiledProgram, variant: AnalysisVariant) -> RefinedConflicts {
    let never: HashSet<RuleId> = never_fire_rules(program).into_iter().collect();
    let mut pairs = Vec::new();
    let mut excluded = Vec::new();
    for a in program.rules() {
        if a.head_sign != Sign::Insert {
            continue;
        }
        for b in program.rules() {
            if b.head_sign != Sign::Delete
                || a.head.pred != b.head.pred
                || !heads_unify_positionwise(a, b, variant)
            {
                continue;
            }
            let pair = ConflictPair {
                inserting: a.id,
                deleting: b.id,
                pred: a.head.pred,
            };
            let reason = if never.contains(&a.id) {
                Some(ExclusionReason::NeverFires(a.id))
            } else if never.contains(&b.id) {
                Some(ExclusionReason::NeverFires(b.id))
            } else {
                pair_excluded(program.vocab(), a, b)
            };
            match reason {
                Some(r) => excluded.push((pair, r)),
                None => pairs.push(pair),
            }
        }
    }
    pairs.sort_by_key(|p| (p.inserting, p.deleting));
    excluded.sort_by_key(|(p, _)| (p.inserting, p.deleting));
    RefinedConflicts { pairs, excluded }
}

/// A proof that a program can never reach `conflicts(P, I) ≠ ∅`: every
/// unifiable-head pair was excluded by a sound refinement argument. The
/// engine consumes this to skip conflict collection, provenance
/// bookkeeping, and warm-restart log capture for the whole evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictCertificate {
    /// Unifiable-head pairs the refinement had to discharge (0 when no
    /// predicate has heads of both polarities).
    pub pairs_examined: usize,
}

/// Certify a program conflict-free, or return `None` when at least one
/// refined pair survives. Call this on the program that will actually run —
/// for a transaction, the extended `P_U` with its synthetic update rules.
pub fn certify_conflict_free(
    program: &CompiledProgram,
    variant: AnalysisVariant,
) -> Option<ConflictCertificate> {
    if !program.possibly_conflicting() {
        return Some(ConflictCertificate { pairs_examined: 0 });
    }
    let refined = refine_conflicts(program, variant);
    if refined.pairs.is_empty() {
        Some(ConflictCertificate {
            pairs_examined: refined.excluded.len(),
        })
    } else {
        None
    }
}

/// The policies [`always_blocked_rules`] can reason about: the constant
/// resolvers that pick the same side of every conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstPolicy {
    /// `SELECT` always answers "insert wins".
    PreferInsert,
    /// `SELECT` always answers "delete wins".
    PreferDelete,
}

impl ConstPolicy {
    /// The CLI/policy-registry name of this resolver.
    pub fn policy_name(self) -> &'static str {
        match self {
            ConstPolicy::PreferInsert => "prefer-insert",
            ConstPolicy::PreferDelete => "prefer-delete",
        }
    }
}

/// Map the variables of `sub` into the term slots of `dom`, seeded by the
/// head positions, such that every body literal of `sub` becomes
/// (syntactically) a body literal of `dom`. When such a mapping exists,
/// every firing of `dom` is accompanied by a firing of `sub` on the same
/// head atom in the same Γ step.
fn body_subsumes(sub: &CompiledRule, dom: &CompiledRule) -> bool {
    // σ : sub-var → dom term slot.
    let mut sigma: Vec<Option<TermSlot>> = vec![None; sub.num_vars as usize];
    let assign = |sigma: &mut Vec<Option<TermSlot>>, v: u16, t: TermSlot| -> bool {
        match sigma[v as usize] {
            Some(prev) => prev == t,
            None => {
                sigma[v as usize] = Some(t);
                true
            }
        }
    };
    for (s, d) in sub.head.terms.iter().zip(dom.head.terms.iter()) {
        let ok = match (*s, *d) {
            (TermSlot::Const(cs), TermSlot::Const(cd)) => cs == cd,
            // A constant in the subsuming head only covers the matching
            // constant; a variable position in `dom` ranges wider.
            (TermSlot::Const(_), TermSlot::Var(_)) => false,
            (TermSlot::Var(v), t) => assign(&mut sigma, v, t),
        };
        if !ok {
            return false;
        }
    }
    // Backtracking match of sub's body literals into dom's body.
    fn matches(
        sub_lits: &[CompiledLiteral],
        dom_lits: &[CompiledLiteral],
        sigma: &mut Vec<Option<TermSlot>>,
    ) -> bool {
        let Some((lit, rest)) = sub_lits.split_first() else {
            return true;
        };
        for cand in dom_lits {
            let saved = sigma.clone();
            if literal_maps(lit, cand, sigma) && matches(rest, dom_lits, sigma) {
                return true;
            }
            *sigma = saved;
        }
        false
    }
    fn slot_maps(s: TermSlot, d: TermSlot, sigma: &mut [Option<TermSlot>]) -> bool {
        match s {
            TermSlot::Const(cs) => d == TermSlot::Const(cs),
            TermSlot::Var(v) => match sigma[v as usize] {
                Some(prev) => prev == d,
                None => {
                    sigma[v as usize] = Some(d);
                    true
                }
            },
        }
    }
    fn literal_maps(
        s: &CompiledLiteral,
        d: &CompiledLiteral,
        sigma: &mut [Option<TermSlot>],
    ) -> bool {
        match (s, d) {
            (
                CompiledLiteral::Atom { kind: ks, atom: sa },
                CompiledLiteral::Atom { kind: kd, atom: da },
            ) => {
                ks == kd
                    && sa.pred == da.pred
                    && sa.terms.len() == da.terms.len()
                    && sa
                        .terms
                        .iter()
                        .zip(da.terms.iter())
                        .all(|(x, y)| slot_maps(*x, *y, sigma))
            }
            (
                CompiledLiteral::Guard { op, lhs, rhs },
                CompiledLiteral::Guard {
                    op: od,
                    lhs: ld,
                    rhs: rd,
                },
            ) => op == od && slot_maps(*lhs, *ld, sigma) && slot_maps(*rhs, *rd, sigma),
            _ => false,
        }
    }
    matches(&sub.body, &dom.body, &mut sigma)
}

/// Rules that can fire but can never make their effect stick under a
/// constant policy, paired with the policy in question. A deleting rule
/// `d` is always blocked under `prefer-insert` when some inserting rule `i`
/// on the same predicate *subsumes* it: whenever `d` fires on an atom, `i`
/// fires on the same atom in the same step (or already fired earlier in the
/// run, which the provenance-based conflict check also catches), the
/// conflict resolves insert-wins, and `d`'s grounding joins the blocked
/// set. Removing such a rule cannot change any final database under that
/// policy — a property the testkit checks at runtime. Symmetrically for
/// inserting rules under `prefer-delete`.
pub fn always_blocked_rules(program: &CompiledProgram) -> Vec<(RuleId, ConstPolicy)> {
    let mut out = Vec::new();
    for loser in program.rules() {
        if loser.is_update || !rule_can_fire(program.vocab(), loser) {
            continue;
        }
        let policy = match loser.head_sign {
            Sign::Delete => ConstPolicy::PreferInsert,
            Sign::Insert => ConstPolicy::PreferDelete,
        };
        let dominated = program.rules().iter().any(|winner| {
            winner.head_sign != loser.head_sign
                && winner.head.pred == loser.head.pred
                && body_subsumes(winner, loser)
        });
        if dominated {
            out.push((loser.id, policy));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Rules that can never fire because an event literal in their body names a
/// `(sign, predicate)` no live rule head produces. Computed as a greatest
/// fixpoint: start from all rules live, repeatedly kill rules with an
/// unproducible event literal, shrinking the producible set — a dead rule's
/// head marks never appear, which can kill further rules downstream. Call
/// this on the program that will actually run (`P_U` if there are external
/// updates; their synthetic rules are producers like any other).
pub fn unreachable_event_rules(program: &CompiledProgram) -> Vec<RuleId> {
    let n = program.len();
    let mut live = vec![true; n];
    loop {
        let produced: HashSet<(Sign, park_storage::PredId)> = program
            .rules()
            .iter()
            .filter(|r| live[r.id.0 as usize])
            .map(|r| (r.head_sign, r.head.pred))
            .collect();
        let mut changed = false;
        for rule in program.rules() {
            if !live[rule.id.0 as usize] {
                continue;
            }
            let reachable = events(rule).all(|(sign, atom)| produced.contains(&(sign, atom.pred)));
            if !reachable {
                live[rule.id.0 as usize] = false;
                changed = true;
            }
        }
        if !changed {
            return program
                .rules()
                .iter()
                .filter(|r| !live[r.id.0 as usize])
                .map(|r| r.id)
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use park_storage::Vocabulary;
    use park_syntax::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        CompiledProgram::compile(Vocabulary::new(), &parse_program(src).unwrap()).unwrap()
    }

    fn refined(src: &str) -> RefinedConflicts {
        refine_conflicts(&compile(src), AnalysisVariant::Faithful)
    }

    #[test]
    fn guard_partition_excludes_the_pair() {
        let r = refined("p(X), X < 5 -> +q(X). p(X), X >= 5 -> -q(X).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded.len(), 1);
        assert_eq!(r.excluded[0].1, ExclusionReason::GuardContradiction);
    }

    #[test]
    fn overlapping_guards_keep_the_pair() {
        let r = refined("p(X), X < 7 -> +q(X). p(X), X >= 5 -> -q(X).");
        assert_eq!(r.pairs.len(), 1);
        assert!(r.excluded.is_empty());
    }

    #[test]
    fn constant_guards_refine_through_head_constants() {
        // The heads link Y to 3, which satisfies Y < 5 — pair survives.
        let r = refined("p(X) -> +q(3). p(Y), Y < 5 -> -q(Y).");
        assert_eq!(r.pairs.len(), 1);
        // Here the link forces Y = 9, contradicting Y < 5.
        let r = refined("p(X) -> +q(9). p(Y), Y < 5 -> -q(Y).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded[0].1, ExclusionReason::GuardContradiction);
    }

    #[test]
    fn equality_guards_chain_through_classes() {
        // Heads link Y ~ Z; X = Y merges X into that class, so X < 3 and
        // Z > 4 meet on one class and contradict.
        let r = refined("e(X, Y), X = Y, X < 3 -> +q(Y). p(Z), Z > 4 -> -q(Z).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded[0].1, ExclusionReason::GuardContradiction);
    }

    #[test]
    fn ne_guard_against_linked_constant() {
        let r = refined("p(X) -> +q(a). p(Y), Y != a -> -q(Y).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded[0].1, ExclusionReason::GuardContradiction);
    }

    #[test]
    fn repeated_head_variables_disunify() {
        let r = refined("p(X) -> +q(X, X). p(Y) -> -q(a, b).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded[0].1, ExclusionReason::HeadsDisunify);
    }

    #[test]
    fn event_polarity_clash_excludes() {
        let r = refined("+e(X) -> +q(X). -e(X) -> -q(X).");
        assert!(r.pairs.is_empty());
        assert_eq!(r.excluded[0].1, ExclusionReason::EventPolarityClash);
    }

    #[test]
    fn same_polarity_events_do_not_exclude() {
        let r = refined("+e(X) -> +q(X). +e(X) -> -q(X).");
        assert_eq!(r.pairs.len(), 1);
    }

    #[test]
    fn unlinked_event_tuples_do_not_exclude() {
        // The event tuples are not forced equal by the heads.
        let r = refined("+e(X), p(X, Y) -> +q(Y). -e(Z), p(Z, W) -> -q(W).");
        assert_eq!(r.pairs.len(), 1);
    }

    #[test]
    fn pos_neg_complement_is_not_used() {
        // a ∈ I and -a ∈ I can coexist in PARK, so `a` vs `!a` bodies do
        // NOT exclude a pair.
        let r = refined("a -> +q. !a -> -q.");
        assert_eq!(r.pairs.len(), 1);
    }

    #[test]
    fn never_firing_rules_are_detected() {
        let p = compile("p(X), X < 3, X > 5 -> +q(X). p(X) -> +r(X).");
        assert_eq!(never_fire_rules(&p), vec![RuleId(0)]);
        // Constant-false guard.
        let p = compile("p(X), 1 > 2 -> +q(X).");
        assert_eq!(never_fire_rules(&p), vec![RuleId(0)]);
        // Opposite event polarities on the same tuple.
        let p = compile("+e(X), -e(X) -> +q(X).");
        assert_eq!(never_fire_rules(&p), vec![RuleId(0)]);
        // Ordered guard on a symbol constant.
        let p = compile("p(X), X < a -> +q(X).");
        assert_eq!(never_fire_rules(&p), vec![RuleId(0)]);
    }

    #[test]
    fn never_firing_rule_excludes_its_pairs() {
        let r = refined("p(X), X < 3, X > 5 -> -q(X). p(X) -> +q(X).");
        assert!(r.pairs.is_empty());
        assert!(matches!(r.excluded[0].1, ExclusionReason::NeverFires(_)));
    }

    #[test]
    fn certificate_on_partitioned_program() {
        let p = compile("p(X), X < 5 -> +q(X). p(X), X >= 5 -> -q(X).");
        assert!(p.possibly_conflicting());
        let cert = certify_conflict_free(&p, AnalysisVariant::Faithful).unwrap();
        assert_eq!(cert.pairs_examined, 1);
        // Trivially certified when no predicate has both polarities.
        let p = compile("p(X) -> +q(X).");
        let cert = certify_conflict_free(&p, AnalysisVariant::Faithful).unwrap();
        assert_eq!(cert.pairs_examined, 0);
        // A live pair denies the certificate.
        let p = compile("p -> +q. p -> -q.");
        assert!(certify_conflict_free(&p, AnalysisVariant::Faithful).is_none());
    }

    #[test]
    fn broken_variant_wrongly_certifies_head_constants() {
        let p = compile("p(X) -> +q(X). p(X) -> -q(a).");
        assert!(certify_conflict_free(&p, AnalysisVariant::Faithful).is_none());
        // The broken variant drops the Const-vs-Var pair and certifies a
        // program that conflicts at runtime on q(a).
        assert!(certify_conflict_free(&p, AnalysisVariant::IgnoreHeadConstants).is_some());
    }

    #[test]
    fn certificate_on_updates_program() {
        use park_storage::{Tuple, UpdateSet, Value};
        let p = compile("p(X), X < 5 -> +q(X).");
        let v = std::sync::Arc::clone(p.vocab());
        let q = v.pred("q", 1).unwrap();
        let mut u = UpdateSet::empty();
        u.delete(q, Tuple::new(vec![Value::Int(9)]));
        // tx1: -> -q(9) links q's head to 9, contradicting X < 5.
        let pu = p.with_updates(&u);
        assert!(certify_conflict_free(&pu, AnalysisVariant::Faithful).is_some());
        // But -q(3) overlaps the guarded insert: no certificate.
        let mut u = UpdateSet::empty();
        u.delete(q, Tuple::new(vec![Value::Int(3)]));
        let pu = p.with_updates(&u);
        assert!(certify_conflict_free(&pu, AnalysisVariant::Faithful).is_none());
    }

    #[test]
    fn always_blocked_delete_under_prefer_insert() {
        // cut's body subsumes… rather: grow subsumes cut (same body), so
        // whenever cut fires, grow fires the same atom and insert wins.
        let p = compile("grow: p(X) -> +q(X). cut: p(X) -> -q(X).");
        assert_eq!(
            always_blocked_rules(&p),
            vec![
                (RuleId(0), ConstPolicy::PreferDelete),
                (RuleId(1), ConstPolicy::PreferInsert),
            ]
        );
    }

    #[test]
    fn always_blocked_requires_subsumption() {
        // cut fires on z's support, which does not imply grow's body.
        let p = compile("grow: p(X) -> +q(X). cut: z(X) -> -q(X).");
        assert!(always_blocked_rules(&p).is_empty());
        // A wider deleting body IS subsumed by the narrower inserting one.
        let p = compile("grow: p(X) -> +q(X). cut: p(X), z(X) -> -q(X).");
        assert_eq!(
            always_blocked_rules(&p),
            vec![(RuleId(1), ConstPolicy::PreferInsert)]
        );
    }

    #[test]
    fn subsumption_respects_constants_and_repeats() {
        // grow only covers q(a), so cut (which fires on every p(X)) is not
        // subsumed — but cut's wider body does subsume grow, which can
        // therefore never win under prefer-delete.
        let p = compile("grow: p(a) -> +q(a). cut: p(X) -> -q(X).");
        assert_eq!(
            always_blocked_rules(&p),
            vec![(RuleId(0), ConstPolicy::PreferDelete)]
        );
        // Repeated variable in the dominator maps fine.
        let p = compile("grow: e(X, X) -> +q(X). cut: e(Y, Y), z(Y) -> -q(Y).");
        assert_eq!(
            always_blocked_rules(&p),
            vec![(RuleId(1), ConstPolicy::PreferInsert)]
        );
    }

    #[test]
    fn unreachable_event_rules_fixpoint() {
        // Nothing produces +z: r2 is dead; r3 relied on r2's head, also dead.
        let p = compile(
            "r1: p(X) -> +q(X).
             r2: +z(X) -> +w(X).
             r3: +w(X) -> +v(X).",
        );
        assert_eq!(unreachable_event_rules(&p), vec![RuleId(1), RuleId(2)]);
        // With a +z producer everything is reachable.
        let p = compile(
            "r0: p(X) -> +z(X).
             r2: +z(X) -> +w(X).
             r3: +w(X) -> +v(X).",
        );
        assert!(unreachable_event_rules(&p).is_empty());
        // Polarity matters: a -z head does not feed a +z event.
        let p = compile("r0: p(X) -> -z(X). r2: +z(X) -> +w(X).");
        assert_eq!(unreachable_event_rules(&p), vec![RuleId(1)]);
    }
}
