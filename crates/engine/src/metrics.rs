//! Run-metrics observability: a zero-cost-when-disabled event sink
//! threaded through the evaluation loop.
//!
//! The paper's tractability argument (§6) is stated in counters — Γ
//! applications, restarts, blocked groundings — but a single end-of-run
//! summary line cannot localize *where* a run spent its time. This module
//! defines the [`MetricsSink`] trait the fixpoint loop reports into:
//! per-Γ-step timings and firing counts (with per-task spans when the
//! parallel executor is engaged), per-restart causes (conflict atom, scope,
//! policy decision, newly blocked groundings), and per-run replay savings.
//!
//! ## Overhead contract
//!
//! Metering is gated *once per run*, not per event: `Engine::run_with_metrics`
//! consults [`MetricsSink::enabled`] up front and, when it returns `false`
//! (the [`NoopMetrics`] sink), evaluates through exactly the same code path
//! as `Engine::run` — no `Instant::now` per step, no span buffers, no
//! display-string rendering, no allocations. The guard test
//! `tests/metrics_alloc.rs` pins this down by counting allocations.
//!
//! ## The `park-metrics/v1` document
//!
//! [`JsonMetrics`] is the built-in sink: it accumulates every event and
//! renders a versioned JSON document (see `docs/metrics.md` for the schema).
//! Its [`JsonMetrics::totals`] are derived from the event stream alone,
//! independently of [`RunStats`] — the testkit cross-check asserts the two
//! bookkeeping paths agree exactly on every corpus case across the full
//! 16-configuration mode matrix.

use crate::compile::CompiledProgram;
use crate::conflict::Resolution;
use crate::gamma::FiredAction;
use crate::grounding::BlockedSet;
use crate::options::{EngineOptions, EvaluationMode, ResolutionScope};
use crate::stats::{RunStats, StatCounters};
use park_json::Json;
use std::collections::BTreeMap;

/// The execution span of one evaluation task inside a Γ step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// Task index in deterministic merge order.
    pub index: usize,
    /// Actions this task fired.
    pub fired: usize,
    /// Wall-clock nanoseconds the task ran for.
    pub nanos: u64,
}

/// How one Γ application ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Consistent; at least one new mark was added.
    Applied,
    /// Consistent and `Γ(I) = I`: the fixpoint ω was reached.
    Fixpoint,
    /// Inconsistent: the step's firings contained a conflict, triggering
    /// resolution and a restart (reported separately as a [`RestartEvent`]).
    Conflict,
}

impl StepOutcome {
    fn as_str(self) -> &'static str {
        match self {
            StepOutcome::Applied => "applied",
            StepOutcome::Fixpoint => "fixpoint",
            StepOutcome::Conflict => "conflict",
        }
    }
}

/// One Γ application (consistent or not), reported after conflict detection.
#[derive(Debug)]
pub struct StepEvent<'a> {
    /// 1-based run number (`restarts + 1` at the time of the step).
    pub run: u64,
    /// 1-based step number within the run.
    pub step: u64,
    /// Every action fired this step (after blocked-set filtering).
    pub fired: &'a [FiredAction],
    /// The step was served from the warm-restart replay log.
    pub replayed: bool,
    /// Evaluation tasks executed (0 for replayed steps).
    pub tasks: u64,
    /// Wall-clock nanoseconds for the step's evaluation + conflict check.
    pub nanos: u64,
    /// Per-task spans (empty for replayed steps).
    pub spans: &'a [TaskSpan],
    /// How the step ended.
    pub outcome: StepOutcome,
    /// Marked atoms held after the step (pre-step count for conflict steps,
    /// which add no marks).
    pub marked: usize,
}

/// One conflict-resolution restart: the cause of run `run + 1`.
#[derive(Debug)]
pub struct RestartEvent<'a> {
    /// The run that hit the inconsistency.
    pub run: u64,
    /// The 1-based step at which Γ turned inconsistent.
    pub step: u64,
    /// The resolution scope in force.
    pub scope: ResolutionScope,
    /// The `SELECT` policy name.
    pub policy: &'a str,
    /// Per resolved conflict: the conflict atom (rendered), the policy's
    /// decision, and how many groundings were newly blocked by it.
    pub resolutions: &'a [(String, Resolution, u64)],
    /// Conflicts detected but deferred to a later restart
    /// (`ResolutionScope::One`).
    pub deferred: u64,
}

/// Replay savings of one run that had a warm-restart log to draw from.
#[derive(Debug, Clone, Copy)]
pub struct ReplayEvent {
    /// The run the replayer served.
    pub run: u64,
    /// Steps served from the log instead of evaluated live.
    pub served: u64,
    /// The 1-based step at which the replay diverged from its log, if any.
    pub divergence_step: Option<u64>,
}

/// A reading of the storage layer's process-wide counters: copy-on-write
/// shard clones ([`park_storage::cow_shard_clones`]) and checkpoint
/// captures / shard reuses (`park_storage::snapshot`).
///
/// The atomics are monotonic and shared by every database in the process,
/// so one absolute reading says nothing about one run — the engine samples
/// them when evaluation starts and reports the **delta** in
/// [`FinishEvent::storage`]. Like `elapsed`, these are execution-path
/// bookkeeping, not semantics: they are deliberately **not** part of
/// [`StatCounters`] and never enter the totals cross-check. (Under a
/// multi-threaded test harness the deltas can also include concurrent
/// runs' increments, which is another reason they stay out.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Relation shards cloned by copy-on-write mutation (`Arc::make_mut`
    /// found the shard shared and had to copy it).
    pub cow_shard_clones: u64,
    /// `Checkpoint::capture` calls.
    pub snapshot_captures: u64,
    /// Shards shared by reference (not copied) across capture/restore.
    pub snapshot_shard_reuses: u64,
}

impl StorageCounters {
    /// Read the current process-wide values.
    pub fn now() -> StorageCounters {
        StorageCounters {
            cow_shard_clones: park_storage::cow_shard_clones(),
            snapshot_captures: park_storage::snapshot_captures(),
            snapshot_shard_reuses: park_storage::snapshot_shard_reuses(),
        }
    }

    /// The counter increments since `earlier` (saturating, so a swapped
    /// argument order degrades to zeros rather than nonsense).
    pub fn delta_since(self, earlier: StorageCounters) -> StorageCounters {
        StorageCounters {
            cow_shard_clones: self
                .cow_shard_clones
                .saturating_sub(earlier.cow_shard_clones),
            snapshot_captures: self
                .snapshot_captures
                .saturating_sub(earlier.snapshot_captures),
            snapshot_shard_reuses: self
                .snapshot_shard_reuses
                .saturating_sub(earlier.snapshot_shard_reuses),
        }
    }
}

/// End-of-evaluation summary, reported exactly once per successful run.
#[derive(Debug)]
pub struct FinishEvent<'a> {
    /// The program evaluated (`P_U` when updates were supplied) — lets
    /// sinks resolve rule ids to display names.
    pub program: &'a CompiledProgram,
    /// The final blocked set `B`.
    pub blocked: &'a BlockedSet,
    /// The engine's own counters (the cross-check target).
    pub stats: &'a RunStats,
    /// Worker threads requested via `EngineOptions::parallelism`
    /// (1 = sequential).
    pub requested_threads: usize,
    /// Worker threads actually used after clamping to the host.
    pub effective_threads: usize,
    /// The options the engine ran under.
    pub options: &'a EngineOptions,
    /// The `SELECT` policy name.
    pub policy: &'a str,
    /// The incorporated final database — lets sinks report fact count,
    /// encoded size, and bytes/fact.
    pub database: &'a park_storage::FactStore,
    /// Storage-layer counter increments over this evaluation (see
    /// [`StorageCounters`]).
    pub storage: StorageCounters,
}

/// A consumer of evaluation events.
///
/// All methods default to no-ops; a sink overrides what it cares about.
/// [`enabled`](MetricsSink::enabled) is consulted once, before evaluation
/// starts — when it returns `false` the engine skips all event construction
/// and timing, so a disabled sink costs nothing at all.
pub trait MetricsSink {
    /// Whether the engine should meter this run. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
    /// One Γ application (consistent or conflicting).
    fn step(&mut self, _ev: &StepEvent<'_>) {}
    /// One conflict-resolution restart.
    fn restart(&mut self, _ev: &RestartEvent<'_>) {}
    /// Replay savings of one run (warm restarts only).
    fn replay(&mut self, _ev: &ReplayEvent) {}
    /// End of a successful evaluation.
    fn finish(&mut self, _ev: &FinishEvent<'_>) {}
}

/// The disabled sink: [`MetricsSink::enabled`] returns `false`, so the
/// engine takes the unmetered path — byte-for-byte the same work as
/// `Engine::run` without a sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    fn enabled(&self) -> bool {
        false
    }
}

#[derive(Debug)]
struct StepRecord {
    run: u64,
    step: u64,
    replayed: bool,
    fired: u64,
    tasks: u64,
    nanos: u64,
    outcome: StepOutcome,
    marked: usize,
    spans: Vec<TaskSpan>,
}

#[derive(Debug)]
struct RestartRecord {
    run: u64,
    step: u64,
    scope: &'static str,
    policy: String,
    deferred: u64,
    resolutions: Vec<(String, Resolution, u64)>,
}

#[derive(Debug)]
struct FinishRecord {
    policy: String,
    evaluation: &'static str,
    scope: &'static str,
    warm_restarts: bool,
    requested_threads: usize,
    effective_threads: usize,
    elapsed_ns: u64,
    facts: u64,
    encoded_bytes: u64,
    vocab_symbols: u64,
    vocab_predicates: u64,
    vocab_int_spills: u64,
    storage: StorageCounters,
    rules: Vec<(String, u64, u64)>,
    blocked: Vec<String>,
}

/// The built-in JSON sink: accumulates the full event stream and renders a
/// `park-metrics/v1` document (see `docs/metrics.md`).
#[derive(Debug, Default)]
pub struct JsonMetrics {
    source: String,
    steps: Vec<StepRecord>,
    restarts: Vec<RestartRecord>,
    replays: Vec<ReplayEvent>,
    rule_fired: BTreeMap<u32, u64>,
    finish: Option<FinishRecord>,
}

fn scope_str(scope: ResolutionScope) -> &'static str {
    match scope {
        ResolutionScope::All => "all",
        ResolutionScope::One => "one",
    }
}

impl JsonMetrics {
    /// A fresh sink; `source` labels the document (`"run"`, `"bench"`, …).
    pub fn new(source: &str) -> Self {
        JsonMetrics {
            source: source.to_string(),
            ..JsonMetrics::default()
        }
    }

    /// Per-rule firing tallies observed from step events, keyed by
    /// `RuleId` index. Rules that never fired have no entry — which is
    /// exactly what the testkit's unreachable-rule cross-check asserts for
    /// rules the static analysis flags.
    pub fn fired_by_rule(&self) -> &BTreeMap<u32, u64> {
        &self.rule_fired
    }

    /// Totals derived from the recorded event stream alone — the engine's
    /// [`RunStats::counters`] must agree with these exactly.
    pub fn totals(&self) -> StatCounters {
        let mut t = StatCounters::default();
        for s in &self.steps {
            if s.outcome != StepOutcome::Conflict {
                t.gamma_steps += 1;
            }
            t.groundings_fired += s.fired;
            t.eval_tasks += s.tasks;
            t.replayed_steps += u64::from(s.replayed);
            if s.outcome != StepOutcome::Conflict {
                t.peak_marked_atoms = t.peak_marked_atoms.max(s.marked);
            }
        }
        for r in &self.restarts {
            t.restarts += 1;
            t.conflicts_resolved += r.resolutions.len() as u64;
            t.blocked_instances += r.resolutions.iter().map(|(_, _, n)| n).sum::<u64>();
        }
        for r in &self.replays {
            if r.divergence_step.is_some() {
                t.replay_divergence_step = r.divergence_step;
            }
        }
        t
    }

    /// Render the accumulated events as a `park-metrics/v1` document.
    pub fn to_json(&self) -> Json {
        let opt_step = |v: Option<u64>| match v {
            Some(d) => Json::from(d),
            None => Json::Null,
        };
        let totals = self.totals();
        let totals_json = Json::object([
            ("gamma_steps", Json::from(totals.gamma_steps)),
            ("restarts", Json::from(totals.restarts)),
            ("conflicts_resolved", Json::from(totals.conflicts_resolved)),
            ("groundings_fired", Json::from(totals.groundings_fired)),
            ("blocked_instances", Json::from(totals.blocked_instances)),
            ("eval_tasks", Json::from(totals.eval_tasks)),
            ("replayed_steps", Json::from(totals.replayed_steps)),
            (
                "replay_divergence_step",
                opt_step(totals.replay_divergence_step),
            ),
            ("peak_marked_atoms", Json::from(totals.peak_marked_atoms)),
            (
                "elapsed_ns",
                Json::from(self.finish.as_ref().map_or(0, |f| f.elapsed_ns)),
            ),
        ]);
        let steps = Json::Array(
            self.steps
                .iter()
                .map(|s| {
                    Json::object([
                        ("run", Json::from(s.run)),
                        ("step", Json::from(s.step)),
                        ("outcome", Json::str(s.outcome.as_str())),
                        ("replayed", Json::from(s.replayed)),
                        ("fired", Json::from(s.fired)),
                        ("tasks", Json::from(s.tasks)),
                        ("marked", Json::from(s.marked)),
                        ("nanos", Json::from(s.nanos)),
                        (
                            "spans",
                            Json::Array(
                                s.spans
                                    .iter()
                                    .map(|sp| {
                                        Json::object([
                                            ("task", Json::from(sp.index)),
                                            ("fired", Json::from(sp.fired)),
                                            ("nanos", Json::from(sp.nanos)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let restarts = Json::Array(
            self.restarts
                .iter()
                .map(|r| {
                    Json::object([
                        ("run", Json::from(r.run)),
                        ("step", Json::from(r.step)),
                        ("scope", Json::str(r.scope)),
                        ("policy", Json::str(r.policy.as_str())),
                        ("deferred", Json::from(r.deferred)),
                        (
                            "resolutions",
                            Json::Array(
                                r.resolutions
                                    .iter()
                                    .map(|(atom, resolution, newly)| {
                                        Json::object([
                                            ("atom", Json::str(atom.as_str())),
                                            ("resolution", Json::str(resolution.as_str())),
                                            ("newly_blocked", Json::from(*newly)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let replays = Json::Array(
            self.replays
                .iter()
                .map(|r| {
                    Json::object([
                        ("run", Json::from(r.run)),
                        ("served", Json::from(r.served)),
                        ("divergence_step", opt_step(r.divergence_step)),
                    ])
                })
                .collect(),
        );

        let mut members: Vec<(String, Json)> = vec![
            ("schema".into(), Json::str("park-metrics/v1")),
            ("source".into(), Json::str(self.source.as_str())),
        ];
        if let Some(f) = &self.finish {
            members.push(("policy".into(), Json::str(f.policy.as_str())));
            members.push((
                "options".into(),
                Json::object([
                    ("evaluation", Json::str(f.evaluation)),
                    ("scope", Json::str(f.scope)),
                    ("warm_restarts", Json::from(f.warm_restarts)),
                    ("requested_threads", Json::from(f.requested_threads)),
                    ("effective_threads", Json::from(f.effective_threads)),
                    (
                        "oversubscribed",
                        Json::from(f.effective_threads < f.requested_threads),
                    ),
                ]),
            ));
            // Storage-layer footprint and COW/snapshot accounting. Like
            // `elapsed_ns`, none of this enters `totals` — it describes the
            // execution path, not the semantics.
            let bytes_per_fact = if f.facts > 0 {
                Json::Float(f.encoded_bytes as f64 / f.facts as f64)
            } else {
                Json::Null
            };
            members.push((
                "storage".into(),
                Json::object([
                    ("facts", Json::from(f.facts)),
                    ("encoded_bytes", Json::from(f.encoded_bytes)),
                    ("bytes_per_fact", bytes_per_fact),
                    ("vocab_symbols", Json::from(f.vocab_symbols)),
                    ("vocab_predicates", Json::from(f.vocab_predicates)),
                    ("vocab_int_spills", Json::from(f.vocab_int_spills)),
                    ("cow_shard_clones", Json::from(f.storage.cow_shard_clones)),
                    ("snapshot_captures", Json::from(f.storage.snapshot_captures)),
                    (
                        "snapshot_shard_reuses",
                        Json::from(f.storage.snapshot_shard_reuses),
                    ),
                ]),
            ));
        }
        members.push(("totals".into(), totals_json));
        if let Some(f) = &self.finish {
            members.push((
                "rules".into(),
                Json::Array(
                    f.rules
                        .iter()
                        .map(|(name, fired, blocked)| {
                            Json::object([
                                ("rule", Json::str(name.as_str())),
                                ("fired", Json::from(*fired)),
                                ("blocked", Json::from(*blocked)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        members.push(("steps".into(), steps));
        members.push(("restarts".into(), restarts));
        members.push(("replays".into(), replays));
        if let Some(f) = &self.finish {
            members.push((
                "blocked".into(),
                Json::Array(f.blocked.iter().map(|b| Json::str(b.as_str())).collect()),
            ));
        }
        Json::Object(members)
    }
}

impl MetricsSink for JsonMetrics {
    fn step(&mut self, ev: &StepEvent<'_>) {
        for f in ev.fired {
            *self.rule_fired.entry(f.grounding.rule.0).or_insert(0) += 1;
        }
        self.steps.push(StepRecord {
            run: ev.run,
            step: ev.step,
            replayed: ev.replayed,
            fired: ev.fired.len() as u64,
            tasks: ev.tasks,
            nanos: ev.nanos,
            outcome: ev.outcome,
            marked: ev.marked,
            spans: ev.spans.to_vec(),
        });
    }

    fn restart(&mut self, ev: &RestartEvent<'_>) {
        self.restarts.push(RestartRecord {
            run: ev.run,
            step: ev.step,
            scope: scope_str(ev.scope),
            policy: ev.policy.to_string(),
            deferred: ev.deferred,
            resolutions: ev.resolutions.to_vec(),
        });
    }

    fn replay(&mut self, ev: &ReplayEvent) {
        self.replays.push(*ev);
    }

    fn finish(&mut self, ev: &FinishEvent<'_>) {
        let mut rule_blocked: BTreeMap<u32, u64> = BTreeMap::new();
        for g in ev.blocked.iter() {
            *rule_blocked.entry(g.rule.0).or_insert(0) += 1;
        }
        let mut ids: Vec<u32> = self.rule_fired.keys().copied().collect();
        ids.extend(rule_blocked.keys().copied());
        ids.sort_unstable();
        ids.dedup();
        let rules = ids
            .into_iter()
            .map(|id| {
                let name = ev.program.rule(crate::compile::RuleId(id)).display_name();
                (
                    name,
                    self.rule_fired.get(&id).copied().unwrap_or(0),
                    rule_blocked.get(&id).copied().unwrap_or(0),
                )
            })
            .collect();
        self.finish = Some(FinishRecord {
            policy: ev.policy.to_string(),
            evaluation: match ev.options.evaluation {
                EvaluationMode::Naive => "naive",
                EvaluationMode::SemiNaive => "semi_naive",
                EvaluationMode::Compiled => "compiled",
            },
            scope: scope_str(ev.options.scope),
            warm_restarts: ev.options.warm_restarts,
            requested_threads: ev.requested_threads,
            effective_threads: ev.effective_threads,
            elapsed_ns: u64::try_from(ev.stats.elapsed.as_nanos()).unwrap_or(u64::MAX),
            facts: ev.database.len() as u64,
            encoded_bytes: ev.database.encoded_bytes() as u64,
            // Vocabulary sizes are absolute (the intern tables are
            // append-only and shared by program + state), so a long-lived
            // process can watch them grow — see docs/storage.md on the
            // vocabulary lifetime contract.
            vocab_symbols: ev.database.vocab().sym_count() as u64,
            vocab_predicates: ev.database.vocab().pred_count() as u64,
            vocab_int_spills: ev.database.vocab().spill_count() as u64,
            storage: ev.storage,
            rules,
            blocked: ev.blocked.display(ev.program),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::Inertia;
    use crate::fixpoint::Engine;
    use park_storage::{FactStore, Vocabulary};
    use std::sync::Arc;

    fn metered(rules: &str, facts: &str, options: EngineOptions) -> (JsonMetrics, StatCounters) {
        let vocab = Vocabulary::new();
        let engine = Engine::with_options(
            Arc::clone(&vocab),
            &park_syntax::parse_program(rules).unwrap(),
            options,
        )
        .unwrap();
        let db = FactStore::from_source(vocab, facts).unwrap();
        let mut sink = JsonMetrics::new("test");
        let out = engine
            .park_with_metrics(&db, &mut Inertia, &mut sink)
            .unwrap();
        (sink, out.stats.counters())
    }

    #[test]
    fn totals_agree_with_run_stats_on_the_section5_example() {
        let (sink, counters) = metered(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
            EngineOptions::default(),
        );
        assert_eq!(sink.totals(), counters);
        assert_eq!(sink.totals().restarts, 2);
    }

    #[test]
    fn totals_agree_under_parallel_seminaive_cold() {
        let (sink, counters) = metered(
            "e(X, Y) -> +r(X, Y). r(X, Y), e(Y, Z) -> +r(X, Z). r(X, X) -> -r(X, X).",
            "e(a, b). e(b, c). e(c, a).",
            EngineOptions::default()
                .with_evaluation(EvaluationMode::SemiNaive)
                .with_parallelism(Some(4))
                .with_warm_restarts(false),
        );
        assert_eq!(sink.totals(), counters);
    }

    #[test]
    fn document_is_versioned_and_carries_rules_and_restart_causes() {
        let (sink, _) = metered("p -> +q. p -> -q.", "p.", EngineOptions::default());
        let doc = sink.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("park-metrics/v1")
        );
        let restarts = doc.get("restarts").and_then(Json::as_array).unwrap();
        assert_eq!(restarts.len(), 1);
        let resolutions = restarts[0]
            .get("resolutions")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(resolutions[0].get("atom").and_then(Json::as_str), Some("q"));
        let rules = doc.get("rules").and_then(Json::as_array).unwrap();
        assert!(!rules.is_empty());
        // Round-trips through the parser.
        let reparsed = park_json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(
            reparsed.get("schema").and_then(Json::as_str),
            Some("park-metrics/v1")
        );
    }

    #[test]
    fn replay_savings_are_recorded_on_warm_runs() {
        let (sink, counters) = metered(
            "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.",
            "p.",
            EngineOptions::default(),
        );
        assert_eq!(counters.replayed_steps, 4);
        assert_eq!(sink.totals().replayed_steps, 4);
        assert_eq!(sink.totals().replay_divergence_step, Some(3));
        assert_eq!(sink.replays.len(), 2);
    }

    #[test]
    fn document_reports_storage_footprint() {
        let (sink, _) = metered("p -> +q. q -> +r.", "p.", EngineOptions::default());
        let doc = sink.to_json();
        let storage = doc.get("storage").expect("storage section");
        // Final database: p, q, r — three nullary facts, zero encoded
        // payload bytes (arity 0), so bytes_per_fact is 0.0.
        assert_eq!(storage.get("facts").and_then(Json::as_i64), Some(3));
        assert_eq!(storage.get("encoded_bytes").and_then(Json::as_i64), Some(0));
        // Vocabulary sizes: no constant symbols (all facts nullary), three
        // predicates p/q/r, no big-integer spills.
        assert_eq!(storage.get("vocab_symbols").and_then(Json::as_i64), Some(0));
        assert_eq!(
            storage.get("vocab_predicates").and_then(Json::as_i64),
            Some(3)
        );
        assert_eq!(
            storage.get("vocab_int_spills").and_then(Json::as_i64),
            Some(0)
        );
        assert!(storage
            .get("cow_shard_clones")
            .and_then(Json::as_i64)
            .is_some());
        assert!(storage
            .get("snapshot_captures")
            .and_then(Json::as_i64)
            .is_some());
        assert!(storage
            .get("snapshot_shard_reuses")
            .and_then(Json::as_i64)
            .is_some());
    }

    #[test]
    fn storage_counter_deltas_saturate() {
        let a = StorageCounters {
            cow_shard_clones: 5,
            snapshot_captures: 2,
            snapshot_shard_reuses: 9,
        };
        let b = StorageCounters {
            cow_shard_clones: 7,
            snapshot_captures: 2,
            snapshot_shard_reuses: 12,
        };
        assert_eq!(
            b.delta_since(a),
            StorageCounters {
                cow_shard_clones: 2,
                snapshot_captures: 0,
                snapshot_shard_reuses: 3,
            }
        );
        // Swapped order degrades to zeros, not wrap-around.
        assert_eq!(a.delta_since(b), StorageCounters::default());
    }

    #[test]
    fn noop_sink_reports_disabled() {
        assert!(!NoopMetrics.enabled());
        assert!(JsonMetrics::new("x").enabled());
    }
}
