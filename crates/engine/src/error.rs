//! Engine error types.

use park_storage::StorageError;
use park_syntax::SafetyError;
use std::fmt;

/// An error raised while compiling or evaluating a PARK program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A rule violates the paper's safety conditions.
    Safety(SafetyError),
    /// A storage-level problem (arity mismatches, non-ground atoms, ...).
    Storage(StorageError),
    /// The conflict-resolution policy failed (e.g. an interactive oracle ran
    /// out of scripted answers).
    Resolver {
        /// The policy's name.
        policy: String,
        /// What went wrong.
        message: String,
    },
    /// A conflict was detected but resolution blocked no new rule instance.
    ///
    /// This cannot happen for conflicts produced by this engine (each
    /// resolution blocks the non-empty losing side, none of which is blocked
    /// yet); it is kept as a typed error so the termination argument is a
    /// checked invariant rather than an assumption.
    NoProgress {
        /// The conflicting atom, rendered.
        atom: String,
    },
    /// The Γ-iteration exceeded `EngineOptions::max_steps`.
    StepLimit {
        /// The configured bound.
        limit: u64,
    },
    /// The number of conflict-resolution restarts exceeded
    /// `EngineOptions::max_restarts`.
    RestartLimit {
        /// The configured bound.
        limit: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Safety(e) => write!(f, "unsafe rule: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Resolver { policy, message } => {
                write!(f, "conflict-resolution policy `{policy}` failed: {message}")
            }
            EngineError::NoProgress { atom } => write!(
                f,
                "conflict on `{atom}` was resolved without blocking any new rule instance"
            ),
            EngineError::StepLimit { limit } => {
                write!(f, "fixpoint iteration exceeded {limit} steps")
            }
            EngineError::RestartLimit { limit } => {
                write!(f, "conflict resolution exceeded {limit} restarts")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Safety(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SafetyError> for EngineError {
    fn from(e: SafetyError) -> Self {
        EngineError::Safety(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenient result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = EngineError::StepLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = EngineError::Resolver {
            policy: "interactive".into(),
            message: "eof".into(),
        };
        assert!(e.to_string().contains("interactive"));
        let e = EngineError::NoProgress {
            atom: "q(a)".into(),
        };
        assert!(e.to_string().contains("q(a)"));
    }
}
