//! Conflicts, provenance, and the `SELECT` oracle interface.
//!
//! A *conflict* (Section 4.2) is a triple `(a, ins, del)`: a ground atom
//! together with the rule groundings voting for its insertion and for its
//! deletion. `conflicts(P, I)` "looks one step into the future": its sides
//! are groundings whose bodies are valid in `I`, whether or not `±a` is
//! already in `I`.
//!
//! ## Provenance (a documented clarification of the paper)
//!
//! Literal validity is non-monotone over an inflationary run (adding `+b`
//! can invalidate `¬b`), so a marked atom in `I` may have *no* currently
//! valid deriving grounding. If the opposite mark then becomes derivable,
//! `Γ` turns inconsistent while the letter of `conflicts(P, I)` offers no
//! grounding to block on one side. We therefore remember, per run, every
//! grounding that fired for each marked atom (its *provenance*) and include
//! those groundings in the conflict sides. On every program in the paper
//! this coincides with the paper's definition; in the degenerate case it
//! preserves the termination argument (every resolution blocks at least one
//! new grounding). See DESIGN.md §3.
//!
//! Blocked groundings are excluded from conflict sides — this matches the
//! paper's Section 5 computations, where after `r2` is blocked a later
//! conflict on `q` is presented as `({r5}, {r4})`, without `r2`.

use crate::compile::CompiledProgram;
use crate::gamma::FiredAction;
use crate::grounding::Grounding;
use crate::interp::IInterpretation;
use park_storage::{Code, FactStore, FxHashMap, PredId, Tuple, Value, Vocabulary};
use park_syntax::Sign;
use std::collections::HashSet;
use std::fmt;

/// The decision of a conflict-resolution policy for one conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Keep the insertion; block the deleting groundings.
    Insert,
    /// Keep the deletion; block the inserting groundings.
    Delete,
}

impl Resolution {
    /// `insert` or `delete`, as the paper writes it.
    pub fn as_str(self) -> &'static str {
        match self {
            Resolution::Insert => "insert",
            Resolution::Delete => "delete",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A conflict `(a, ins, del)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The contested atom's predicate.
    pub pred: PredId,
    /// The contested atom's tuple.
    pub tuple: Tuple,
    /// Groundings deriving `+a`, sorted by (rule, substitution).
    pub ins: Vec<Grounding>,
    /// Groundings deriving `-a`, sorted by (rule, substitution).
    pub del: Vec<Grounding>,
}

impl Conflict {
    /// Render in the paper's notation:
    /// `(q(a), {(r1, [x <- a])}, {(r2, [x <- a])})`.
    pub fn display(&self, program: &CompiledProgram) -> String {
        let atom = program.vocab().display_fact(self.pred, &self.tuple);
        let side = |gs: &[Grounding]| {
            let items: Vec<String> = gs.iter().map(|g| g.display(program)).collect();
            format!("{{{}}}", items.join(", "))
        };
        format!("({atom}, {}, {})", side(&self.ins), side(&self.del))
    }

    /// The losing side under a resolution (the groundings to block).
    pub fn losing_side(&self, resolution: Resolution) -> &[Grounding] {
        match resolution {
            Resolution::Insert => &self.del,
            Resolution::Delete => &self.ins,
        }
    }
}

/// The context handed to `SELECT`: per the paper, the original database
/// instance `D`, the program `P`, and the current state of computation `I`.
#[derive(Debug)]
pub struct SelectContext<'a> {
    /// The original database instance `D`.
    pub database: &'a FactStore,
    /// The program being evaluated (`P_U` when updates are present).
    pub program: &'a CompiledProgram,
    /// The current i-interpretation `I`.
    pub interp: &'a IInterpretation,
}

/// The paper's `SELECT` function: a conflict-resolution policy.
///
/// `SELECT(D, P, I, c)` maps a conflict to `insert` or `delete`. Policies
/// may be stateful (`&mut self`) — interactive and random policies are —
/// and may fail (e.g. a scripted oracle running out of answers), which the
/// engine surfaces as [`crate::EngineError::Resolver`].
pub trait ConflictResolver {
    /// The policy's name, for traces and error messages.
    fn name(&self) -> &str;

    /// Decide one conflict.
    fn select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Resolution, String>;
}

impl<T: ConflictResolver + ?Sized> ConflictResolver for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Resolution, String> {
        (**self).select(ctx, conflict)
    }
}

impl<T: ConflictResolver + ?Sized> ConflictResolver for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Resolution, String> {
        (**self).select(ctx, conflict)
    }
}

/// The principle of inertia (Section 4.1): conflicting actions are ignored,
/// so the atom keeps its status in the *original* database `D` — `insert`
/// iff `a ∈ D`, else `delete`.
///
/// Lives in the engine crate (rather than `park-policies`) because the
/// paper uses it as the default throughout; `park-policies` re-exports it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inertia;

impl ConflictResolver for Inertia {
    fn name(&self) -> &str {
        "inertia"
    }

    fn select(
        &mut self,
        ctx: &SelectContext<'_>,
        conflict: &Conflict,
    ) -> Result<Resolution, String> {
        if ctx.database.contains(conflict.pred, &conflict.tuple) {
            Ok(Resolution::Insert)
        } else {
            Ok(Resolution::Delete)
        }
    }
}

/// Per-run provenance: which groundings fired for each marked atom.
///
/// Keyed predicate-first, by *encoded row*, so the hot `record_all` path
/// can look rows up without cloning or decoding them. Each side is a hash
/// set: dedup of re-firings is O(1) per firing even when many groundings
/// derive the same atom (high fan-in), and conflict sides are sorted once
/// at collection time.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    map: FxHashMap<PredId, FxHashMap<Box<[Code]>, Sides>>,
    /// Running count of atoms with recorded provenance, so `len` does not
    /// walk every predicate's map.
    atoms: usize,
}

#[derive(Debug, Clone, Default)]
struct Sides {
    ins: HashSet<Grounding>,
    del: HashSet<Grounding>,
}

impl Sides {
    fn side_mut(&mut self, sign: Sign) -> &mut HashSet<Grounding> {
        match sign {
            Sign::Insert => &mut self.ins,
            Sign::Delete => &mut self.del,
        }
    }

    fn insert(&mut self, sign: Sign, g: &Grounding) {
        let side = self.side_mut(sign);
        // Clone only when new; the (overwhelmingly common) re-fire path is
        // lookup-only.
        if !side.contains(g) {
            side.insert(g.clone());
        }
    }
}

impl Provenance {
    /// Empty provenance (start of a run).
    pub fn new() -> Self {
        Provenance::default()
    }

    /// Record the firings of one consistent Γ step.
    pub fn record_all(&mut self, fired: &[FiredAction]) {
        for f in fired {
            let by_row = self.map.entry(f.pred).or_default();
            match by_row.get_mut(f.tuple.as_ref()) {
                Some(sides) => sides.insert(f.sign, &f.grounding),
                None => {
                    self.atoms += 1;
                    let mut sides = Sides::default();
                    sides.insert(f.sign, &f.grounding);
                    by_row.insert(f.tuple.clone(), sides);
                }
            }
        }
    }

    /// Forget everything (conflict restart), keeping the allocated maps so
    /// the next run's `record_all` reuses their capacity.
    pub fn clear(&mut self) {
        for by_row in self.map.values_mut() {
            by_row.clear();
        }
        self.atoms = 0;
    }

    /// Number of atoms with recorded provenance.
    pub fn len(&self) -> usize {
        self.atoms
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.atoms == 0
    }

    fn sides(&self, pred: PredId, row: &[Code]) -> Option<&Sides> {
        self.map.get(&pred).and_then(|m| m.get(row))
    }
}

/// Collect the conflicts among `fired` (one step into the future from `I`),
/// merged with the run's provenance.
///
/// Returns conflicts in order of first appearance in `fired` — the engine's
/// deterministic resolution order. Each side is deduplicated and sorted by
/// `(rule, substitution)` under the *decoded* value ordering, so the
/// observable resolution transcript does not depend on interning order.
/// Contested atoms are decoded here: conflicts are the SELECT boundary,
/// where policies and traces need real values.
pub fn collect_conflicts(
    vocab: &Vocabulary,
    fired: &[FiredAction],
    provenance: &Provenance,
) -> Vec<Conflict> {
    // Group current firings by head atom (encoded).
    let mut order: Vec<(PredId, Box<[Code]>)> = Vec::new();
    let mut sides: FxHashMap<(PredId, Box<[Code]>), Sides> = FxHashMap::default();
    for f in fired {
        let key = (f.pred, f.tuple.clone());
        let entry = sides.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Sides::default()
        });
        entry.insert(f.sign, &f.grounding);
    }

    let empty = HashSet::new();
    let mut out = Vec::new();
    for key in order {
        let current = &sides[&key];
        let hist = provenance.sides(key.0, &key.1);
        let merge = |cur: &HashSet<Grounding>, hist: &HashSet<Grounding>| -> Vec<Grounding> {
            let mut v: Vec<Grounding> = cur.iter().cloned().collect();
            v.extend(hist.iter().filter(|g| !cur.contains(g)).cloned());
            // Cold path: decode each substitution once for the sort key.
            v.sort_by_cached_key(|g| {
                let vals: Vec<Value> = g.subst.iter().map(|&c| vocab.decode(c)).collect();
                (g.rule, vals)
            });
            v
        };
        let ins = merge(&current.ins, hist.map_or(&empty, |s| &s.ins));
        let del = merge(&current.del, hist.map_or(&empty, |s| &s.del));
        if !ins.is_empty() && !del.is_empty() {
            out.push(Conflict {
                pred: key.0,
                tuple: vocab.decode_row(&key.1),
                ins,
                del,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompiledProgram, RuleId};
    use park_storage::{Value, Vocabulary};
    use park_syntax::parse_program;
    use std::sync::Arc;

    fn fired(v: &Vocabulary, rule: u32, sign: Sign, pred: PredId, val: i64) -> FiredAction {
        let c = v.encode(Value::Int(val));
        FiredAction {
            grounding: Grounding {
                rule: RuleId(rule),
                subst: Box::from([c]),
            },
            sign,
            pred,
            tuple: Box::from([c]),
        }
    }

    #[test]
    fn conflicts_require_both_sides() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let fs = vec![
            fired(&v, 0, Sign::Insert, q, 1),
            fired(&v, 1, Sign::Insert, q, 2), // no deletion for q(2)
            fired(&v, 2, Sign::Delete, q, 1),
        ];
        let cs = collect_conflicts(&v, &fs, &Provenance::new());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].tuple, Tuple::new(vec![Value::Int(1)]));
        assert_eq!(cs[0].ins.len(), 1);
        assert_eq!(cs[0].del.len(), 1);
    }

    #[test]
    fn provenance_supplies_historical_side() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let mut prov = Provenance::new();
        prov.record_all(&[fired(&v, 0, Sign::Insert, q, 1)]);
        // Now only the deletion fires — the insertion's body is no longer
        // valid, but +q(1) is in I with recorded provenance.
        let cs = collect_conflicts(&v, &[fired(&v, 1, Sign::Delete, q, 1)], &prov);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ins[0].rule, RuleId(0));
        assert_eq!(cs[0].del[0].rule, RuleId(1));
    }

    #[test]
    fn provenance_deduplicates_refirings() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let mut prov = Provenance::new();
        prov.record_all(&[fired(&v, 0, Sign::Insert, q, 1)]);
        prov.record_all(&[fired(&v, 0, Sign::Insert, q, 1)]);
        let cs = collect_conflicts(
            &v,
            &[
                fired(&v, 0, Sign::Insert, q, 1),
                fired(&v, 1, Sign::Delete, q, 1),
            ],
            &prov,
        );
        assert_eq!(cs[0].ins.len(), 1);
    }

    #[test]
    fn conflict_order_follows_first_appearance() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let fs = vec![
            fired(&v, 0, Sign::Insert, q, 2),
            fired(&v, 0, Sign::Insert, q, 1),
            fired(&v, 1, Sign::Delete, q, 1),
            fired(&v, 1, Sign::Delete, q, 2),
        ];
        let cs = collect_conflicts(&v, &fs, &Provenance::new());
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].tuple, Tuple::new(vec![Value::Int(2)]));
        assert_eq!(cs[1].tuple, Tuple::new(vec![Value::Int(1)]));
    }

    #[test]
    fn sides_are_sorted_by_rule_then_subst() {
        let v = Vocabulary::new();
        let q = v.pred("q", 0).unwrap();
        let g = |rule: u32| FiredAction {
            grounding: Grounding {
                rule: RuleId(rule),
                subst: Box::from([]),
            },
            sign: Sign::Insert,
            pred: q,
            tuple: Box::from([]),
        };
        let mut del = g(0);
        del.sign = Sign::Delete;
        let cs = collect_conflicts(&v, &[g(2), g(1), del], &Provenance::new());
        let rules: Vec<u32> = cs[0].ins.iter().map(|x| x.rule.0).collect();
        assert_eq!(rules, vec![1, 2]);
    }

    #[test]
    fn side_sort_uses_decoded_values_not_intern_order() {
        // Spilled big integers get codes in allocation order; the side
        // sort must still follow the true value ordering.
        let v = Vocabulary::new();
        let q = v.pred("q", 0).unwrap();
        let big = 1i64 << 40;
        // Encode the larger value first: its spill code is the smaller.
        let hi = fired(&v, 0, Sign::Insert, q, big + 1);
        let lo = fired(&v, 0, Sign::Insert, q, big);
        let mut del = fired(&v, 1, Sign::Delete, q, 0);
        del.tuple = Box::from([]);
        let mut hi = hi;
        hi.tuple = Box::from([]);
        let mut lo = lo;
        lo.tuple = Box::from([]);
        let cs = collect_conflicts(&v, &[hi, lo, del], &Provenance::new());
        assert_eq!(cs.len(), 1);
        let decoded: Vec<Value> = cs[0].ins.iter().map(|g| v.decode(g.subst[0])).collect();
        assert_eq!(decoded, vec![Value::Int(big), Value::Int(big + 1)]);
    }

    #[test]
    fn inertia_follows_original_database() {
        let vocab = Vocabulary::new();
        let program = CompiledProgram::compile(
            Arc::clone(&vocab),
            &parse_program("p -> +q. p -> -q.").unwrap(),
        )
        .unwrap();
        let db = FactStore::from_source(Arc::clone(&vocab), "p. a.").unwrap();
        let interp = IInterpretation::from_database(db.clone());
        let ctx = SelectContext {
            database: &db,
            program: &program,
            interp: &interp,
        };
        let q = vocab.lookup_pred("q").unwrap();
        let a = vocab.lookup_pred("a").unwrap();
        let mk = |pred| Conflict {
            pred,
            tuple: Tuple::empty(),
            ins: vec![],
            del: vec![],
        };
        let mut inertia = Inertia;
        // q ∉ D → delete; a ∈ D → insert.
        assert_eq!(inertia.select(&ctx, &mk(q)).unwrap(), Resolution::Delete);
        assert_eq!(inertia.select(&ctx, &mk(a)).unwrap(), Resolution::Insert);
        assert_eq!(inertia.name(), "inertia");
    }

    #[test]
    fn losing_side_selection() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let cs = collect_conflicts(
            &v,
            &[
                fired(&v, 0, Sign::Insert, q, 1),
                fired(&v, 1, Sign::Delete, q, 1),
            ],
            &Provenance::new(),
        );
        assert_eq!(cs[0].losing_side(Resolution::Insert)[0].rule, RuleId(1));
        assert_eq!(cs[0].losing_side(Resolution::Delete)[0].rule, RuleId(0));
    }

    #[test]
    fn provenance_clear() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let mut prov = Provenance::new();
        prov.record_all(&[fired(&v, 0, Sign::Insert, q, 1)]);
        assert_eq!(prov.len(), 1);
        prov.clear();
        assert!(prov.is_empty());
    }

    #[test]
    fn provenance_clear_resets_count_and_stays_usable() {
        let v = Vocabulary::new();
        let q = v.pred("q", 1).unwrap();
        let mut prov = Provenance::new();
        prov.record_all(&[
            fired(&v, 0, Sign::Insert, q, 1),
            fired(&v, 1, Sign::Insert, q, 2),
        ]);
        assert_eq!(prov.len(), 2);
        prov.clear();
        assert_eq!(prov.len(), 0);
        // Recording after a clear counts fresh atoms (no stale entries
        // survive the allocation reuse) and supplies historical sides.
        prov.record_all(&[fired(&v, 0, Sign::Insert, q, 1)]);
        assert_eq!(prov.len(), 1);
        let cs = collect_conflicts(&v, &[fired(&v, 2, Sign::Delete, q, 1)], &prov);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ins.len(), 1);
        assert_eq!(cs[0].ins[0].rule, RuleId(0));
    }

    #[test]
    fn high_fan_in_conflict_dedups_exactly() {
        // Hundreds of distinct groundings insert and delete the same atom,
        // each re-fired across two recorded steps: dedup must stay exact
        // and sides sorted. Regression test for the hash-set dedup in
        // `record_all`/`collect_conflicts` (previously quadratic
        // `Vec::contains` per contested atom).
        let v = Vocabulary::new();
        let q = v.pred("q", 0).unwrap();
        let act = |rule: u32, val: i64, sign: Sign| FiredAction {
            grounding: Grounding {
                rule: RuleId(rule),
                subst: Box::from([v.encode(Value::Int(val))]),
            },
            sign,
            pred: q,
            tuple: Box::from([]),
        };
        let n = 512usize;
        let mut fs = Vec::new();
        for i in 0..n {
            fs.push(act(0, i as i64, Sign::Insert));
            fs.push(act(1, i as i64, Sign::Delete));
        }
        let mut prov = Provenance::new();
        prov.record_all(&fs);
        prov.record_all(&fs);
        assert_eq!(prov.len(), 1);
        let cs = collect_conflicts(&v, &fs, &prov);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ins.len(), n);
        assert_eq!(cs[0].del.len(), n);
        for side in [&cs[0].ins, &cs[0].del] {
            assert!(side
                .windows(2)
                .all(|w| (w[0].rule, &w[0].subst) < (w[1].rule, &w[1].subst)));
        }
    }
}
